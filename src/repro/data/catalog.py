"""Catalog: the mapping from table names to definitions and statistics.

A catalog represents one snapshot of a cluster's inputs (e.g. one day).  The
workload runner swaps catalogs between days to model input drift while the
query templates stay fixed — the recurring-job pattern of Section 2.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.schema import TableDef
from repro.data.statistics import TableStats


@dataclass
class Catalog:
    """Named collection of tables with their current statistics."""

    name: str = "default"
    _tables: dict[str, TableDef] = field(default_factory=dict)
    _stats: dict[str, TableStats] = field(default_factory=dict)

    def add_table(self, table: TableDef, stats: TableStats) -> None:
        """Register (or replace) a table and its statistics."""
        self._tables[table.name] = table
        self._stats[table.name] = stats

    def table(self, name: str) -> TableDef:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"table {name!r} not in catalog {self.name!r}") from None

    def stats(self, name: str) -> TableStats:
        try:
            return self._stats[name]
        except KeyError:
            raise KeyError(f"no statistics for table {name!r} in catalog {self.name!r}") from None

    def set_stats(self, name: str, stats: TableStats) -> None:
        if name not in self._tables:
            raise KeyError(f"table {name!r} not in catalog {self.name!r}")
        self._stats[name] = stats

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._tables))

    def scaled(self, factor: float, name: str | None = None) -> "Catalog":
        """A new catalog with every table's statistics scaled by ``factor``."""
        out = Catalog(name=name or f"{self.name}*{factor:g}")
        for tname, tdef in self._tables.items():
            out.add_table(tdef, self._stats[tname].scaled(factor))
        return out

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, name: object) -> bool:
        return name in self._tables
