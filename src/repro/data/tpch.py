"""TPC-H schema and analytically derived statistics.

The paper's TPC-H study (Section 6.6.2) runs at scale factor 1000 (1 TB).
Because the reproduction simulates execution at the statistics level, the
"data generator" here produces exact TPC-H base-table cardinalities and
per-column statistics (distinct counts, value ranges) straight from the TPC-H
specification, at any scale factor.
"""

from __future__ import annotations

from repro.data.catalog import Catalog
from repro.data.schema import Column, DataType, TableDef
from repro.data.statistics import ColumnStats, TableStats

# Days between 1992-01-01 and 1998-12-31, the TPC-H date domain; dates are
# encoded as integer day offsets from 1992-01-01.
DATE_MIN = 0
DATE_MAX = 2556
_D = DataType


def _table(name: str, *cols: tuple[str, DataType] | tuple[str, DataType, int]) -> TableDef:
    columns = []
    for spec in cols:
        if len(spec) == 3:
            cname, dtype, width = spec
            columns.append(Column(cname, dtype, avg_width=width))
        else:
            cname, dtype = spec
            columns.append(Column(cname, dtype))
    return TableDef(name, tuple(columns))


REGION = _table(
    "region",
    ("r_regionkey", _D.INT),
    ("r_name", _D.STRING, 12),
    ("r_comment", _D.STRING, 80),
)

NATION = _table(
    "nation",
    ("n_nationkey", _D.INT),
    ("n_name", _D.STRING, 16),
    ("n_regionkey", _D.INT),
    ("n_comment", _D.STRING, 80),
)

SUPPLIER = _table(
    "supplier",
    ("s_suppkey", _D.BIGINT),
    ("s_name", _D.STRING, 18),
    ("s_address", _D.STRING, 24),
    ("s_nationkey", _D.INT),
    ("s_phone", _D.STRING, 15),
    ("s_acctbal", _D.DECIMAL),
    ("s_comment", _D.STRING, 62),
)

CUSTOMER = _table(
    "customer",
    ("c_custkey", _D.BIGINT),
    ("c_name", _D.STRING, 18),
    ("c_address", _D.STRING, 24),
    ("c_nationkey", _D.INT),
    ("c_phone", _D.STRING, 15),
    ("c_acctbal", _D.DECIMAL),
    ("c_mktsegment", _D.STRING, 10),
    ("c_comment", _D.STRING, 72),
)

PART = _table(
    "part",
    ("p_partkey", _D.BIGINT),
    ("p_name", _D.STRING, 32),
    ("p_mfgr", _D.STRING, 25),
    ("p_brand", _D.STRING, 10),
    ("p_type", _D.STRING, 20),
    ("p_size", _D.INT),
    ("p_container", _D.STRING, 10),
    ("p_retailprice", _D.DECIMAL),
    ("p_comment", _D.STRING, 14),
)

PARTSUPP = _table(
    "partsupp",
    ("ps_partkey", _D.BIGINT),
    ("ps_suppkey", _D.BIGINT),
    ("ps_availqty", _D.INT),
    ("ps_supplycost", _D.DECIMAL),
    ("ps_comment", _D.STRING, 124),
)

ORDERS = _table(
    "orders",
    ("o_orderkey", _D.BIGINT),
    ("o_custkey", _D.BIGINT),
    ("o_orderstatus", _D.STRING, 1),
    ("o_totalprice", _D.DECIMAL),
    ("o_orderdate", _D.DATE),
    ("o_orderpriority", _D.STRING, 15),
    ("o_clerk", _D.STRING, 15),
    ("o_shippriority", _D.INT),
    ("o_comment", _D.STRING, 48),
)

LINEITEM = _table(
    "lineitem",
    ("l_orderkey", _D.BIGINT),
    ("l_partkey", _D.BIGINT),
    ("l_suppkey", _D.BIGINT),
    ("l_linenumber", _D.INT),
    ("l_quantity", _D.DECIMAL),
    ("l_extendedprice", _D.DECIMAL),
    ("l_discount", _D.DECIMAL),
    ("l_tax", _D.DECIMAL),
    ("l_returnflag", _D.STRING, 1),
    ("l_linestatus", _D.STRING, 1),
    ("l_shipdate", _D.DATE),
    ("l_commitdate", _D.DATE),
    ("l_receiptdate", _D.DATE),
    ("l_shipinstruct", _D.STRING, 25),
    ("l_shipmode", _D.STRING, 10),
    ("l_comment", _D.STRING, 26),
)

ALL_TABLES = (REGION, NATION, SUPPLIER, CUSTOMER, PART, PARTSUPP, ORDERS, LINEITEM)

# Base row counts at SF = 1 from the TPC-H specification.
_BASE_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_001_215,
}

# Tables whose cardinality does not scale with SF.
_FIXED_TABLES = {"region", "nation"}


def _rows(table: str, sf: float) -> float:
    base = _BASE_ROWS[table]
    return float(base) if table in _FIXED_TABLES else float(base) * sf


def _key(n: float) -> ColumnStats:
    return ColumnStats(distinct_count=n)


def _cat(n: float) -> ColumnStats:
    """A categorical column with ``n`` distinct values."""
    return ColumnStats(distinct_count=n)


def _range(n: float, lo: float, hi: float) -> ColumnStats:
    return ColumnStats(distinct_count=n, min_value=lo, max_value=hi)


def _column_stats(sf: float) -> dict[str, dict[str, ColumnStats]]:
    rows = {t: _rows(t, sf) for t in _BASE_ROWS}
    return {
        "region": {"r_regionkey": _key(5), "r_name": _cat(5)},
        "nation": {
            "n_nationkey": _key(25),
            "n_name": _cat(25),
            "n_regionkey": _cat(5),
        },
        "supplier": {
            "s_suppkey": _key(rows["supplier"]),
            "s_nationkey": _cat(25),
            "s_acctbal": _range(rows["supplier"] / 10, -999.99, 9999.99),
            "s_comment": _cat(rows["supplier"]),
        },
        "customer": {
            "c_custkey": _key(rows["customer"]),
            "c_nationkey": _cat(25),
            "c_mktsegment": _cat(5),
            "c_acctbal": _range(rows["customer"] / 10, -999.99, 9999.99),
            "c_phone": _cat(rows["customer"]),
        },
        "part": {
            "p_partkey": _key(rows["part"]),
            "p_brand": _cat(25),
            "p_type": _cat(150),
            "p_size": _range(50, 1, 50),
            "p_container": _cat(40),
            "p_mfgr": _cat(5),
            "p_name": _cat(rows["part"]),
        },
        "partsupp": {
            "ps_partkey": _cat(rows["part"]),
            "ps_suppkey": _cat(rows["supplier"]),
            "ps_availqty": _range(9999, 1, 9999),
            "ps_supplycost": _range(99_901, 1.0, 1000.0),
        },
        "orders": {
            "o_orderkey": _key(rows["orders"]),
            "o_custkey": _cat(rows["customer"] * 2 / 3),
            "o_orderstatus": _cat(3),
            "o_orderdate": _range(2406, DATE_MIN, DATE_MAX - 151),
            "o_orderpriority": _cat(5),
            "o_shippriority": _cat(1),
        },
        "lineitem": {
            "l_orderkey": _cat(rows["orders"]),
            "l_partkey": _cat(rows["part"]),
            "l_suppkey": _cat(rows["supplier"]),
            "l_linenumber": _cat(7),
            "l_quantity": _range(50, 1, 50),
            "l_extendedprice": _range(rows["lineitem"] / 100, 900.0, 104_950.0),
            "l_discount": _range(11, 0.0, 0.10),
            "l_tax": _range(9, 0.0, 0.08),
            "l_returnflag": _cat(3),
            "l_linestatus": _cat(2),
            "l_shipdate": _range(2526, DATE_MIN + 2, DATE_MAX),
            "l_commitdate": _range(2466, DATE_MIN + 31, DATE_MAX - 30),
            "l_receiptdate": _range(2555, DATE_MIN + 3, DATE_MAX + 30),
            "l_shipinstruct": _cat(4),
            "l_shipmode": _cat(7),
        },
    }


def tpch_catalog(scale_factor: float = 1.0, partition_mb: float = 256.0) -> Catalog:
    """Build a TPC-H catalog at the given scale factor.

    Args:
        scale_factor: TPC-H SF; the paper uses 1000 (≈1 TB).
        partition_mb: target on-disk extent size used to derive the default
            partition count of each table.
    """
    if scale_factor <= 0:
        raise ValueError("scale_factor must be positive")
    catalog = Catalog(name=f"tpch-sf{scale_factor:g}")
    col_stats = _column_stats(scale_factor)
    for table in ALL_TABLES:
        row_count = _rows(table.name, scale_factor)
        row_bytes = float(table.row_width_bytes)
        partitions = max(1, int(row_count * row_bytes / (partition_mb * 1024 * 1024)))
        catalog.add_table(
            table,
            TableStats(
                row_count=row_count,
                avg_row_bytes=row_bytes,
                columns=col_stats[table.name],
                partition_count=partitions,
            ),
        )
    return catalog
