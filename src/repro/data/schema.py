"""Relational schema definitions.

Tables are described by column names and types plus per-column byte widths,
which the simulator uses to derive row lengths (the ``L`` feature of the
paper's cost models, Table 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class DataType(enum.Enum):
    """Column data types with a representative on-disk width in bytes."""

    INT = "int"
    BIGINT = "bigint"
    FLOAT = "float"
    DECIMAL = "decimal"
    DATE = "date"
    STRING = "string"
    BOOL = "bool"

    @property
    def width_bytes(self) -> int:
        """Representative serialized width; strings use an average width."""
        return _WIDTHS[self]


_WIDTHS = {
    DataType.INT: 4,
    DataType.BIGINT: 8,
    DataType.FLOAT: 8,
    DataType.DECIMAL: 8,
    DataType.DATE: 4,
    DataType.STRING: 24,
    DataType.BOOL: 1,
}


@dataclass(frozen=True)
class Column:
    """A named, typed column.

    ``avg_width`` overrides the type's default width (long comment strings in
    TPC-H, for instance).
    """

    name: str
    dtype: DataType
    avg_width: int | None = None

    @property
    def width_bytes(self) -> int:
        return self.avg_width if self.avg_width is not None else self.dtype.width_bytes

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("column name must be non-empty")
        if self.avg_width is not None and self.avg_width <= 0:
            raise ValueError(f"avg_width must be positive, got {self.avg_width}")


@dataclass(frozen=True)
class TableDef:
    """A table definition: name plus ordered columns."""

    name: str
    columns: tuple[Column, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("table name must be non-empty")
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate column names in table {self.name!r}")

    @property
    def row_width_bytes(self) -> int:
        """Average serialized row width (sum of column widths)."""
        return sum(c.width_bytes for c in self.columns)

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(f"no column {name!r} in table {self.name!r}")

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)
