"""Data layer: schemas, table statistics, catalogs, and TPC-H.

The reproduction simulates query execution at the *statistics* level — no
actual rows are materialized.  A :class:`~repro.data.catalog.Catalog` maps
table names to :class:`~repro.data.schema.TableDef` plus
:class:`~repro.data.statistics.TableStats`, and the TPC-H module provides the
benchmark's schema with analytically derived statistics at any scale factor.
"""

from repro.data.catalog import Catalog
from repro.data.schema import Column, DataType, TableDef
from repro.data.statistics import ColumnStats, TableStats
from repro.data.tpch import tpch_catalog

__all__ = [
    "Catalog",
    "Column",
    "ColumnStats",
    "DataType",
    "TableDef",
    "TableStats",
    "tpch_catalog",
]
