"""Table and column statistics.

Statistics serve two distinct roles, mirroring the paper's setting:

* the *optimizer* consumes (possibly inaccurate) statistics to estimate
  cardinalities and costs;
* the *simulator* consumes the true statistics to compute actual runtimes.

Keeping both in one object (with the estimator layer responsible for
corrupting what the optimizer sees) keeps the data model simple.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class ColumnStats:
    """Per-column statistics used for selectivity estimation.

    Attributes:
        distinct_count: number of distinct values.
        null_fraction: fraction of nulls in [0, 1].
        min_value / max_value: numeric range when meaningful.
    """

    distinct_count: float
    null_fraction: float = 0.0
    min_value: float | None = None
    max_value: float | None = None

    def __post_init__(self) -> None:
        if self.distinct_count < 0:
            raise ValueError("distinct_count must be >= 0")
        if not 0.0 <= self.null_fraction <= 1.0:
            raise ValueError("null_fraction must be within [0, 1]")


@dataclass(frozen=True)
class TableStats:
    """Statistics for one table instance (one day's data for one input).

    Attributes:
        row_count: true number of rows.
        avg_row_bytes: true average serialized row width.
        columns: optional per-column statistics.
        partition_count: number of on-disk partitions (extents); drives the
            default degree of parallelism for scans.
    """

    row_count: float
    avg_row_bytes: float
    columns: dict[str, ColumnStats] = field(default_factory=dict)
    partition_count: int = 1

    def __post_init__(self) -> None:
        if self.row_count < 0:
            raise ValueError("row_count must be >= 0")
        if self.avg_row_bytes <= 0:
            raise ValueError("avg_row_bytes must be positive")
        if self.partition_count < 1:
            raise ValueError("partition_count must be >= 1")

    @property
    def total_bytes(self) -> float:
        return self.row_count * self.avg_row_bytes

    def scaled(self, factor: float) -> "TableStats":
        """A copy with the row count scaled (day-over-day input drift)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        # Distinct counts grow sublinearly with data volume (sqrt heuristic);
        # row widths are schema properties and stay fixed.
        scaled_cols = {
            name: replace(col, distinct_count=max(1.0, col.distinct_count * factor**0.5))
            for name, col in self.columns.items()
        }
        return replace(
            self,
            row_count=self.row_count * factor,
            columns=scaled_cols,
            partition_count=max(1, int(round(self.partition_count * factor))),
        )

    def column(self, name: str) -> ColumnStats:
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(f"no statistics for column {name!r}") from None
