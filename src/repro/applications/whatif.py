"""What-if analysis for physical design, priced by learned cost models.

Section 6.7 cites "running what-if analysis for physical design selection
[12]" as a cost-model use case; reference [23] of the paper ("Selecting
Subexpressions to Materialize at Datacenter Scale") is the concrete SCOPE
instance: given the common subexpressions a workload shares, which are
worth materializing?  Answering either question requires *hypothetically*
editing plans and pricing the edit — precisely a cost model call, and one
where the heuristic models' three-orders-of-magnitude errors make rankings
meaningless.

Two what-if transforms are provided:

* **Materialized view** — :func:`replace_subtree` swaps a logical subtree
  for a Get over the (hypothetically precomputed) view with identical
  output statistics; :func:`find_materialization_candidates` discovers the
  repeated subtrees of a workload to feed it.
* **Input growth** — :func:`scale_tables` rescales base-table cardinalities
  and recomputes every downstream cardinality with the plan builder's own
  composition rules (capacity planning: "what happens when clicks double?").

:class:`WhatIfAnalyzer` wraps both: it re-plans the baseline and the
variant with the learned cost model and reports predicted latency and
CPU-hour deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Callable

from repro.applications.prediction import JobPerformancePredictor, JobPrediction
from repro.cardinality.estimator import CardinalityEstimator
from repro.common.errors import ValidationError
from repro.common.hashing import combine_hashes, stable_hash
from repro.core.predictor import CleoPredictor
from repro.optimizer.planner import PlannerConfig, QueryPlanner
from repro.plan.logical import LogicalOp, LogicalOpType, normalize_input_name
from repro.serving.service import CleoService


# --------------------------------------------------------------------- #
# Structural identity of logical subtrees
# --------------------------------------------------------------------- #


def subtree_key(node: LogicalOp) -> int:
    """Order-sensitive structural hash of a logical subtree.

    Built from template tags only, so two instances of the same recurring
    subexpression (different dates, parameters, input sizes) share a key —
    the same notion of identity the strict subgraph models use.
    """
    return combine_hashes(
        [stable_hash("whatif-key", node.template_tag)]
        + [subtree_key(child) for child in node.children]
    )


@dataclass(frozen=True)
class MaterializationCandidate:
    """A repeated subexpression that could be materialized."""

    key: int
    root_tag: str
    node_count: int
    occurrences: int
    job_ids: tuple[str, ...]
    example: LogicalOp

    def describe(self) -> str:
        return (
            f"{self.root_tag} ({self.node_count} ops): "
            f"{self.occurrences} occurrences across {len(self.job_ids)} jobs"
        )


def find_materialization_candidates(
    plans: dict[str, LogicalOp],
    min_occurrences: int = 2,
    min_nodes: int = 2,
) -> list[MaterializationCandidate]:
    """Repeated subtrees of a workload, most frequent first.

    Subtrees are keyed with :func:`subtree_key`; whole plans and Output
    roots are excluded (materializing the entire job is not a view), as are
    subtrees smaller than ``min_nodes`` operators.
    """
    if min_occurrences < 2:
        raise ValidationError("a candidate needs at least two occurrences")
    occurrences: dict[int, int] = {}
    jobs: dict[int, set[str]] = {}
    example: dict[int, LogicalOp] = {}
    for job_id, plan in plans.items():
        for node in plan.walk():
            if node is plan or node.op_type is LogicalOpType.OUTPUT:
                continue
            if node.node_count < min_nodes:
                continue
            key = subtree_key(node)
            occurrences[key] = occurrences.get(key, 0) + 1
            jobs.setdefault(key, set()).add(job_id)
            example.setdefault(key, node)

    candidates = [
        MaterializationCandidate(
            key=key,
            root_tag=example[key].template_tag,
            node_count=example[key].node_count,
            occurrences=count,
            job_ids=tuple(sorted(jobs[key])),
            example=example[key],
        )
        for key, count in occurrences.items()
        if count >= min_occurrences
    ]
    # Most frequent first; bigger subtrees break ties (more work saved).
    candidates.sort(key=lambda c: (-c.occurrences, -c.node_count, c.root_tag))
    return candidates


# --------------------------------------------------------------------- #
# Logical-plan transforms
# --------------------------------------------------------------------- #


def replace_subtree(
    root: LogicalOp,
    match: Callable[[LogicalOp], bool],
    view_name: str,
) -> LogicalOp:
    """Replace every matched subtree with a Get over ``view_name``.

    The replacement Get inherits the subtree's output statistics (row count
    and width), which is exactly what reading a materialized copy of the
    subexpression's result would deliver.  Matching is outermost-first: a
    matched subtree's interior is not searched again.
    """
    replaced = 0

    def rebuild(node: LogicalOp) -> LogicalOp:
        nonlocal replaced
        if match(node):
            replaced += 1
            return LogicalOp(
                op_type=LogicalOpType.GET,
                children=(),
                template_tag=f"get:{normalize_input_name(view_name)}",
                true_card=node.true_card,
                row_bytes=node.row_bytes,
                normalized_inputs=frozenset({normalize_input_name(view_name)}),
                table=view_name,
            )
        if not node.children:
            return node
        children = tuple(rebuild(child) for child in node.children)
        if all(new is old for new, old in zip(children, node.children)):
            return node
        return dc_replace(node, children=children)

    result = rebuild(root)
    if replaced == 0:
        raise ValidationError("no subtree matched the predicate")
    return result


def scale_tables(root: LogicalOp, factors: dict[str, float]) -> LogicalOp:
    """Rescale base tables and recompute downstream cardinalities.

    Every Get over a table in ``factors`` has its cardinality multiplied by
    the factor; interior cardinalities are recomputed bottom-up using the
    same composition rules the plan builder applies (filters keep their
    true selectivity, joins their fan-out relative to the larger input,
    aggregates their group counts, top-k its limit).
    """
    for table, factor in factors.items():
        if factor <= 0:
            raise ValidationError(f"growth factor for {table} must be positive")

    def rebuild(node: LogicalOp) -> LogicalOp:
        children = tuple(rebuild(child) for child in node.children)
        kind = node.op_type
        if kind is LogicalOpType.GET:
            factor = factors.get(node.table or "", 1.0)
            if factor == 1.0:
                return node
            return dc_replace(node, true_card=node.true_card * factor)

        child_cards = [child.true_card for child in children]
        if kind in (LogicalOpType.FILTER, LogicalOpType.PROCESS):
            card = child_cards[0] * node.sel_true
        elif kind in (LogicalOpType.PROJECT, LogicalOpType.SORT, LogicalOpType.OUTPUT):
            card = child_cards[0]
        elif kind is LogicalOpType.JOIN:
            card = max(child_cards) * node.sel_true
        elif kind is LogicalOpType.AGGREGATE:
            groups = node.group_count if node.group_count is not None else node.true_card
            card = min(child_cards[0], float(groups)) if child_cards[0] > 0 else 0.0
            card = max(card, 1.0 if child_cards[0] > 0 else 0.0)
        elif kind is LogicalOpType.TOP_K:
            card = min(float(node.limit or node.true_card), child_cards[0])
        elif kind is LogicalOpType.UNION:
            card = float(sum(child_cards))
        else:  # pragma: no cover - exhaustive over LogicalOpType
            raise ValidationError(f"cannot recompute cardinality for {kind}")
        if all(new is old for new, old in zip(children, node.children)) and (
            card == node.true_card
        ):
            return node
        return dc_replace(node, children=children, true_card=card)

    return rebuild(root)


# --------------------------------------------------------------------- #
# The analyzer
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class WhatIfOutcome:
    """Predicted effect of one hypothetical change on one job."""

    job_id: str
    baseline: JobPrediction
    variant: JobPrediction

    @property
    def latency_delta_pct(self) -> float:
        """Negative = the change is predicted to make the job faster."""
        base = self.baseline.latency_seconds
        if base <= 0:
            return 0.0
        return 100.0 * (self.variant.latency_seconds - base) / base

    @property
    def cpu_delta_pct(self) -> float:
        base = self.baseline.cpu_seconds
        if base <= 0:
            return 0.0
        return 100.0 * (self.variant.cpu_seconds - base) / base

    def describe(self) -> str:
        return (
            f"{self.job_id}: latency {self.baseline.latency_seconds:.1f}s -> "
            f"{self.variant.latency_seconds:.1f}s ({self.latency_delta_pct:+.1f}%), "
            f"cpu {self.cpu_delta_pct:+.1f}%"
        )


class WhatIfAnalyzer:
    """Prices hypothetical plan changes with the learned cost models."""

    def __init__(
        self,
        predictor: CleoService | CleoPredictor,
        estimator: CardinalityEstimator | None = None,
        planner_config: PlannerConfig | None = None,
    ) -> None:
        self.service = CleoService.ensure(predictor)
        self.estimator = estimator or CardinalityEstimator()
        self.planner_config = planner_config or PlannerConfig()
        self.performance = JobPerformancePredictor(self.service, self.estimator)

    @property
    def predictor(self) -> CleoPredictor:
        """The currently served predictor (tracks service rollbacks)."""
        return self.service.predictor

    # ------------------------------------------------------------------ #
    # Generic transform evaluation
    # ------------------------------------------------------------------ #

    def evaluate(
        self,
        logical: LogicalOp,
        transform: Callable[[LogicalOp], LogicalOp],
        job_id: str = "job",
    ) -> WhatIfOutcome:
        """Plan + predict the job before and after ``transform``."""
        return WhatIfOutcome(
            job_id=job_id,
            baseline=self._plan_and_predict(logical),
            variant=self._plan_and_predict(transform(logical)),
        )

    # ------------------------------------------------------------------ #
    # Canned analyses
    # ------------------------------------------------------------------ #

    def evaluate_materialization(
        self,
        plans: dict[str, LogicalOp],
        candidate: MaterializationCandidate,
        view_name: str | None = None,
    ) -> list[WhatIfOutcome]:
        """Predicted effect of materializing ``candidate`` on each user job.

        Only jobs that contain the candidate subexpression are evaluated;
        the cost of *building* the view is out of scope (it is amortized
        across its consumers in the reference work).
        """
        view = view_name or f"view_{candidate.key & 0xFFFF:04x}"
        outcomes: list[WhatIfOutcome] = []
        for job_id in candidate.job_ids:
            logical = plans[job_id]
            outcomes.append(
                self.evaluate(
                    logical,
                    lambda plan: replace_subtree(
                        plan, lambda node: subtree_key(node) == candidate.key, view
                    ),
                    job_id=job_id,
                )
            )
        return outcomes

    def evaluate_growth(
        self,
        logical: LogicalOp,
        table: str,
        factors: list[float],
        job_id: str = "job",
    ) -> list[tuple[float, WhatIfOutcome]]:
        """Predicted latency/CPU as ``table`` grows by each factor."""
        if not factors:
            raise ValidationError("at least one growth factor is required")
        return [
            (
                factor,
                self.evaluate(
                    logical, lambda plan: scale_tables(plan, {table: factor}), job_id
                ),
            )
            for factor in factors
        ]

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _plan_and_predict(self, logical: LogicalOp) -> JobPrediction:
        planner = QueryPlanner(
            self.service.cost_model(), self.estimator, self.planner_config
        )
        planned = planner.plan(logical)
        return self.performance.predict(planned.plan)
