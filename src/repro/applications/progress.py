"""Query progress estimation from learned cost models.

Section 6.7 cites "estimating the progress of a query especially in
server-less query processors [29]" as a cost-model use case.  Progress
indicators answer "how far along is this job?" while it runs; their quality
hinges on how work is weighted.  Counting finished stages treats a
ten-second stage and a ten-minute stage alike; weighting stages by their
*predicted cost* tracks wall-clock reality much more closely when the
predictions are good — which is exactly what the learned models provide.

The estimator consumes the predicted stage timeline of
:class:`~repro.applications.prediction.JobPrediction` and an executed
:class:`~repro.execution.trace.JobTrace` of the same plan (stage indices
align because both derive from the same stage graph).  At any wall-clock
instant, completed stages contribute their full predicted weight and
running stages a prorated share.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.applications.prediction import JobPrediction
from repro.common.errors import ValidationError
from repro.execution.trace import JobTrace


def stage_count_progress(trace: JobTrace, wall_seconds: float) -> float:
    """Baseline indicator: fraction of stages finished by ``wall_seconds``."""
    if not trace.stages:
        return 1.0
    finished = sum(1 for s in trace.stages if s.finish_seconds <= wall_seconds)
    return finished / len(trace.stages)


@dataclass(frozen=True)
class ProgressReport:
    """Quality summary of a progress indicator over one traced job.

    ``mean_abs_error`` / ``max_abs_error`` measure deviation from the ideal
    indicator (true elapsed-work fraction) sampled uniformly in wall time.
    """

    samples: int
    mean_abs_error: float
    max_abs_error: float


class ProgressEstimator:
    """Work-weighted progress indicator for one executing job."""

    def __init__(self, prediction: JobPrediction) -> None:
        if not prediction.stages:
            raise ValidationError("prediction has no stages")
        self.prediction = prediction
        self._weight = {
            stage.index: max(stage.predicted_seconds, 0.0)
            for stage in prediction.stages
        }
        self._total = sum(self._weight.values())
        if self._total <= 0:
            raise ValidationError("prediction has no positive stage weight")

    # ------------------------------------------------------------------ #
    # Point queries
    # ------------------------------------------------------------------ #

    def progress_at(self, trace: JobTrace, wall_seconds: float) -> float:
        """Estimated completed-work fraction at ``wall_seconds``.

        Stage indices of ``trace`` must match the prediction's (same plan);
        unknown stages are rejected rather than silently ignored.
        """
        done = 0.0
        for stage in trace.stages:
            weight = self._weight.get(stage.index)
            if weight is None:
                raise ValidationError(
                    f"trace stage {stage.index} is unknown to the prediction"
                )
            if stage.finish_seconds <= wall_seconds:
                done += weight
            elif stage.start_seconds < wall_seconds and stage.duration > 0:
                done += weight * (wall_seconds - stage.start_seconds) / stage.duration
        return min(1.0, done / self._total)

    def remaining_seconds(self, trace: JobTrace, wall_seconds: float) -> float:
        """Predicted wall time left, assuming predicted pace continues.

        Scales the predicted total by the share of work still outstanding.
        A job past its predicted end but not finished reports the full
        outstanding share rather than a negative remainder.
        """
        outstanding = 1.0 - self.progress_at(trace, wall_seconds)
        return outstanding * self.prediction.latency_seconds

    # ------------------------------------------------------------------ #
    # Whole-trace evaluation
    # ------------------------------------------------------------------ #

    def curve(self, trace: JobTrace, points: int = 50) -> list[tuple[float, float]]:
        """``(wall_fraction, estimated_progress)`` samples over the run."""
        if points < 2:
            raise ValidationError("curve needs at least two points")
        total = trace.total_latency
        out: list[tuple[float, float]] = []
        for frac in np.linspace(0.0, 1.0, points):
            out.append((float(frac), self.progress_at(trace, frac * total)))
        return out

    def evaluate(self, trace: JobTrace, points: int = 50) -> ProgressReport:
        """Deviation of this indicator from ideal progress.

        The ideal indicator reports exactly the elapsed fraction of the
        job's (unknown ahead of time) total latency; a perfect predictor
        with uniform pacing would sit on that diagonal.
        """
        errors = [
            abs(estimated - frac) for frac, estimated in self.curve(trace, points)
        ]
        return ProgressReport(
            samples=points,
            mean_abs_error=float(np.mean(errors)),
            max_abs_error=float(np.max(errors)),
        )


def evaluate_stage_count_baseline(trace: JobTrace, points: int = 50) -> ProgressReport:
    """The stage-count indicator's deviation from ideal, for comparison."""
    if points < 2:
        raise ValidationError("curve needs at least two points")
    total = trace.total_latency
    errors = [
        abs(stage_count_progress(trace, frac * total) - frac)
        for frac in np.linspace(0.0, 1.0, points)
    ]
    return ProgressReport(
        samples=points,
        mean_abs_error=float(np.mean(errors)),
        max_abs_error=float(np.max(errors)),
    )
