"""Machine-SKU advisor: extending resource-aware planning beyond partitions.

Section 5.2 of the paper notes that its resource-aware abstractions are
"general enough to incorporate additional resources such as memory sizes,
number of cores, VM instance types, and other infrastructure level
decisions".  This module takes up the VM-instance-type case: given models
trained on a reference cluster, which machine SKU should a job run on to
meet a deadline at the lowest dollar cost?

The scaling assumption is stated explicitly: compute time scales inversely
with a SKU's relative speed factor, while the fixed per-stage scheduling
charge does not — exactly the structure of this reproduction's ground
truth (``latency = work / speed``), and a standard first-order model for
real fleets.  Each SKU estimate therefore re-rolls the per-operator
predictions through the stage DAG (so critical paths may shift), rather
than naively scaling the job total.

Dollar cost is billed the serverless way the paper's Section 7 sketches:
container-hours times the SKU's hourly price.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.applications.prediction import JobPerformancePredictor, JobPrediction
from repro.cardinality.estimator import CardinalityEstimator
from repro.common.errors import ValidationError
from repro.core.predictor import CleoPredictor
from repro.features.featurizer import FeatureInput
from repro.plan.physical import PhysicalOp
from repro.plan.signatures import SignatureBundle
from repro.serving.service import CleoService, PredictionRequest


@dataclass(frozen=True)
class MachineSku:
    """One purchasable machine flavour."""

    name: str
    speed_factor: float
    price_per_container_hour: float

    def __post_init__(self) -> None:
        if self.speed_factor <= 0:
            raise ValidationError(f"{self.name}: speed_factor must be positive")
        if self.price_per_container_hour < 0:
            raise ValidationError(f"{self.name}: price must be >= 0")


@dataclass(frozen=True)
class SkuEstimate:
    """Predicted outcome of running one job on one SKU."""

    sku: MachineSku
    prediction: JobPrediction

    @property
    def latency_seconds(self) -> float:
        return self.prediction.latency_seconds

    @property
    def cpu_seconds(self) -> float:
        return self.prediction.cpu_seconds

    @property
    def dollar_cost(self) -> float:
        return self.cpu_seconds / 3600.0 * self.sku.price_per_container_hour

    def dominates(self, other: "SkuEstimate") -> bool:
        """Strictly better on one axis, no worse on the other."""
        return (
            self.latency_seconds <= other.latency_seconds
            and self.dollar_cost <= other.dollar_cost
            and (
                self.latency_seconds < other.latency_seconds
                or self.dollar_cost < other.dollar_cost
            )
        )


@dataclass(frozen=True)
class SkuRecommendation:
    """Outcome of one advisory request."""

    deadline_seconds: float | None
    chosen: SkuEstimate | None
    estimates: tuple[SkuEstimate, ...]

    @property
    def pareto_frontier(self) -> tuple[SkuEstimate, ...]:
        """Non-dominated (latency, cost) estimates, fastest first."""
        frontier = [
            estimate
            for estimate in self.estimates
            if not any(other.dominates(estimate) for other in self.estimates)
        ]
        return tuple(sorted(frontier, key=lambda e: e.latency_seconds))

    def describe(self) -> str:
        lines = []
        if self.deadline_seconds is not None:
            lines.append(f"deadline: {self.deadline_seconds:.0f}s")
        for estimate in sorted(self.estimates, key=lambda e: e.latency_seconds):
            marker = (
                "<- chosen"
                if self.chosen is not None and estimate.sku.name == self.chosen.sku.name
                else ""
            )
            lines.append(
                f"  {estimate.sku.name:<14} {estimate.latency_seconds:8.1f}s  "
                f"${estimate.dollar_cost:8.4f} {marker}"
            )
        if self.chosen is None:
            lines.append("  (no SKU meets the deadline)")
        return "\n".join(lines)


class _ScaledScalarPredictor:
    """Wraps a scalar predictor, scaling every operator cost by a speed ratio.

    Implements the slice of the predictor interface that
    :class:`JobPerformancePredictor` consumes from scalar-only predictors.
    """

    def __init__(self, inner, scale: float) -> None:
        self._inner = inner
        self._scale = scale

    def predict(self, features: FeatureInput, signatures: SignatureBundle) -> float:
        return self._inner.predict(features, signatures) * self._scale


class _ScaledPredictor(_ScaledScalarPredictor):
    """Scaled wrapper that also forwards the batched path, so the inner
    service's grouping and caches are reused per SKU probe."""

    def predict_batch(self, requests: list[PredictionRequest]):
        return self._inner.predict_batch(requests) * self._scale


def _scaled(inner, scale: float) -> _ScaledScalarPredictor:
    """The widest scaled adapter the inner predictor supports."""
    if callable(getattr(inner, "predict_batch", None)):
        return _ScaledPredictor(inner, scale)
    return _ScaledScalarPredictor(inner, scale)


class SkuAdvisor:
    """Recommends machine SKUs using the learned cost models.

    Args:
        predictor: models trained on the reference cluster.
        estimator: compile-time statistics source.
        reference_speed: the speed factor of the cluster the models were
            trained on (its logs priced operators at this speed).
        stage_startup_seconds: per-stage scheduling charge, identical on
            every SKU (container acquisition does not speed up with cores).
    """

    def __init__(
        self,
        predictor: CleoService | CleoPredictor,
        estimator: CardinalityEstimator | None = None,
        reference_speed: float = 1.0,
        stage_startup_seconds: float | None = None,
    ) -> None:
        if reference_speed <= 0:
            raise ValidationError("reference_speed must be positive")
        if isinstance(predictor, (CleoService, CleoPredictor)):
            self.service: CleoService | None = CleoService.ensure(predictor)
        else:  # duck-typed scalar predictor (adapters, tests)
            self.service = None
            self._scalar_predictor = predictor
        self.estimator = estimator or CardinalityEstimator()
        self.reference_speed = reference_speed
        self.stage_startup_seconds = stage_startup_seconds

    @property
    def predictor(self):
        """The currently served predictor (tracks service rollbacks)."""
        if self.service is not None:
            return self.service.predictor
        return self._scalar_predictor

    @property
    def _serving(self):
        return self.service if self.service is not None else self._scalar_predictor

    def estimate(self, plan: PhysicalOp, sku: MachineSku) -> SkuEstimate:
        """Predicted latency/CPU/cost of running ``plan`` on ``sku``."""
        scale = self.reference_speed / sku.speed_factor
        kwargs = {}
        if self.stage_startup_seconds is not None:
            kwargs["stage_startup_seconds"] = self.stage_startup_seconds
        performance = JobPerformancePredictor(
            _scaled(self._serving, scale), self.estimator, **kwargs
        )
        return SkuEstimate(sku=sku, prediction=performance.predict(plan))

    def recommend(
        self,
        plan: PhysicalOp,
        skus: list[MachineSku],
        deadline_seconds: float | None = None,
    ) -> SkuRecommendation:
        """Cheapest SKU meeting the deadline; fastest when none does.

        Without a deadline, the cheapest SKU overall is chosen (ties broken
        by latency).
        """
        if not skus:
            raise ValidationError("at least one SKU is required")
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValidationError("deadline_seconds must be positive")
        estimates = tuple(self.estimate(plan, sku) for sku in skus)
        if deadline_seconds is None:
            chosen = min(estimates, key=lambda e: (e.dollar_cost, e.latency_seconds))
        else:
            feasible = [e for e in estimates if e.latency_seconds <= deadline_seconds]
            chosen = (
                min(feasible, key=lambda e: (e.dollar_cost, e.latency_seconds))
                if feasible
                else None
            )
        return SkuRecommendation(
            deadline_seconds=deadline_seconds, chosen=chosen, estimates=estimates
        )
