"""Job-level performance prediction from the learned cost models.

The paper's evaluation scores Cleo on *operator* costs; a production
deployment mostly consumes them aggregated to the job level: "Examples
include performance prediction [39], allocating resources to queries [25]"
(Section 6.7).  This module rolls per-operator predictions up the stage
graph exactly like the execution substrate does — stage duration is the sum
of its operators' exclusive costs plus the fixed stage-startup charge, job
latency is the critical path over the stage DAG, and total processing time
sums each operator's cost across its partitions.

Point predictions come with empirical confidence intervals: the predictor
is calibrated on a held-out :class:`~repro.execution.runtime_log.RunLog`
by collecting the log-ratio distribution of actual over predicted operator
latencies, and an interval at coverage ``q`` applies that distribution's
central-``q`` quantile band multiplicatively.  This is conformal-style
calibration — no distributional assumption beyond exchangeability of the
residuals between calibration and prediction time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.cardinality.estimator import CardinalityEstimator
from repro.common.errors import ValidationError
from repro.core.predictor import CleoPredictor
from repro.execution.runtime_log import RunLog
from repro.execution.simulator import STAGE_STARTUP_SECONDS
from repro.features.extract import feature_input_for
from repro.plan.physical import PhysicalOp
from repro.plan.signatures import compute_signature_bundles
from repro.plan.stages import build_stage_graph
from repro.serving.service import CleoService, PredictionRequest

_EPS = 1e-9


@dataclass(frozen=True)
class StageEstimate:
    """Predicted timeline entry for one stage of a plan."""

    index: int
    partition_count: int
    operator_types: tuple[str, ...]
    predicted_seconds: float
    predicted_cpu_seconds: float
    start_seconds: float
    finish_seconds: float
    on_critical_path: bool


@dataclass(frozen=True)
class JobPrediction:
    """Predicted end-to-end performance of one physical plan."""

    stages: tuple[StageEstimate, ...]
    latency_seconds: float
    cpu_seconds: float

    @property
    def critical_path(self) -> tuple[StageEstimate, ...]:
        return tuple(s for s in self.stages if s.on_critical_path)

    def bottleneck(self) -> StageEstimate:
        """The longest predicted stage on the critical path."""
        return max(self.critical_path, key=lambda s: s.predicted_seconds)

    def describe(self) -> str:
        lines = [
            f"predicted latency: {self.latency_seconds:.1f}s, "
            f"cpu: {self.cpu_seconds / 3600.0:.2f}h, {len(self.stages)} stages"
        ]
        for stage in sorted(self.stages, key=lambda s: s.start_seconds):
            marker = "*" if stage.on_critical_path else " "
            lines.append(
                f" {marker} stage {stage.index:>2} "
                f"[{stage.start_seconds:8.1f} -> {stage.finish_seconds:8.1f}] "
                f"P={stage.partition_count:<5} {','.join(stage.operator_types)}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class PredictionInterval:
    """A point prediction with a calibrated multiplicative band."""

    point: float
    low: float
    high: float
    coverage: float

    def __post_init__(self) -> None:
        if not 0.0 < self.coverage < 1.0:
            raise ValidationError(f"coverage must be in (0, 1), got {self.coverage}")
        if not self.low <= self.point <= self.high:
            raise ValidationError(
                f"interval must bracket the point: {self.low} <= {self.point} <= {self.high}"
            )

    @property
    def width_factor(self) -> float:
        """Ratio of the band's ends — 1.0 means a degenerate point interval."""
        return self.high / max(self.low, _EPS)

    def contains(self, actual: float) -> bool:
        return self.low <= actual <= self.high


@dataclass(frozen=True)
class CalibrationReport:
    """Summary of one calibration pass over a held-out run log."""

    n_operators: int
    median_log_ratio: float
    log_ratio_quantiles: dict[float, float] = field(default_factory=dict)

    @property
    def median_ratio(self) -> float:
        """Multiplicative bias of the predictor (1.0 = unbiased)."""
        return math.exp(self.median_log_ratio)


class JobPerformancePredictor:
    """Rolls learned operator costs up to job latency and CPU-hours.

    Args:
        predictor: a :class:`~repro.serving.service.CleoService` (preferred:
            plan operators are priced through its batched, cached path), a
            trained :class:`CleoPredictor`, or any object with the scalar
            ``predict(features, signatures)`` surface.
        estimator: the cardinality estimator providing compile-time
            statistics; a fresh default estimator when omitted.
        stage_startup_seconds: fixed per-stage scheduling charge, matching
            the execution substrate's container-acquisition cost.
    """

    def __init__(
        self,
        predictor: CleoService | CleoPredictor,
        estimator: CardinalityEstimator | None = None,
        stage_startup_seconds: float = STAGE_STARTUP_SECONDS,
    ) -> None:
        self.predictor = predictor
        self.estimator = estimator or CardinalityEstimator()
        self.stage_startup_seconds = stage_startup_seconds
        self._log_ratios: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Point prediction
    # ------------------------------------------------------------------ #

    def predict(self, plan: PhysicalOp) -> JobPrediction:
        """Predicted stage timeline, latency, and CPU time for ``plan``."""
        self.estimator.reset()
        bundles = compute_signature_bundles(plan)
        graph = build_stage_graph(plan)

        ops = list(plan.walk())
        op_cost: dict[int, float] = {}
        batch = getattr(self.predictor, "predict_batch", None)
        if callable(batch):
            requests = [
                PredictionRequest(feature_input_for(op, self.estimator), bundles[id(op)])
                for op in ops
            ]
            for op, cost in zip(ops, batch(requests)):
                op_cost[id(op)] = float(cost)
        else:
            for op in ops:
                features = feature_input_for(op, self.estimator)
                op_cost[id(op)] = self.predictor.predict(features, bundles[id(op)])

        durations: dict[int, float] = {}
        cpu: dict[int, float] = {}
        for stage in graph.stages:
            total = sum(op_cost[id(op)] for op in stage.operators)
            durations[stage.index] = self.stage_startup_seconds + total
            cpu[stage.index] = total * stage.partition_count

        start: dict[int, float] = {}
        finish: dict[int, float] = {}
        for stage in graph.topological_order():
            start[stage.index] = max((finish[u] for u in stage.upstream), default=0.0)
            finish[stage.index] = start[stage.index] + durations[stage.index]

        critical: set[int] = set()
        current = max(finish, key=lambda idx: finish[idx])
        while True:
            critical.add(current)
            upstream = graph.stages[current].upstream
            if not upstream:
                break
            current = max(upstream, key=lambda idx: finish[idx])

        stages = tuple(
            StageEstimate(
                index=stage.index,
                partition_count=stage.partition_count,
                operator_types=tuple(op.op_type.value for op in stage.operators),
                predicted_seconds=durations[stage.index],
                predicted_cpu_seconds=cpu[stage.index],
                start_seconds=start[stage.index],
                finish_seconds=finish[stage.index],
                on_critical_path=stage.index in critical,
            )
            for stage in graph.stages
        )
        return JobPrediction(
            stages=stages,
            latency_seconds=max(finish.values()),
            cpu_seconds=float(sum(cpu.values())),
        )

    def predict_latency(self, plan: PhysicalOp) -> float:
        return self.predict(plan).latency_seconds

    # ------------------------------------------------------------------ #
    # Calibration and intervals
    # ------------------------------------------------------------------ #

    def calibrate(self, log: RunLog) -> CalibrationReport:
        """Fit the residual distribution on a held-out run log.

        Collects ``log((actual + 1) / (predicted + 1))`` per operator record
        — the same log-ratio the MSLE training loss penalizes — and stores
        the empirical distribution for interval construction.

        Operator-level residuals transfer only approximately to job-level
        intervals (aggregation cancels some errors and critical-path
        structure adds others); when retained plans are available, prefer
        :meth:`calibrate_jobs`.
        """
        ratios: list[float] = []
        for record in log.operator_records():
            predicted = self.predictor.predict_record(record)
            ratios.append(
                math.log((record.actual_latency + 1.0) / (predicted + 1.0))
            )
        return self._store_ratios(ratios, "calibration log contains no operator records")

    def calibrate_jobs(
        self, plans: dict[str, PhysicalOp], log: RunLog
    ) -> CalibrationReport:
        """Fit the residual distribution at the *job* level.

        Uses jobs present in both ``plans`` and ``log`` (e.g. from a
        workload runner with ``keep_plans=True``), comparing each job's
        predicted end-to-end latency with its logged actual latency — the
        exact quantity :meth:`predict_interval` brackets.

        The calibration log must be *held out from model training*: days
        the individual or combined models trained on have near-zero
        in-sample residuals, which yields intervals far too narrow for any
        future day.
        """
        ratios = [
            math.log((actual + 1.0) / (predicted + 1.0))
            for predicted, actual in self.validate_jobs(plans, log).values()
        ]
        return self._store_ratios(ratios, "no job appears in both plans and log")

    def _store_ratios(self, ratios: list[float], empty_message: str) -> CalibrationReport:
        if not ratios:
            raise ValidationError(empty_message)
        self._log_ratios = np.sort(np.asarray(ratios, dtype=float))
        quantiles = {
            q: float(np.quantile(self._log_ratios, q))
            for q in (0.05, 0.25, 0.5, 0.75, 0.95)
        }
        return CalibrationReport(
            n_operators=len(ratios),
            median_log_ratio=quantiles[0.5],
            log_ratio_quantiles=quantiles,
        )

    @property
    def is_calibrated(self) -> bool:
        return self._log_ratios is not None

    def predict_interval(
        self, plan: PhysicalOp, coverage: float = 0.9
    ) -> PredictionInterval:
        """Point latency prediction with a calibrated interval.

        The central-``coverage`` band of calibration log-ratios is applied
        multiplicatively to the point prediction.  Requires a prior
        :meth:`calibrate` call.
        """
        if self._log_ratios is None:
            raise ValidationError("predict_interval requires calibrate() first")
        if not 0.0 < coverage < 1.0:
            raise ValidationError(f"coverage must be in (0, 1), got {coverage}")
        point = self.predict_latency(plan)
        tail = (1.0 - coverage) / 2.0
        lo = float(np.quantile(self._log_ratios, tail))
        hi = float(np.quantile(self._log_ratios, 1.0 - tail))
        return PredictionInterval(
            point=point,
            low=min(point * math.exp(lo), point),
            high=max(point * math.exp(hi), point),
            coverage=coverage,
        )

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def validate_jobs(
        self, plans: dict[str, PhysicalOp], log: RunLog
    ) -> dict[str, tuple[float, float]]:
        """Predicted vs actual job latency for jobs with retained plans.

        Args:
            plans: ``job_id -> physical plan`` (e.g. from a workload runner
                with ``keep_plans=True``).
            log: the run log holding the jobs' actual latencies.

        Returns:
            ``job_id -> (predicted_latency, actual_latency)`` for every job
            present in both inputs.
        """
        actuals = {job.job_id: job.latency_seconds for job in log}
        out: dict[str, tuple[float, float]] = {}
        for job_id, plan in plans.items():
            actual = actuals.get(job_id)
            if actual is None:
                continue
            out[job_id] = (self.predict_latency(plan), actual)
        return out
