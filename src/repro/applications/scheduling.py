"""Task runtime estimation for cluster scheduling.

Section 6.7 cites "estimating task runtimes for scheduling [6]" (Apollo) as
a cost-model use case.  In SCOPE, the job manager packs stage tasks onto a
bounded pool of containers; how well it packs depends directly on how well
it can predict each stage's runtime.  This module closes that loop on the
reproduction's substrate:

1. :func:`job_to_tasks` decomposes a planned job into stage tasks, each with
   a *predicted* runtime from a cost model (learned or default) and an
   *actual* runtime from the execution simulator's ground truth;
2. :class:`ClusterScheduler` runs an event-driven simulation of a container
   pool executing those tasks under precedence constraints, making ordering
   decisions with the predicted runtimes but advancing time with the actual
   ones;
3. :class:`SchedulingStudy` compares the resulting makespan and mean job
   completion time across estimators — the learned models' better estimates
   translate into better schedules, which is the Apollo argument.

The scheduler is intentionally simple (greedy list scheduling with
longest-estimated-work-first or shortest-estimated-job-first policies);
the comparison isolates the value of the *estimates*, not the policy.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.cardinality.estimator import CardinalityEstimator
from repro.common.errors import ValidationError
from repro.cost.interface import CostModel
from repro.execution.simulator import STAGE_STARTUP_SECONDS, ExecutionSimulator
from repro.plan.physical import PhysicalOp
from repro.plan.signatures import compute_signature_bundles
from repro.plan.stages import build_stage_graph
from repro.serving.service import CleoService, as_cost_model


@dataclass(frozen=True)
class TaskSpec:
    """One schedulable stage task.

    ``containers`` is the stage's partition count — the gang size the task
    occupies while running.  ``upstream`` holds stage indices within the
    same job that must finish first.
    """

    job_id: str
    stage_index: int
    containers: int
    estimated_seconds: float
    actual_seconds: float
    upstream: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.containers < 1:
            raise ValidationError("task needs at least one container")
        if self.estimated_seconds < 0 or self.actual_seconds < 0:
            raise ValidationError("task runtimes must be non-negative")

    @property
    def key(self) -> tuple[str, int]:
        return (self.job_id, self.stage_index)


def job_to_tasks(
    plan: PhysicalOp,
    job_id: str,
    cost_model: "CostModel | CleoService",
    estimator: CardinalityEstimator,
    simulator: ExecutionSimulator,
) -> list[TaskSpec]:
    """Decompose a physical plan into stage tasks with runtime estimates.

    Estimated runtime: the cost model's summed exclusive operator costs plus
    the stage startup charge (what the job manager would compute at submit
    time).  Actual runtime: the simulator's noise-free ground truth (what
    execution will take).
    """
    cost_model = as_cost_model(cost_model)
    estimator.reset()
    graph = build_stage_graph(plan)
    bundles = compute_signature_bundles(plan)
    tasks: list[TaskSpec] = []
    for stage in graph.stages:
        estimated = STAGE_STARTUP_SECONDS + sum(
            cost_model.operator_cost(op, estimator) for op in stage.operators
        )
        actual = STAGE_STARTUP_SECONDS + sum(
            simulator.ground_truth.exclusive_latency(
                op, rng=None, strict_sig=bundles[id(op)].strict
            )
            for op in stage.operators
        )
        tasks.append(
            TaskSpec(
                job_id=job_id,
                stage_index=stage.index,
                containers=stage.partition_count,
                estimated_seconds=estimated,
                actual_seconds=actual,
                upstream=tuple(sorted(stage.upstream)),
            )
        )
    return tasks


@dataclass(frozen=True)
class ScheduleOutcome:
    """Result of one scheduler simulation."""

    makespan: float
    job_completion: dict[str, float]
    container_busy_seconds: float
    total_containers: int

    @property
    def mean_job_completion(self) -> float:
        if not self.job_completion:
            return 0.0
        return sum(self.job_completion.values()) / len(self.job_completion)

    @property
    def utilization(self) -> float:
        """Busy container-seconds over the pool's capacity until makespan."""
        capacity = self.total_containers * self.makespan
        if capacity <= 0:
            return 0.0
        return min(1.0, self.container_busy_seconds / capacity)


class ClusterScheduler:
    """Greedy list scheduler over a bounded container pool.

    Policies (applied to the *estimated* runtimes, since the scheduler
    cannot see the future):

    * ``"lpt"`` — longest predicted task first, the classic makespan
      heuristic;
    * ``"sjf"`` — tasks of the job with the shortest predicted remaining
      work first, which favours mean job completion time;
    * ``"fifo"`` — submission order, the estimate-free baseline.
    """

    POLICIES = ("lpt", "sjf", "fifo")

    def __init__(self, total_containers: int, policy: str = "lpt") -> None:
        if total_containers < 1:
            raise ValidationError("scheduler needs at least one container")
        if policy not in self.POLICIES:
            raise ValidationError(f"unknown policy {policy!r}; use one of {self.POLICIES}")
        self.total_containers = total_containers
        self.policy = policy

    def run(self, jobs: dict[str, list[TaskSpec]]) -> ScheduleOutcome:
        """Simulate executing all jobs' tasks on the container pool.

        Tasks become ready when their upstream stages (same job) finish.
        A ready task runs as soon as its gang of containers is free; gangs
        larger than the pool are clamped to the pool size (SCOPE runs such
        stages in waves; the wave overhead is already inside the actual
        runtime via the per-partition setup term).
        """
        remaining_work = {
            job_id: sum(t.estimated_seconds for t in tasks)
            for job_id, tasks in jobs.items()
        }
        submit_order = {
            task.key: order
            for order, task in enumerate(
                itertools.chain.from_iterable(jobs.values())
            )
        }
        pending: dict[tuple[str, int], TaskSpec] = {
            task.key: task for tasks in jobs.values() for task in tasks
        }
        if len(pending) != sum(len(t) for t in jobs.values()):
            raise ValidationError("duplicate (job_id, stage_index) among tasks")
        done: set[tuple[str, int]] = set()
        ready: list[TaskSpec] = [
            task for task in pending.values() if not task.upstream
        ]
        for task in ready:
            del pending[task.key]

        clock = 0.0
        free = self.total_containers
        busy_seconds = 0.0
        completion: dict[str, float] = {}
        running: list[tuple[float, int, TaskSpec]] = []  # (finish, tiebreak, task)
        tiebreak = itertools.count()

        while ready or running:
            started = True
            while started:
                started = False
                for task in sorted(ready, key=lambda t: self._priority(t, remaining_work, submit_order)):
                    gang = min(task.containers, self.total_containers)
                    if gang <= free:
                        free -= gang
                        finish = clock + task.actual_seconds
                        busy_seconds += gang * task.actual_seconds
                        heapq.heappush(running, (finish, next(tiebreak), task))
                        ready.remove(task)
                        started = True
                        break
            if not running:
                raise ValidationError(
                    "deadlock: ready tasks cannot fit and nothing is running"
                )
            finish, _, finished_task = heapq.heappop(running)
            clock = finish
            free += min(finished_task.containers, self.total_containers)
            done.add(finished_task.key)
            remaining_work[finished_task.job_id] -= finished_task.estimated_seconds
            completion[finished_task.job_id] = clock
            newly_ready = [
                task
                for task in pending.values()
                if all((task.job_id, u) in done for u in task.upstream)
            ]
            for task in newly_ready:
                del pending[task.key]
                ready.append(task)

        if pending:
            raise ValidationError(
                f"unreachable tasks (cyclic or dangling upstream): "
                f"{sorted(pending)}"
            )
        return ScheduleOutcome(
            makespan=clock,
            job_completion=completion,
            container_busy_seconds=busy_seconds,
            total_containers=self.total_containers,
        )

    def _priority(
        self,
        task: TaskSpec,
        remaining_work: dict[str, float],
        submit_order: dict[tuple[str, int], int],
    ) -> tuple[float, int]:
        """Sort key — lower runs first."""
        if self.policy == "lpt":
            return (-task.estimated_seconds, submit_order[task.key])
        if self.policy == "sjf":
            return (remaining_work[task.job_id], submit_order[task.key])
        return (float(submit_order[task.key]), 0)


@dataclass
class SchedulingStudy:
    """Compares schedule quality across runtime estimators.

    Each named estimator is a cost model used to produce the *estimated*
    runtimes; the actual runtimes (and thus the executed schedule length)
    come from the shared ground truth, so differences in outcome are due
    purely to estimate-driven ordering decisions.
    """

    simulator: ExecutionSimulator
    estimator: CardinalityEstimator
    total_containers: int
    policy: str = "sjf"
    results: dict[str, ScheduleOutcome] = field(default_factory=dict)

    def run(
        self,
        plans: dict[str, PhysicalOp],
        cost_models: "dict[str, CostModel | CleoService]",
    ) -> dict[str, ScheduleOutcome]:
        """Schedule the same plans under each estimator; returns outcomes."""
        if not plans:
            raise ValidationError("scheduling study needs at least one plan")
        scheduler = ClusterScheduler(self.total_containers, self.policy)
        self.results = {}
        for name, model in cost_models.items():
            jobs = {
                job_id: job_to_tasks(plan, job_id, model, self.estimator, self.simulator)
                for job_id, plan in plans.items()
            }
            self.results[name] = scheduler.run(jobs)
        return self.results

    def oracle(self, plans: dict[str, PhysicalOp]) -> ScheduleOutcome:
        """Schedule with perfect runtime knowledge (the lower bound)."""
        scheduler = ClusterScheduler(self.total_containers, self.policy)
        jobs: dict[str, list[TaskSpec]] = {}
        for job_id, plan in plans.items():
            tasks = job_to_tasks(
                plan, job_id, _OracleCostModel(self.simulator), self.estimator, self.simulator
            )
            jobs[job_id] = tasks
        return scheduler.run(jobs)


class _OracleCostModel:
    """Prices operators at their true noise-free latency (study baseline)."""

    def __init__(self, simulator: ExecutionSimulator) -> None:
        self._simulator = simulator

    def operator_cost(
        self,
        op: PhysicalOp,
        estimator: CardinalityEstimator,
        partition_override: int | None = None,
    ) -> float:
        priced = (
            op if partition_override is None else op.with_partition_count(partition_override)
        )
        bundle_op = compute_signature_bundles(op)[id(op)]
        return self._simulator.ground_truth.exclusive_latency(
            priced, rng=None, strict_sig=bundle_op.strict
        )
