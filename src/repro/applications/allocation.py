"""SLO-driven resource allocation from learned cost models.

"Generating efficient combination of query plans and resources are also
relevant to the new breed of serverless computing ... the optimizer needs to
accurately estimate the cost of queries for given resources and explore
different resource combinations so that users do not end up over-paying for
their queries" (Section 7 of the paper; see also the Morpheus SLO use case
in Section 6.7).

The allocator answers the operational question directly: *given a latency
deadline, how few containers can this job run on?*  For each candidate
container budget it re-plans the job with the learned cost model under that
budget (so the plan itself adapts — narrower budgets may prefer different
physical operators and exchange placements) and predicts end-to-end latency
with :class:`~repro.applications.prediction.JobPerformancePredictor`.  The
decision is the cheapest budget whose prediction meets the deadline.

Budgets are swept geometrically, mirroring the paper's observation that the
relative change in partitions is what matters (Section 5.3): a step from 16
to 32 containers moves cost far more than 1200 to 1216.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.applications.prediction import JobPerformancePredictor
from repro.cardinality.estimator import CardinalityEstimator
from repro.common.errors import ValidationError
from repro.core.predictor import CleoPredictor
from repro.optimizer.partition import AnalyticalStrategy
from repro.optimizer.planner import PlannerConfig, QueryPlanner
from repro.plan.logical import LogicalOp
from repro.plan.physical import PhysicalOp
from repro.serving.service import CleoService


@dataclass(frozen=True)
class AllocationPoint:
    """One point of the containers-versus-latency trade-off curve."""

    container_budget: int
    predicted_latency: float
    predicted_cpu_seconds: float
    plan: PhysicalOp

    @property
    def predicted_cpu_hours(self) -> float:
        return self.predicted_cpu_seconds / 3600.0


@dataclass(frozen=True)
class AllocationDecision:
    """Outcome of one allocation request."""

    deadline_seconds: float
    chosen: AllocationPoint | None
    curve: tuple[AllocationPoint, ...]

    @property
    def meets_deadline(self) -> bool:
        return self.chosen is not None

    @property
    def container_budget(self) -> int:
        """The granted budget; the largest probed budget when infeasible."""
        if self.chosen is not None:
            return self.chosen.container_budget
        return self.curve[-1].container_budget

    def describe(self) -> str:
        lines = [f"deadline: {self.deadline_seconds:.0f}s"]
        for point in self.curve:
            marker = (
                "<- chosen"
                if self.chosen is not None
                and point.container_budget == self.chosen.container_budget
                else ""
            )
            lines.append(
                f"  {point.container_budget:>5} containers: "
                f"{point.predicted_latency:8.1f}s predicted, "
                f"{point.predicted_cpu_hours:6.2f} cpu-h {marker}"
            )
        if self.chosen is None:
            lines.append("  (no probed budget meets the deadline)")
        return "\n".join(lines)


class ResourceAllocator:
    """Finds the fewest containers that keep a job within its deadline.

    Args:
        predictor: a :class:`~repro.serving.service.CleoService` (or bare
            trained models, which are wrapped in one) used both for planning
            and for latency prediction.
        estimator: compile-time cardinality estimator shared by planner and
            predictor.
        base_config: planner configuration to derive budgeted configs from;
            its ``max_partitions`` is the widest budget ever probed.
        budget_growth: geometric step between probed budgets (> 1).
    """

    def __init__(
        self,
        predictor: CleoService | CleoPredictor,
        estimator: CardinalityEstimator | None = None,
        base_config: PlannerConfig | None = None,
        budget_growth: float = 2.0,
    ) -> None:
        if budget_growth <= 1.0:
            raise ValidationError(f"budget_growth must be > 1, got {budget_growth}")
        self.service = CleoService.ensure(predictor)
        self.estimator = estimator or CardinalityEstimator()
        self.base_config = base_config or PlannerConfig(
            partition_strategy=AnalyticalStrategy()
        )
        self.budget_growth = budget_growth
        self.performance = JobPerformancePredictor(self.service, self.estimator)

    @property
    def predictor(self) -> CleoPredictor:
        """The currently served predictor (tracks service rollbacks)."""
        return self.service.predictor

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def candidate_budgets(self, min_budget: int = 1) -> list[int]:
        """Geometric budget ladder up to the planner's ``max_partitions``."""
        if min_budget < 1:
            raise ValidationError(f"min_budget must be >= 1, got {min_budget}")
        budgets: list[int] = []
        budget = float(max(min_budget, 1))
        ceiling = self.base_config.max_partitions
        while int(budget) < ceiling:
            if not budgets or int(budget) != budgets[-1]:
                budgets.append(int(budget))
            budget *= self.budget_growth
        budgets.append(ceiling)
        return budgets

    def tradeoff_curve(
        self, logical: LogicalOp, budgets: list[int] | None = None
    ) -> tuple[AllocationPoint, ...]:
        """Plan + predict the job at each container budget."""
        budgets = budgets if budgets is not None else self.candidate_budgets()
        if not budgets:
            raise ValidationError("at least one budget is required")
        points: list[AllocationPoint] = []
        for budget in budgets:
            if budget < 1:
                raise ValidationError(f"budgets must be >= 1, got {budget}")
            plan = self._plan_under_budget(logical, budget)
            prediction = self.performance.predict(plan)
            points.append(
                AllocationPoint(
                    container_budget=budget,
                    predicted_latency=prediction.latency_seconds,
                    predicted_cpu_seconds=prediction.cpu_seconds,
                    plan=plan,
                )
            )
        return tuple(points)

    def allocate(
        self,
        logical: LogicalOp,
        deadline_seconds: float,
        budgets: list[int] | None = None,
    ) -> AllocationDecision:
        """The cheapest probed budget predicted to meet ``deadline_seconds``.

        When several feasible budgets exist the smallest wins; ties on
        budget cannot occur because budgets are distinct.  An infeasible
        deadline yields ``chosen=None`` with the full curve for diagnosis.
        """
        if deadline_seconds <= 0:
            raise ValidationError(
                f"deadline_seconds must be positive, got {deadline_seconds}"
            )
        curve = self.tradeoff_curve(logical, budgets)
        feasible = [p for p in curve if p.predicted_latency <= deadline_seconds]
        chosen = min(feasible, key=lambda p: p.container_budget) if feasible else None
        return AllocationDecision(
            deadline_seconds=deadline_seconds, chosen=chosen, curve=curve
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _plan_under_budget(self, logical: LogicalOp, budget: int) -> PhysicalOp:
        """Re-plan with every partition knob capped at ``budget``."""
        config = replace(
            self.base_config,
            max_partitions=budget,
            default_partition_cap=min(self.base_config.default_partition_cap, budget),
        )
        planner = QueryPlanner(self.service.cost_model(), self.estimator, config)
        return planner.plan(logical).plan
