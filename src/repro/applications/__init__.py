"""Downstream applications of the learned cost models.

Section 6.7 of the paper lists cost-model use cases beyond physical plan
selection that "are relevant in cloud environments, where accuracy of
predicted costs is crucial": performance prediction, allocating resources
to queries, estimating task runtimes for scheduling, estimating the
progress of a query, and running what-if analysis for physical design
selection.  This package implements each of them on top of the
:class:`~repro.serving.service.CleoService` serving façade (operators are
priced through its batched, cached path) — they are the paper's "future
work" made concrete on this reproduction's substrate.

* :mod:`repro.applications.prediction` — job-level latency / CPU-hour
  prediction with empirical confidence intervals;
* :mod:`repro.applications.allocation` — SLO-driven container allocation
  (find the fewest containers that still meet a deadline);
* :mod:`repro.applications.scheduling` — stage-task runtime estimation
  feeding a container-pool scheduler simulation;
* :mod:`repro.applications.progress` — work-weighted query progress
  estimation against the stage-count baseline;
* :mod:`repro.applications.whatif` — what-if analysis for physical design
  (materialized views, input growth) priced by the learned models;
* :mod:`repro.applications.sku` — machine-SKU advisor, the "VM instance
  types" extension Section 5.2 declares the resource abstractions general
  enough to support.
"""

from repro.applications.allocation import (
    AllocationDecision,
    AllocationPoint,
    ResourceAllocator,
)
from repro.applications.prediction import (
    CalibrationReport,
    JobPerformancePredictor,
    JobPrediction,
    PredictionInterval,
    StageEstimate,
)
from repro.applications.progress import (
    ProgressEstimator,
    ProgressReport,
    evaluate_stage_count_baseline,
    stage_count_progress,
)
from repro.applications.scheduling import (
    ClusterScheduler,
    ScheduleOutcome,
    SchedulingStudy,
    TaskSpec,
    job_to_tasks,
)
from repro.applications.sku import (
    MachineSku,
    SkuAdvisor,
    SkuEstimate,
    SkuRecommendation,
)
from repro.applications.whatif import (
    MaterializationCandidate,
    WhatIfAnalyzer,
    WhatIfOutcome,
    find_materialization_candidates,
    replace_subtree,
    scale_tables,
    subtree_key,
)

__all__ = [
    "AllocationDecision",
    "AllocationPoint",
    "CalibrationReport",
    "ClusterScheduler",
    "JobPerformancePredictor",
    "JobPrediction",
    "MachineSku",
    "MaterializationCandidate",
    "PredictionInterval",
    "ProgressEstimator",
    "ProgressReport",
    "ResourceAllocator",
    "ScheduleOutcome",
    "SchedulingStudy",
    "SkuAdvisor",
    "SkuEstimate",
    "SkuRecommendation",
    "StageEstimate",
    "TaskSpec",
    "WhatIfAnalyzer",
    "WhatIfOutcome",
    "evaluate_stage_count_baseline",
    "find_materialization_candidates",
    "job_to_tasks",
    "replace_subtree",
    "scale_tables",
    "stage_count_progress",
    "subtree_key",
]
