"""Command-line interface: ``python -m repro <command>``.

Eight commands cover the library's day-to-day loops without writing code:

* ``workload``   — generate + execute a synthetic cluster workload and
  print its Figure-9-style profile;
* ``train``      — run a workload, train Cleo on the early days via
  :class:`~repro.serving.service.CleoService`, and save the models to a
  JSON model file (the paper's "models can be served from a text file",
  Section 5.1);
* ``evaluate``   — load a saved model file and score it against the same
  workload's held-out day, printing the per-model-kind quality table;
* ``predict``    — serve a saved model file against a held-out day through
  the batched prediction path, reporting accuracy, per-model-group call
  counts, and cache hit rates, with optional per-operator explanations;
* ``experiment`` — regenerate any paper table/figure or ablation by id
  (``--list`` enumerates them), printing the same report the benchmark
  suite persists;
* ``bench-serving`` — replay the deterministic serving load through the
  sharded router at each ``--shards``/``--workers`` pairing and write
  ``BENCH_serving.json`` (throughput, p50/p99 latency, bitwise parity
  with single-process serving);
* ``bench-plan`` — re-plan the generated workload's test day with learned
  costs through the scalar and batched planners and write
  ``BENCH_plan.json`` (timings plus bitwise plan parity);
* ``bench-replan`` — replan a recurring-job fleet (each test-day job
  replicated into several live instances) through the per-job batched
  planner and the fleet skeleton-replay driver and write
  ``BENCH_replan.json`` (timings, bitwise plan parity, and per-prediction
  lookup accounting);
* ``bench-faults`` — replay the serving load through the hardened router
  under each deterministic fault scenario and write ``BENCH_faults.json``
  (availability, p99 under faults, degraded fraction, breaker activity,
  zero-fault bitwise/counter parity);
* ``lint``       — run the determinism & concurrency invariant checker
  (:mod:`repro.analysis`) over the tree: builtin-``hash``/set-iteration
  hazards, wall-clock/raw-RNG in deterministic modules, batch-variant
  float reductions in parity-pinned code, lock discipline, and test
  coverage of every ``*_reference`` baseline; fails on any finding not
  pragma-justified or recorded in ``LINT_BASELINE.json``.

Every command is deterministic given ``--seed`` (and ``lint`` given the
tree: its JSON report is byte-identical across PYTHONHASHSEED values).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.experiments.harness import ExperimentResult

# Lazy imports inside handlers keep `--help` fast.


def _experiment_registry() -> dict[str, Callable[[str, int], ExperimentResult]]:
    """Experiment id -> runner(scale, seed)."""
    from repro.experiments import (
        ablations,
        ext_applications,
        fig1_motivation,
        fig2_recurring,
        fig3_adhoc,
        fig5_6_feature_weights,
        fig7_heatmap,
        fig8c_lookups,
        fig9_workload_summary,
        fig10_workload_changes,
        fig11_cv_cdfs,
        fig12_13_accuracy_cdfs,
        fig14_robustness,
        fig15_cardlearner,
        fig16_hashjoin_weights,
        fig17_partition_exploration,
        fig18_feature_ablation,
        fig19_production_performance,
        fig20_tpch,
        tab1_loss_functions,
        tab2_3_features,
        tab4_subgraph_models,
        tab5_individual_models,
        tab6_combined_meta,
        tab7_cluster1_breakdown,
        tab8_all_clusters,
    )

    registry: dict[str, Callable[[str, int], ExperimentResult]] = {
        "fig1": fig1_motivation.run,
        "fig2": fig2_recurring.run,
        "fig3": fig3_adhoc.run,
        "fig5_6": fig5_6_feature_weights.run,
        "fig7": fig7_heatmap.run,
        "fig8c": fig8c_lookups.run,
        "fig9": fig9_workload_summary.run,
        "fig10": fig10_workload_changes.run,
        "fig11": fig11_cv_cdfs.run,
        "fig12": lambda scale, seed: fig12_13_accuracy_cdfs.run(scale, seed, adhoc_only=False),
        "fig13": lambda scale, seed: fig12_13_accuracy_cdfs.run(scale, seed, adhoc_only=True),
        "fig14": fig14_robustness.run,
        "fig15": fig15_cardlearner.run,
        "fig16": fig16_hashjoin_weights.run,
        "fig17": fig17_partition_exploration.run,
        "fig18": fig18_feature_ablation.run,
        "fig19": fig19_production_performance.run,
        "fig20": fig20_tpch.run,
        "tab1": tab1_loss_functions.run,
        "tab2_3": tab2_3_features.run,
        "tab4": tab4_subgraph_models.run,
        "tab5": tab5_individual_models.run,
        "tab6": tab6_combined_meta.run,
        "tab7": tab7_cluster1_breakdown.run,
        "tab8": tab8_all_clusters.run,
        "ablation_jitter": ablations.run_jitter_ablation,
        "ablation_nonneg": ablations.run_nonneg_ablation,
        "ablation_noise": ablations.run_noise_sensitivity,
        "ablation_window": ablations.run_window_ablation,
        "ablation_meta": ablations.run_meta_ablation,
        "ablation_global": ablations.run_specialization_ablation,
        "ext_applications": ext_applications.run,
    }
    return registry


def _build_workload(args: argparse.Namespace):
    """Shared workload construction for workload/train/evaluate."""
    from repro.execution.hardware import ClusterSpec
    from repro.workload import ClusterWorkloadConfig, WorkloadGenerator, WorkloadRunner

    config = ClusterWorkloadConfig(
        cluster_name=args.cluster,
        n_tables=args.tables,
        n_fragments=args.fragments,
        n_templates=args.templates,
        seed=args.seed,
    )
    generator = WorkloadGenerator(config)
    runner = WorkloadRunner(
        cluster=ClusterSpec(name=args.cluster), seed=args.seed, keep_plans=True
    )
    return generator, runner


def cmd_workload(args: argparse.Namespace) -> int:
    from repro.workload.analysis import profile_workload

    generator, runner = _build_workload(args)
    log = runner.run_days(generator, days=range(1, args.days + 1))
    profile = profile_workload(log)
    print(f"cluster {args.cluster}: {args.days} days, seed {args.seed}")
    print(f"  jobs:                    {profile.total_jobs}")
    print(f"  recurring jobs:          {profile.recurring_jobs} "
          f"({100 * profile.recurring_fraction:.0f}%)")
    print(f"  recurring templates:     {profile.recurring_templates}")
    print(f"  subexpressions:          {profile.total_subexpressions}")
    print(f"  common subexpressions:   {profile.common_subexpressions} "
          f"({100 * profile.common_fraction:.0f}%)")
    print(f"  trainable (>=5 occurr.): {profile.trainable_subexpressions} "
          f"({100 * profile.trainable_fraction:.0f}%)")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    from repro.serving import CleoService

    if args.days < 3:
        print("train needs at least 3 days (2 train + 1 combined)", file=sys.stderr)
        return 2
    generator, runner = _build_workload(args)
    log = runner.run_days(generator, days=range(1, args.days + 1))
    train_days = list(range(1, args.days))
    service = CleoService.train(
        log, individual_days=train_days, combined_days=[args.days - 1]
    )
    service.save(args.out)
    print(f"trained {service.model_count} models on days {train_days} "
          f"({len(log.filter(days=train_days))} jobs)")
    print(f"saved model file: {args.out} "
          f"({service.memory_bytes / 1024:.0f} KiB in memory)")
    return 0


def _load_service(path: str):
    """Load a model file, or return None after printing a clean error."""
    from repro.serving import CleoService

    try:
        return CleoService.load(path)
    except FileNotFoundError:
        print(f"model file not found: {path}", file=sys.stderr)
    except OSError as exc:  # directory, permission denied, ...
        print(f"cannot read model file: {path} ({exc})", file=sys.stderr)
    except (ValueError, KeyError, TypeError, AttributeError) as exc:
        # Malformed payloads surface as assorted lookup/shape errors deep in
        # deserialization; all of them mean "this is not a model file".
        print(f"not a valid model file: {path} ({exc})", file=sys.stderr)
    return None


def cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.core import evaluate_predictor_on_log, evaluate_store_on_log

    service = _load_service(args.model)
    if service is None:
        return 2
    generator, runner = _build_workload(args)
    log = runner.run_days(generator, days=[args.day])
    print(f"evaluating {args.model} on day {args.day} "
          f"({len(log)} jobs, {log.operator_count} operators)")
    print(f"  {'model':<22} {'corr':>6} {'median_err':>11} {'coverage':>9}")
    for kind, quality in evaluate_store_on_log(service.store, log).items():
        print(f"  {quality.name:<22} {quality.pearson:6.2f} "
              f"{quality.median_error_pct:10.1f}% {quality.coverage_pct:8.1f}%")
    combined = evaluate_predictor_on_log(service, log)
    print(f"  {'combined':<22} {combined.pearson:6.2f} "
          f"{combined.median_error_pct:10.1f}% {100.0:8.1f}%")
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    from repro.common.stats import median_error_pct, pearson

    service = _load_service(args.model)
    if service is None:
        return 2
    generator, runner = _build_workload(args)
    log = runner.run_days(generator, days=[args.day])
    records = list(log.operator_records())
    if not records:
        print(f"day {args.day} produced no operators", file=sys.stderr)
        return 2

    predicted = service.predict_records(records)
    actual = [r.actual_latency for r in records]
    stats = service.stats()
    print(f"served {args.model} over day {args.day}: "
          f"{len(log)} jobs, {len(records)} operators")
    print(f"  pearson correlation:   {pearson(list(predicted), actual):6.2f}")
    print(f"  median error:          {median_error_pct(list(predicted), actual):6.1f}%")
    print(f"  vectorized model calls: {stats.model_calls} "
          f"({stats.individual_model_calls} individual model groups + "
          f"{stats.combined_model_calls} combined)")
    print(f"  prediction cache:      {stats.cache_hits} hits / "
          f"{stats.cache.requests} lookups "
          f"({100.0 * stats.hit_rate:.1f}% hit rate), "
          f"{stats.in_batch_reuses} in-batch reuses")
    if args.explain > 0:
        shown = min(args.explain, len(records))
        print(f"\nfirst {shown} operators explained:")
        for record in records[:shown]:
            explanation = service.explain(record.features, record.signatures)
            print(f"  {record.op_type:<18} {explanation.describe()}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    registry = _experiment_registry()
    if args.list or args.id is None:
        print("available experiment ids:")
        for key in registry:
            print(f"  {key}")
        return 0 if args.list else 2
    runner = registry.get(args.id)
    if runner is None:
        print(f"unknown experiment id {args.id!r}; use --list", file=sys.stderr)
        return 2
    result = runner(args.scale, args.seed)
    print(result.to_text())
    return 0


def cmd_bench_serving(args: argparse.Namespace) -> int:
    from repro.experiments.serving_throughput import (
        format_result,
        run_benchmark,
        write_result,
    )

    if len(args.shards) != len(args.workers):
        print("--shards and --workers must pair up", file=sys.stderr)
        return 2
    result = run_benchmark(
        scale=args.scale,
        clusters=tuple(args.clusters),
        seed=args.seed,
        epochs=args.epochs,
        configs=tuple(zip(args.shards, args.workers)),
        max_jobs_per_cluster=args.max_jobs,
    )
    path = write_result(result, args.out)
    print(format_result(result))
    print(f"wrote {path}")
    if not result["predictions_bitwise_identical"]:
        print(
            "ERROR: sharded predictions diverged from the single-process service",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_bench_plan(args: argparse.Namespace) -> int:
    from repro.experiments.plan_throughput import (
        format_result,
        run_benchmark,
        write_result,
    )

    result = run_benchmark(scale=args.scale, seed=args.seed, repeats=args.repeats)
    path = write_result(result, args.out)
    print(format_result(result))
    print(f"wrote {path}")
    if not result["plans_bitwise_identical"]:
        print(
            "ERROR: batched planning diverged from the scalar planner",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_bench_replan(args: argparse.Namespace) -> int:
    from repro.experiments.replan_throughput import (
        format_result,
        run_benchmark,
        write_result,
    )

    result = run_benchmark(
        scale=args.scale,
        seed=args.seed,
        repeats=args.repeats,
        instances=args.instances,
    )
    path = write_result(result, args.out)
    print(format_result(result))
    print(f"wrote {path}")
    if not result["plans_bitwise_identical"]:
        print(
            "ERROR: fleet replay diverged from the per-job planner",
            file=sys.stderr,
        )
        return 1
    if not result["lookup_accounting_identical"]:
        print(
            "ERROR: fleet replay changed per-prediction lookup accounting",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_bench_faults(args: argparse.Namespace) -> int:
    from repro.experiments.fault_tolerance import (
        PIPELINE_SCENARIOS,
        format_result,
        list_scenarios,
        run_benchmark,
        select_scenarios,
        write_result,
    )

    if args.list_scenarios:
        print(list_scenarios())
        return 0

    if args.scenario:
        try:
            serving, pipeline = select_scenarios(args.scenario)
        except ValueError as exc:
            print(f"ERROR: {exc}", file=sys.stderr)
            return 2
    else:
        serving, pipeline = tuple(args.scenarios), PIPELINE_SCENARIOS

    result = run_benchmark(
        scale=args.scale,
        clusters=tuple(args.clusters),
        seed=args.seed,
        epochs=args.epochs,
        shards=args.shards,
        workers=args.workers,
        scenarios=serving,
        max_jobs_per_cluster=args.max_jobs,
        pipeline_scenarios=pipeline,
        hedge_threshold_s=args.hedge_threshold or None,
    )
    path = write_result(result, args.out)
    print(format_result(result))
    print(f"wrote {path}")
    if not result["zero_fault"]["predictions_bitwise_identical"]:
        print(
            "ERROR: hardened router diverged from the fail-fast fleet",
            file=sys.stderr,
        )
        return 1
    if not result["zero_fault"]["stats_counter_identical"]:
        print(
            "ERROR: hardened router stats diverged with faults disabled",
            file=sys.stderr,
        )
        return 1
    if not result["all_available"]:
        print(
            "ERROR: a fault scenario dropped below availability 1.0",
            file=sys.stderr,
        )
        return 1
    if result["pipeline_all_recovered"] is False:
        print(
            "ERROR: a pipeline chaos scenario failed to recover",
            file=sys.stderr,
        )
        return 1
    hedging = result["hedging"]
    if hedging is not None and not hedging["predictions_bitwise_identical"]:
        print(
            "ERROR: hedged serving diverged from the unhedged replay",
            file=sys.stderr,
        )
        return 1
    if hedging is not None and hedging["hedges"] == 0:
        print(
            "ERROR: hedging enabled but no request was hedged",
            file=sys.stderr,
        )
        return 1
    return 0


def _add_workload_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cluster", default="cluster1", help="cluster name (default: cluster1)")
    parser.add_argument("--tables", type=int, default=8, help="base tables (default: 8)")
    parser.add_argument("--fragments", type=int, default=14, help="shared plan fragments (default: 14)")
    parser.add_argument("--templates", type=int, default=24, help="recurring templates (default: 24)")
    parser.add_argument("--seed", type=int, default=0, help="deterministic seed (default: 0)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cleo reproduction: learned cost models for big data query processing",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_workload = sub.add_parser("workload", help="run a synthetic workload, print its profile")
    _add_workload_options(p_workload)
    p_workload.add_argument("--days", type=int, default=3, help="days to run (default: 3)")
    p_workload.set_defaults(func=cmd_workload)

    p_train = sub.add_parser("train", help="train Cleo on a workload and save the model file")
    _add_workload_options(p_train)
    p_train.add_argument("--days", type=int, default=3, help="days to run (default: 3)")
    p_train.add_argument("--out", default="cleo_models.json", help="output model file")
    p_train.set_defaults(func=cmd_train)

    p_eval = sub.add_parser("evaluate", help="evaluate a saved model file on a held-out day")
    _add_workload_options(p_eval)
    p_eval.add_argument("--model", required=True, help="model file from `repro train`")
    p_eval.add_argument("--day", type=int, default=3, help="held-out day (default: 3)")
    p_eval.set_defaults(func=cmd_evaluate)

    p_pred = sub.add_parser(
        "predict", help="serve a model file against a held-out day (batched)"
    )
    _add_workload_options(p_pred)
    p_pred.add_argument("--model", required=True, help="model file from `repro train`")
    p_pred.add_argument("--day", type=int, default=3, help="held-out day (default: 3)")
    p_pred.add_argument("--explain", type=int, default=0, metavar="N",
                        help="also explain the first N operator predictions")
    p_pred.set_defaults(func=cmd_predict)

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure or ablation")
    p_exp.add_argument("id", nargs="?", help="experiment id, e.g. tab5 or fig14")
    p_exp.add_argument("--list", action="store_true", help="list available experiment ids")
    p_exp.add_argument("--scale", default="tiny", choices=("tiny", "small", "full"),
                       help="workload scale (default: tiny)")
    p_exp.add_argument("--seed", type=int, default=0, help="deterministic seed (default: 0)")
    p_exp.set_defaults(func=cmd_experiment)

    p_serve = sub.add_parser(
        "bench-serving",
        help="load-test the sharded serving tier and write BENCH_serving.json",
    )
    p_serve.add_argument("--scale", default="small", choices=("tiny", "small", "full"),
                         help="workload scale (default: small)")
    p_serve.add_argument("--clusters", nargs="+", default=["cluster1", "cluster2"],
                         help="clusters to serve (default: cluster1 cluster2)")
    p_serve.add_argument("--seed", type=int, default=0, help="deterministic seed (default: 0)")
    p_serve.add_argument("--epochs", type=int, default=4,
                         help="replay epochs per configuration (default: 4)")
    p_serve.add_argument("--shards", type=int, nargs="+", default=[1, 1, 2, 4],
                         help="shard count per configuration (paired with --workers)")
    p_serve.add_argument("--workers", type=int, nargs="+", default=[1, 4, 4, 4],
                         help="worker count per configuration (paired with --shards)")
    p_serve.add_argument("--max-jobs", type=int, default=None,
                         help="cap jobs per cluster (smoke runs)")
    p_serve.add_argument("--out", default="BENCH_serving.json",
                         help="output JSON path (default: BENCH_serving.json)")
    p_serve.set_defaults(func=cmd_bench_serving)

    p_bplan = sub.add_parser(
        "bench-plan",
        help="time scalar vs batched learned-cost planning, write BENCH_plan.json",
    )
    p_bplan.add_argument("--scale", default="small", choices=("tiny", "small", "full"),
                         help="workload scale (default: small)")
    p_bplan.add_argument("--seed", type=int, default=0, help="deterministic seed (default: 0)")
    p_bplan.add_argument("--repeats", type=int, default=5,
                         help="timed repeats per path (default: 5)")
    p_bplan.add_argument("--out", default="BENCH_plan.json",
                         help="output JSON path (default: BENCH_plan.json)")
    p_bplan.set_defaults(func=cmd_bench_plan)

    p_breplan = sub.add_parser(
        "bench-replan",
        help="time per-job vs fleet skeleton replanning, write BENCH_replan.json",
    )
    p_breplan.add_argument("--scale", default="small", choices=("tiny", "small", "full"),
                           help="workload scale (default: small)")
    p_breplan.add_argument("--seed", type=int, default=0,
                           help="deterministic seed (default: 0)")
    p_breplan.add_argument("--repeats", type=int, default=5,
                           help="timed repeats per path (default: 5)")
    p_breplan.add_argument("--instances", type=int, default=4,
                           help="live instances per recurring job (default: 4)")
    p_breplan.add_argument("--out", default="BENCH_replan.json",
                           help="output JSON path (default: BENCH_replan.json)")
    p_breplan.set_defaults(func=cmd_bench_replan)

    p_faults = sub.add_parser(
        "bench-faults",
        help="chaos-test the hardened serving fleet, write BENCH_faults.json",
    )
    p_faults.add_argument("--scale", default="small", choices=("tiny", "small", "full"),
                          help="workload scale (default: small)")
    p_faults.add_argument("--clusters", nargs="+", default=["cluster1", "cluster2"],
                          help="clusters to serve (default: cluster1 cluster2)")
    p_faults.add_argument("--seed", type=int, default=0,
                          help="deterministic seed (default: 0)")
    p_faults.add_argument("--epochs", type=int, default=2,
                          help="replay epochs per scenario (default: 2)")
    p_faults.add_argument("--shards", type=int, default=3,
                          help="shard count (default: 3)")
    p_faults.add_argument("--workers", type=int, default=1,
                          help="fan-out workers; 1 keeps breaker replay exact (default: 1)")
    p_faults.add_argument("--scenarios", nargs="+",
                          default=["baseline", "latency_spikes", "shard_errors",
                                   "timeouts", "corrupt_outputs", "mixed_chaos"],
                          help="named serving fault scenarios (see repro.serving.faults)")
    p_faults.add_argument("--scenario", action="append", default=None, metavar="NAME",
                          help="run only this scenario (repeatable; serving or "
                               "pipeline names; overrides --scenarios)")
    p_faults.add_argument("--list-scenarios", action="store_true",
                          help="list every serving and pipeline chaos scenario, then exit")
    p_faults.add_argument("--hedge-threshold", type=float, default=0.001,
                          metavar="SECONDS",
                          help="latency SLO for hedged requests; 0 disables (default: 0.001)")
    p_faults.add_argument("--max-jobs", type=int, default=None,
                          help="cap jobs per cluster (smoke runs)")
    p_faults.add_argument("--out", default="BENCH_faults.json",
                          help="output JSON path (default: BENCH_faults.json)")
    p_faults.set_defaults(func=cmd_bench_faults)

    p_lint = sub.add_parser(
        "lint",
        help="run the determinism & concurrency invariant checker "
        "(fails on non-baselined findings)",
    )
    from repro.analysis.cli import configure_parser as _configure_lint_parser

    _configure_lint_parser(p_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
