"""Skeleton planner: memoized template-level planning with per-job replay.

Recurring jobs instantiate the same template over and over: the logical
structure, the requirement contexts the Cascades search explores, and every
property object (hash partitionings, sort orders) are identical across
instances — only the numbers differ (wobbled cardinalities, per-job
partition jitter).  The skeleton planner splits
:meth:`~repro.optimizer.planner.QueryPlanner.plan` accordingly:

* a :class:`TemplateSkeleton`, memoized per ``(template_id, day)``, holds
  the static per-node search data (requirement property objects, enforcer
  tags, local-aggregate template tags) extracted once from the template's
  logical structure;
* a cheap per-job pass re-runs the *decisions* — candidate costing,
  partition heuristics, allocation jitter, alignment — over lightweight
  slotted nodes, because instance wobble can genuinely flip cost ties
  (build-side choice, local pre-aggregation, push-down vs enforcement).

The replay mirrors :class:`QueryPlanner`'s recursion exactly — same
candidate order, same tie-breaking, same floating-point expression order —
and shares the actual formula implementations
(:meth:`DefaultCostModel.operator_cost_from_stats`,
:meth:`CardinalityEstimator.estimate_logical`, :func:`jitter_factor`), so
the plans it produces are bit-identical to the reference planner's.  The
parity suite (``tests/workload/test_batched_parity.py``) pins this.

The fast path only engages for the stock planner configuration (plain
:class:`DefaultCostModel`, plain :class:`CardinalityEstimator`, no partition
strategy); anything else falls back to the reference planner.
"""

from __future__ import annotations

import math

from repro.cardinality.estimator import CardinalityEstimator
from repro.common.errors import OptimizationError
from repro.cost.default_model import DefaultCostModel
from repro.optimizer.planner import PlannerConfig, jitter_factor
from repro.plan.logical import LogicalOp, LogicalOpType
from repro.plan.physical import (
    PARTITIONING_OPS,
    ExchangeMode,
    PhysOpType,
    PhysicalOp,
)
from repro.plan.properties import Partitioning, PartitionScheme, SortOrder

_ANY = Partitioning.any()
_NO_SORT = SortOrder.none()
_RANDOM = Partitioning.random()
_SINGLETON = Partitioning.singleton()


class RNode:
    """One node of a replayed physical plan: a slim PhysicalOp stand-in.

    Carries the same structural payload as :class:`PhysicalOp` plus the
    estimates the search needs, without frozen-dataclass construction cost.
    ``true_card`` / ``row_bytes`` / ``est_out`` / ``est_in`` are resolved at
    construction (enforcers inherit their child's), so costing is O(1).
    """

    __slots__ = (
        "op_type",
        "children",
        "logical",
        "partition_count",
        "partitioning",
        "sorting",
        "exchange_mode",
        "sort_keys",
        "template_tag",
        "true_card",
        "row_bytes",
        "est_out",
        "est_in",
        "primed",
    )

class SkelNode:
    """Static per-logical-node search data, shared by a template's jobs."""

    __slots__ = (
        "index",
        "children",
        "op_type",
        "template_tag",
        # join
        "hash_left",
        "hash_right",
        "sort_left",
        "sort_right",
        # aggregate
        "final_req",
        "sort_req",
        "local_tag",
        # sort / top-k
        "sort_order",
    )


class TemplateSkeleton:
    """The memoized product of one template's structure analysis."""

    __slots__ = ("nodes", "root_index", "node_count")

    def __init__(self, nodes: list[SkelNode]) -> None:
        self.nodes = nodes
        self.root_index = len(nodes) - 1
        self.node_count = len(nodes)


def _build_skeleton(root: LogicalOp) -> TemplateSkeleton:
    """Extract the static search data from one logical plan (post-order)."""
    nodes: list[SkelNode] = []

    def visit(logical: LogicalOp) -> int:
        child_indices = tuple(visit(child) for child in logical.children)
        sn = SkelNode()
        sn.children = child_indices
        sn.op_type = logical.op_type
        sn.template_tag = logical.template_tag
        kind = logical.op_type
        if kind is LogicalOpType.JOIN:
            left_key, right_key = logical.keys
            sn.hash_left = Partitioning.hash(left_key)
            sn.hash_right = Partitioning.hash(right_key)
            sn.sort_left = SortOrder.on(left_key)
            sn.sort_right = SortOrder.on(right_key)
        elif kind is LogicalOpType.AGGREGATE:
            keys = logical.keys
            sn.final_req = Partitioning.hash(*keys) if keys else Partitioning.singleton()
            sn.sort_req = SortOrder.on(*keys)
            sn.local_tag = f"{logical.template_tag}#local"
        elif kind in (LogicalOpType.SORT, LogicalOpType.TOP_K):
            sn.sort_order = SortOrder.on(*logical.keys)
        sn.index = len(nodes)
        nodes.append(sn)
        return sn.index

    visit(root)
    return TemplateSkeleton(nodes)


def _bind_logical(root: LogicalOp) -> list[LogicalOp]:
    """This job's logical nodes in skeleton (post-order) position order."""
    bound: list[LogicalOp] = []

    def visit(logical: LogicalOp) -> None:
        for child in logical.children:
            visit(child)
        bound.append(logical)

    visit(root)
    return bound


def supports_fast_path(
    cost_model: object, estimator: object, config: PlannerConfig
) -> bool:
    """True when the replay search is exact for this configuration.

    The replay inlines the stock cost/estimate formulas; subclasses could
    override either, and partition strategies run a separate optimization
    pass the replay does not model — those fall back to the reference
    planner.
    """
    return (
        type(cost_model) is DefaultCostModel
        and type(estimator) is CardinalityEstimator
        and config.partition_strategy is None
    )


class SkeletonPlanner:
    """Replays the Cascades search over a memoized template skeleton.

    One instance per (cost model, estimator, config) triple — i.e. per
    :class:`~repro.workload.runner.WorkloadRunner`.  ``plan_job`` returns the
    winning :class:`RNode` tree; :func:`materialize` converts it to a real
    :class:`PhysicalOp` plan when one is needed (``keep_plans``, shape-static
    extraction).
    """

    def __init__(
        self,
        cost_model: DefaultCostModel,
        estimator: CardinalityEstimator,
        config: PlannerConfig | None = None,
    ) -> None:
        self.cost_model = cost_model
        self.estimator = estimator
        self.config = config or PlannerConfig()
        self._skeletons: dict[tuple[str, int], TemplateSkeleton] = {}
        self._mb_bytes = self.config.exchange_partition_mb * 1024 * 1024
        self._estimate_logical = estimator.estimate_logical
        # Cost-model constants, prefetched once.  id()-keyed coefficient
        # lookup skips enum.__hash__ (a Python-level call) on the hottest
        # dict access; enum members are singletons, so ids are stable.
        self._inflation = cost_model.inflation
        self._row_cap = cost_model.row_cap
        self._coef_by_id = {
            id(op_type): coef for op_type, coef in cost_model.coefficients.items()
        }
        # Per-job state, reset by plan_job.
        self._bound: list[LogicalOp] = []
        self._salt = ""
        self._jitter_cache: dict[str, float] = {}
        self._memo: dict[tuple[int, Partitioning, SortOrder], tuple[RNode, float]] = {}
        self._skel: TemplateSkeleton | None = None

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def plan_job(
        self, template_id: str, day: int, logical_root: LogicalOp, jitter_salt: str
    ) -> RNode:
        """Optimize one job instance through the memoized skeleton.

        Also records the job's *choice key* (see :attr:`last_choice_key`): the
        ordinal of the winning candidate at every memo entry, in entry-creation
        order.  Entry order is a pure function of the template structure, so
        ``(template_id, choices)`` uniquely identifies the resulting plan
        shape — the batched execution engine keys its shape-statics cache on
        it without fingerprinting the tree.
        """
        key = (template_id, day)
        skeleton = self._skeletons.get(key)
        bound = _bind_logical(logical_root)
        if skeleton is None or skeleton.node_count != len(bound):
            # node_count mismatch should be impossible (template structure is
            # instance-independent); rebuilding keeps the path correct anyway.
            skeleton = _build_skeleton(logical_root)
            self._skeletons[key] = skeleton
        self._skel = skeleton
        self._bound = bound
        self._salt = jitter_salt
        self._jitter_cache = {}
        self._memo = {}
        self._choices: list[int] = []
        # Prime one estimate per logical node.  Any candidate whose physical
        # children all carry primed estimates shares the primed value (the
        # estimate formula sees identical inputs); only subplans containing a
        # synthesized local aggregate compute estimates live.  The JOIN and
        # UNION formulas are symmetric/order-matching, so commuted join
        # orientations share the primed value too.
        estimate_logical = self._estimate_logical
        primed: list[float] = []
        for i, sn in enumerate(skeleton.nodes):
            primed.append(
                estimate_logical(bound[i], [primed[c] for c in sn.children])
            )
        self._primed = primed
        best, _cost = self._optimize(skeleton.root_index, _ANY, _NO_SORT)
        self.last_choice_key = (template_id, tuple(self._choices))
        return best

    # ------------------------------------------------------------------ #
    # Node construction (the _mk analogue)
    # ------------------------------------------------------------------ #

    def _mk(
        self,
        op_type: PhysOpType,
        children: tuple[RNode, ...],
        logical: LogicalOp | None,
        partition_count: int,
        partitioning: Partitioning,
        sorting: SortOrder = _NO_SORT,
        exchange_mode: ExchangeMode | None = None,
        sort_keys: tuple[str, ...] = (),
        index: int = -1,
    ) -> RNode:
        node = RNode()
        node.op_type = op_type
        node.children = children
        node.logical = logical
        node.partition_count = partition_count
        node.partitioning = partitioning
        node.sorting = sorting
        node.exchange_mode = exchange_mode
        node.sort_keys = sort_keys
        if logical is not None:
            node.template_tag = logical.template_tag
            node.true_card = logical.true_card
            node.row_bytes = logical.row_bytes
            primed = index >= 0
            if primed:
                for child in children:
                    if not child.primed:
                        primed = False
                        break
            if primed:
                node.est_out = self._primed[index]
            else:
                node.est_out = self._estimate_logical(
                    logical, [child.est_out for child in children]
                )
            node.primed = primed
        else:
            child = children[0]
            if op_type is PhysOpType.EXCHANGE:
                node.template_tag = f"xchg:{exchange_mode.value}"
            else:
                node.template_tag = (
                    f"enf:{op_type.value.lower()}:{','.join(sort_keys)}"
                )
            node.true_card = child.true_card
            node.row_bytes = child.row_bytes
            node.est_out = child.est_out
            node.primed = child.primed
        if not children:
            node.est_in = node.est_out
        elif len(children) == 1:
            # float(sum([e])) == e exactly; skip the generator machinery.
            node.est_in = children[0].est_out
        else:
            total = 0.0
            for child in children:
                total += child.est_out
            node.est_in = total
        return node

    @staticmethod
    def _with_partitions(op: RNode, partition_count: int) -> RNode:
        """A copy of ``op`` at a different partition count.

        Estimates are partition-independent, so they are copied rather than
        recomputed (used by the alignment rebuild).
        """
        node = RNode()
        node.op_type = op.op_type
        node.children = op.children
        node.logical = op.logical
        node.partition_count = partition_count
        node.partitioning = op.partitioning
        node.sorting = op.sorting
        node.exchange_mode = op.exchange_mode
        node.sort_keys = op.sort_keys
        node.template_tag = op.template_tag
        node.true_card = op.true_card
        node.row_bytes = op.row_bytes
        node.est_out = op.est_out
        node.est_in = op.est_in
        node.primed = op.primed
        return node

    def _cost(self, node: RNode) -> float:
        # Inlined DefaultCostModel.operator_cost_from_stats — expression
        # order kept identical; the parity suite pins the equivalence.
        children = node.children
        cpu, io, out, nlogn = self._coef_by_id[id(node.op_type)]
        partitions = float(node.partition_count)
        row_cap = self._row_cap
        rows_in = min(node.est_in, row_cap) / partitions
        rows_out = min(node.est_out, row_cap) / partitions
        cost = (
            io * rows_in * (children[0].row_bytes if children else node.row_bytes)
            + out * rows_out
        )
        if nlogn:
            cost += cpu * rows_in * math.log2(rows_in + 2.0)
        else:
            cost += cpu * rows_in
        return self._inflation * cost + 1e-4

    # ------------------------------------------------------------------ #
    # Core recursion (mirrors QueryPlanner._optimize)
    # ------------------------------------------------------------------ #

    def _optimize(
        self, index: int, req_part: Partitioning, req_sort: SortOrder
    ) -> tuple[RNode, float]:
        # Requirement objects are interned (module constants + per-skeleton
        # precomputed properties), so identity keys are equivalent to the
        # reference planner's value keys — and skip frozen-dataclass hashing.
        # A hypothetical identity miss only recomputes the same pure result.
        key = (index, id(req_part), id(req_sort))
        cached = self._memo.get(key)
        if cached is not None:
            # The reference planner clones memoized subplans so physical
            # plans stay trees; the replay shares winners during the search
            # and duplicates shared subtrees at materialization instead.
            return cached
        candidates = self._implementations(index, req_part, req_sort)
        if not candidates:
            raise OptimizationError(
                f"no implementation for {self._bound[index].op_type.value} under "
                f"{req_part.describe()}/{req_sort.describe()}"
            )
        if req_part is _ANY and req_sort is _NO_SORT:
            # Enforcement is a no-op under (ANY, unsorted): every delivered
            # partitioning satisfies ANY and every sort satisfies "none".
            best = candidates[0]
            best_ordinal = 0
            for ordinal in range(1, len(candidates)):
                if candidates[ordinal][1] < best[1]:
                    best = candidates[ordinal]
                    best_ordinal = ordinal
        else:
            best = self._enforce(candidates[0], req_part, req_sort)
            best_ordinal = 0
            for ordinal in range(1, len(candidates)):
                enforced = self._enforce(candidates[ordinal], req_part, req_sort)
                if enforced[1] < best[1]:
                    best = enforced
                    best_ordinal = ordinal
        # Candidate *existence* can vary per job (alignment failures), so the
        # choice key records how many candidates were in play as well
        # (packed with the winner ordinal; counts are single-digit).
        self._choices.append(best_ordinal * 16 + len(candidates))
        self._memo[key] = best
        return best

    def _implementations(
        self, index: int, req_part: Partitioning, req_sort: SortOrder
    ) -> list[tuple[RNode, float]]:
        kind = self._skel.nodes[index].op_type
        if kind is LogicalOpType.GET:
            return self._impl_get(index)
        if kind in (LogicalOpType.FILTER, LogicalOpType.PROJECT):
            return self._impl_passthrough(index, req_part, req_sort)
        if kind is LogicalOpType.PROCESS:
            return self._impl_process(index)
        if kind is LogicalOpType.JOIN:
            return self._impl_join(index)
        if kind is LogicalOpType.AGGREGATE:
            return self._impl_aggregate(index)
        if kind is LogicalOpType.SORT:
            return self._impl_sort(index)
        if kind is LogicalOpType.TOP_K:
            return self._impl_topk(index)
        if kind is LogicalOpType.UNION:
            return self._impl_union(index)
        if kind is LogicalOpType.OUTPUT:
            return self._impl_output(index)
        raise OptimizationError(f"unsupported logical operator {kind}")

    # ------------------------------------------------------------------ #
    # Per-operator implementations (mirroring QueryPlanner's)
    # ------------------------------------------------------------------ #

    def _impl_get(self, index: int) -> list[tuple[RNode, float]]:
        logical = self._bound[index]
        partitions = self._heuristic_partitions_for_volume(
            logical.true_card, logical.row_bytes, logical.template_tag
        )
        op = self._mk(
            PhysOpType.EXTRACT, (), logical, partitions, _RANDOM, index=index
        )
        return [(op, self._cost(op))]

    def _impl_passthrough(
        self, index: int, req_part: Partitioning, req_sort: SortOrder
    ) -> list[tuple[RNode, float]]:
        sn = self._skel.nodes[index]
        logical = self._bound[index]
        phys_type = (
            PhysOpType.FILTER
            if sn.op_type is LogicalOpType.FILTER
            else PhysOpType.COMPUTE
        )
        child_index = sn.children[0]
        requirement_pairs = [(req_part, req_sort)]
        if (req_part, req_sort) != (_ANY, _NO_SORT):
            requirement_pairs.append((_ANY, _NO_SORT))
        out: list[tuple[RNode, float]] = []
        for child_part, child_sort in requirement_pairs:
            child_node, child_cost = self._optimize(child_index, child_part, child_sort)
            op = self._mk(
                phys_type,
                (child_node,),
                logical,
                child_node.partition_count,
                child_node.partitioning,
                child_node.sorting,
                index=index,
            )
            out.append((op, child_cost + self._cost(op)))
        return out

    def _impl_process(self, index: int) -> list[tuple[RNode, float]]:
        sn = self._skel.nodes[index]
        child_node, child_cost = self._optimize(sn.children[0], _ANY, _NO_SORT)
        op = self._mk(
            PhysOpType.PROCESS,
            (child_node,),
            self._bound[index],
            child_node.partition_count,
            _RANDOM,
            index=index,
        )
        return [(op, child_cost + self._cost(op))]

    def _impl_join(self, index: int) -> list[tuple[RNode, float]]:
        sn = self._skel.nodes[index]
        logical = self._bound[index]
        left, right = sn.children
        sides = [(left, right, sn.hash_left, sn.hash_right)]
        if self.config.enable_join_commute:
            sides.append((right, left, sn.hash_right, sn.hash_left))

        # Candidate existence here is *numeric* (partition alignment can fail
        # on one side only), so the join contributes an existence mask to the
        # choice key — winner ordinals alone would be ambiguous.
        mask = 0
        out: list[tuple[RNode, float]] = []
        for side, (probe, build, probe_req, build_req) in enumerate(sides):
            probe_cand = self._optimize(probe, probe_req, _NO_SORT)
            build_cand = self._optimize(build, build_req, _NO_SORT)
            aligned = self._align_partitions([probe_cand, build_cand])
            if aligned is not None:
                mask |= 1 << side
                (probe_node, probe_cost), (build_node, build_cost) = aligned
                op = self._mk(
                    PhysOpType.HASH_JOIN,
                    (probe_node, build_node),
                    logical,
                    probe_node.partition_count,
                    probe_req,
                    index=index,
                )
                out.append((op, probe_cost + build_cost + self._cost(op)))

        if self.config.enable_merge_join:
            left_cand = self._optimize(left, sn.hash_left, sn.sort_left)
            right_cand = self._optimize(right, sn.hash_right, sn.sort_right)
            aligned = self._align_partitions([left_cand, right_cand])
            if aligned is not None:
                mask |= 4
                (left_node, left_cost), (right_node, right_cost) = aligned
                op = self._mk(
                    PhysOpType.MERGE_JOIN,
                    (left_node, right_node),
                    logical,
                    left_node.partition_count,
                    sn.hash_left,
                    sn.sort_left,
                    index=index,
                )
                out.append((op, left_cost + right_cost + self._cost(op)))
        self._choices.append(mask)
        return out

    def _impl_aggregate(self, index: int) -> list[tuple[RNode, float]]:
        sn = self._skel.nodes[index]
        logical = self._bound[index]
        keys = logical.keys
        child_index = sn.children[0]
        final_req = sn.final_req
        delivered = final_req if keys else _SINGLETON
        out: list[tuple[RNode, float]] = []

        # (a) Hash aggregate directly on repartitioned input.
        child_node, child_cost = self._optimize(child_index, final_req, _NO_SORT)
        hash_agg = self._mk(
            PhysOpType.HASH_AGGREGATE,
            (child_node,),
            logical,
            child_node.partition_count,
            delivered,
            index=index,
        )
        out.append((hash_agg, child_cost + self._cost(hash_agg)))

        # (b) Stream aggregate over sorted, repartitioned input.
        if keys and self.config.enable_stream_aggregate:
            sorted_node, sorted_cost = self._optimize(child_index, final_req, sn.sort_req)
            stream_agg = self._mk(
                PhysOpType.STREAM_AGGREGATE,
                (sorted_node,),
                logical,
                sorted_node.partition_count,
                delivered,
                sn.sort_req,
                index=index,
            )
            out.append((stream_agg, sorted_cost + self._cost(stream_agg)))

        # (c) Local pre-aggregation before the shuffle (the Q17 plan shape).
        if self.config.enable_local_aggregate:
            any_node, any_cost = self._optimize(child_index, _ANY, _NO_SORT)
            local_logical = self._local_aggregate_logical(
                logical, sn.local_tag, any_node.partition_count
            )
            local = self._mk(
                PhysOpType.LOCAL_AGGREGATE,
                (any_node,),
                local_logical,
                any_node.partition_count,
                any_node.partitioning,
            )
            exchange = self._exchange_for(local, final_req)
            final = self._mk(
                PhysOpType.HASH_AGGREGATE,
                (exchange,),
                logical,
                exchange.partition_count,
                delivered,
                index=index,
            )
            cost = (
                any_cost + self._cost(local) + self._cost(exchange) + self._cost(final)
            )
            out.append((final, cost))
        return out

    def _impl_sort(self, index: int) -> list[tuple[RNode, float]]:
        sn = self._skel.nodes[index]
        logical = self._bound[index]
        child_node, child_cost = self._optimize(sn.children[0], _SINGLETON, _NO_SORT)
        op = self._mk(
            PhysOpType.SORT,
            (child_node,),
            logical,
            1,
            _SINGLETON,
            sn.sort_order,
            sort_keys=logical.keys,
            index=index,
        )
        return [(op, child_cost + self._cost(op))]

    def _impl_topk(self, index: int) -> list[tuple[RNode, float]]:
        sn = self._skel.nodes[index]
        logical = self._bound[index]
        child_node, child_cost = self._optimize(sn.children[0], _SINGLETON, _NO_SORT)
        op = self._mk(
            PhysOpType.TOP_K,
            (child_node,),
            logical,
            1,
            _SINGLETON,
            sn.sort_order,
            sort_keys=logical.keys,
            index=index,
        )
        return [(op, child_cost + self._cost(op))]

    def _impl_union(self, index: int) -> list[tuple[RNode, float]]:
        sn = self._skel.nodes[index]
        logical = self._bound[index]
        child_cands = [
            self._optimize(child, _ANY, _NO_SORT) for child in sn.children
        ]
        target = max(
            self._heuristic_partitions_for_volume(
                child.true_card, child.row_bytes, logical.template_tag
            )
            for child in logical.children
        )
        exchanged = []
        cost = 0.0
        for child_node, child_cost in child_cands:
            exchange = self._mk(
                PhysOpType.EXCHANGE,
                (child_node,),
                None,
                target,
                _RANDOM,
                exchange_mode=ExchangeMode.RANDOM,
            )
            exchanged.append(exchange)
            cost += child_cost + self._cost(exchange)
        op = self._mk(
            PhysOpType.UNION_ALL, tuple(exchanged), logical, target, _RANDOM,
            index=index,
        )
        return [(op, cost + self._cost(op))]

    def _impl_output(self, index: int) -> list[tuple[RNode, float]]:
        sn = self._skel.nodes[index]
        child_node, child_cost = self._optimize(sn.children[0], _ANY, _NO_SORT)
        op = self._mk(
            PhysOpType.OUTPUT,
            (child_node,),
            self._bound[index],
            child_node.partition_count,
            child_node.partitioning,
            child_node.sorting,
            index=index,
        )
        return [(op, child_cost + self._cost(op))]

    # ------------------------------------------------------------------ #
    # Enforcers and alignment (mirroring QueryPlanner's)
    # ------------------------------------------------------------------ #

    def _enforce(
        self,
        candidate: tuple[RNode, float],
        req_part: Partitioning,
        req_sort: SortOrder,
    ) -> tuple[RNode, float]:
        op, cost = candidate
        if not op.partitioning.satisfies(req_part):
            op = self._exchange_for(op, req_part)
            cost += self._cost(op)
        if not op.sorting.satisfies(req_sort):
            op = self._mk(
                PhysOpType.SORT,
                (op,),
                None,
                op.partition_count,
                op.partitioning,
                SortOrder(req_sort.columns),
                sort_keys=req_sort.columns,
            )
            cost += self._cost(op)
        return (op, cost)

    def _exchange_for(self, child: RNode, req_part: Partitioning) -> RNode:
        if req_part.scheme is PartitionScheme.SINGLETON:
            mode, partitions, delivered = ExchangeMode.GATHER, 1, _SINGLETON
        elif req_part.scheme is PartitionScheme.HASH:
            mode = ExchangeMode.HASH
            partitions = self._heuristic_partitions(child)
            delivered = req_part
        else:
            mode = ExchangeMode.RANDOM
            partitions = self._heuristic_partitions(child)
            delivered = _RANDOM
        return self._mk(
            PhysOpType.EXCHANGE,
            (child,),
            None,
            partitions,
            delivered,
            exchange_mode=mode,
        )

    def _align_partitions(
        self, candidates: list[tuple[RNode, float]]
    ) -> list[tuple[RNode, float]] | None:
        counts = [node.partition_count for node, _ in candidates]
        target = max(counts)
        out: list[tuple[RNode, float]] = []
        for candidate in candidates:
            if candidate[0].partition_count == target:
                out.append(candidate)
                continue
            adjusted = self._with_root_stage_partitions(candidate, target)
            if adjusted is None:
                return None
            out.append(adjusted)
        return out

    def _with_root_stage_partitions(
        self, candidate: tuple[RNode, float], new_count: int
    ) -> tuple[RNode, float] | None:
        root, cost = candidate
        stage_ops: list[RNode] = []

        def collect(op: RNode) -> None:
            stage_ops.append(op)
            if op.op_type in PARTITIONING_OPS:
                return
            for child in op.children:
                collect(child)

        collect(root)
        for op in stage_ops:
            if (
                op.op_type is PhysOpType.EXCHANGE
                and op.exchange_mode is ExchangeMode.GATHER
            ):
                return None
            if op.partitioning.scheme is PartitionScheme.SINGLETON:
                return None
        in_stage = {id(op) for op in stage_ops}
        cost_delta = 0.0

        def rebuild(op: RNode) -> RNode:
            nonlocal cost_delta
            if id(op) not in in_stage:
                return op
            new_children = tuple(rebuild(child) for child in op.children)
            replaced = self._with_partitions(op, new_count)
            replaced.children = new_children
            cost_delta += self._cost(replaced) - self._cost(op)
            return replaced

        new_root = rebuild(root)
        return (new_root, cost + cost_delta)

    # ------------------------------------------------------------------ #
    # Partition heuristics and jitter (mirroring QueryPlanner's)
    # ------------------------------------------------------------------ #

    def _heuristic_partitions(self, op: RNode) -> int:
        # default_partition_heuristic on the replay node's cached estimates.
        rows = op.est_in if op.children else op.est_out
        width = op.children[0].row_bytes if op.children else op.row_bytes
        partitions = int(math.ceil(rows * width / self._mb_bytes))
        base = max(1, min(partitions, self.config.default_partition_cap))
        return min(self._jittered(base, op.template_tag), self.config.max_partitions)

    def _heuristic_partitions_for_volume(
        self, rows: float, row_bytes: float, jitter_key: str
    ) -> int:
        partitions = int(max(1, rows * row_bytes // self._mb_bytes + 1))
        partitions = min(partitions, self.config.default_partition_cap)
        return min(self._jittered(partitions, jitter_key), self.config.max_partitions)

    def _jittered(self, partitions: int, key: str) -> int:
        sigma = self.config.partition_jitter
        if sigma <= 0.0:
            return partitions
        factor = self._jitter_cache.get(key)
        if factor is None:
            factor = jitter_factor(self._salt, key, sigma)
            self._jitter_cache[key] = factor
        return max(1, int(round(partitions * factor)))

    # ------------------------------------------------------------------ #
    # Synthesized logical nodes
    # ------------------------------------------------------------------ #

    @staticmethod
    def _local_aggregate_logical(
        node: LogicalOp, local_tag: str, partitions: int
    ) -> LogicalOp:
        child = node.children[0]
        groups = node.group_count if node.group_count is not None else node.true_card
        local_card = max(1.0, min(child.true_card, groups * partitions))
        return LogicalOp(
            op_type=LogicalOpType.AGGREGATE,
            children=(child,),
            template_tag=local_tag,
            true_card=local_card,
            row_bytes=node.row_bytes,
            normalized_inputs=node.normalized_inputs,
            sel_true=(local_card / child.true_card) if child.true_card > 0 else 1.0,
            keys=node.keys,
            group_count=local_card,
        )


def materialize(node: RNode) -> PhysicalOp:
    """Convert a winning replay tree into a real :class:`PhysicalOp` plan.

    Shared winner subtrees are duplicated into fresh nodes, matching the
    reference planner's memo-hit cloning (physical plans must stay trees).
    """
    children = tuple(materialize(child) for child in node.children)
    return PhysicalOp(
        op_type=node.op_type,
        children=children,
        logical=node.logical,
        partition_count=node.partition_count,
        partitioning=node.partitioning,
        sorting=node.sorting,
        exchange_mode=node.exchange_mode,
        sort_keys=node.sort_keys,
    )


__all__ = [
    "RNode",
    "SkeletonPlanner",
    "TemplateSkeleton",
    "materialize",
    "supports_fast_path",
]
