"""Skeleton planner: memoized template-level planning with per-job replay.

Recurring jobs instantiate the same template over and over: the logical
structure, the requirement contexts the Cascades search explores, and every
property object (hash partitionings, sort orders) are identical across
instances — only the numbers differ (wobbled cardinalities, per-job
partition jitter).  The skeleton planner splits
:meth:`~repro.optimizer.planner.QueryPlanner.plan` accordingly:

* a :class:`TemplateSkeleton`, memoized per ``(template_id, day)``, holds
  the static per-node search data (requirement property objects, enforcer
  tags, local-aggregate template tags) extracted once from the template's
  logical structure;
* a cheap per-job pass re-runs the *decisions* — candidate costing,
  partition heuristics, allocation jitter, alignment — over lightweight
  slotted nodes, because instance wobble can genuinely flip cost ties
  (build-side choice, local pre-aggregation, push-down vs enforcement).

The replay mirrors :class:`QueryPlanner`'s recursion exactly — same
candidate order, same tie-breaking, same floating-point expression order —
and shares the actual formula implementations
(:meth:`DefaultCostModel.operator_cost_from_stats`,
:meth:`CardinalityEstimator.estimate_logical`, :func:`jitter_factor`), so
the plans it produces are bit-identical to the reference planner's.  The
parity suite (``tests/workload/test_batched_parity.py``) pins this.

**Pluggable costing.**  The replay prices candidates through one of three
backends chosen at construction from the cost model's capabilities:

* *inlined* — the stock :class:`DefaultCostModel` formula, prefetched into
  locals (the original hot path);
* *stats* — any heuristic model exposing ``operator_cost_from_stats``
  (retuned :class:`DefaultCostModel` subclasses,
  :class:`~repro.cost.tuned_model.TunedCostModel`): the replay feeds it the
  cached per-node estimates the estimator would have produced;
* *learned* — models exposing the packed pricing hooks
  (:class:`~repro.core.cost_model.CleoCostModel`): the replay featurizes
  straight from incrementally-maintained per-node statistics and signature
  bundles.  When the model also advertises ``supports_batched_pricing``,
  ``_cost`` emits the reference planner's deferred-cost ledger
  (:class:`~repro.optimizer.planner._DeferredCost`) and whole frontiers are
  priced through ``price_inputs`` in single packed passes — same values,
  same per-prediction lookup accounting, bitwise-identical plans.

Models opt in through ``supports_replay_costing``
(:class:`~repro.cost.interface.CostModelBase`); the workload runner's fast
path additionally requires the plain :class:`CardinalityEstimator` and no
partition strategy (:func:`supports_fast_path`).  ``replan_job`` — and the
fleet driver in :mod:`repro.optimizer.replan` — runs the partition-strategy
pass itself, so recurring-job replanning supports strategies too.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.cardinality.estimator import CardinalityEstimator
from repro.common.errors import OptimizationError
from repro.common.hashing import combine_hashes
from repro.cost.default_model import DefaultCostModel
from repro.cost.interface import plan_cost
from repro.features.featurizer import FeatureInput
from repro.optimizer.partition import optimize_partitions
from repro.optimizer.planner import (
    PlannedJob,
    PlannerConfig,
    _DeferredCost,
    _resolve_cost,
    jitter_factor,
)
from repro.plan.logical import LogicalOp, LogicalOpType
from repro.plan.physical import (
    PARTITIONING_OPS,
    ExchangeMode,
    PhysOpType,
    PhysicalOp,
)
from repro.plan.properties import Partitioning, PartitionScheme, SortOrder
from repro.plan.signatures import (
    SignatureBundle,
    _approx_hash,
    _freq_hash,
    _own_hash,
    input_signature_for,
    operator_signature_for,
)

_ANY = Partitioning.any()
_NO_SORT = SortOrder.none()
_RANDOM = Partitioning.random()
_SINGLETON = Partitioning.singleton()


class RNode:
    """One node of a replayed physical plan: a slim PhysicalOp stand-in.

    Carries the same structural payload as :class:`PhysicalOp` plus the
    estimates the search needs, without frozen-dataclass construction cost.
    ``true_card`` / ``row_bytes`` / ``est_out`` / ``est_in`` are resolved at
    construction (enforcers inherit their child's), so costing is O(1).

    Under a learned cost model the replay additionally maintains, per node,
    every derived statistic :func:`~repro.features.extract.feature_input_for`
    and :meth:`SignatureBundle.of` would recompute by walking a
    :class:`PhysicalOp` subtree — leaf cardinalities, normalized inputs,
    logical-operator counts/frequencies, depth, and all four model
    signatures — built incrementally from the children (``leaf_cards``
    through ``bundle``; unset for heuristic backends).
    """

    __slots__ = (
        "op_type",
        "children",
        "logical",
        "partition_count",
        "partitioning",
        "sorting",
        "exchange_mode",
        "sort_keys",
        "template_tag",
        "true_card",
        "row_bytes",
        "est_out",
        "est_in",
        "primed",
        # Learned-costing annotations (see _annotate_replay).
        "leaf_cards",
        "base_card",
        "inputs",
        "params",
        "n_logical",
        "depth",
        "strict_sig",
        "freq_incl",
        "bundle",
    )

class SkelNode:
    """Static per-logical-node search data, shared by a template's jobs."""

    __slots__ = (
        "index",
        "children",
        "op_type",
        "template_tag",
        # join
        "hash_left",
        "hash_right",
        "sort_left",
        "sort_right",
        # aggregate
        "final_req",
        "sort_req",
        "local_tag",
        # sort / top-k
        "sort_order",
    )


class TemplateSkeleton:
    """The memoized product of one template's structure analysis.

    ``schedule`` is lazily recorded by the first replayed instance that asks
    for it (:meth:`SkeletonPlanner.replan_job`): the memo-entry creation
    order of the search, i.e. every ``(index, req_part, req_sort)`` frame in
    the order it completes.  Frame order is a pure function of the template
    structure and planner config — costs only pick winners, never which
    frames run — so the fleet replanner can drive any number of instances
    through the same frame sequence in lockstep.
    """

    __slots__ = ("nodes", "root_index", "node_count", "schedule")

    def __init__(self, nodes: list[SkelNode]) -> None:
        self.nodes = nodes
        self.root_index = len(nodes) - 1
        self.node_count = len(nodes)
        self.schedule: tuple[tuple[int, Partitioning, SortOrder], ...] | None = None


def _build_skeleton(root: LogicalOp) -> TemplateSkeleton:
    """Extract the static search data from one logical plan (post-order)."""
    nodes: list[SkelNode] = []

    def visit(logical: LogicalOp) -> int:
        child_indices = tuple(visit(child) for child in logical.children)
        sn = SkelNode()
        sn.children = child_indices
        sn.op_type = logical.op_type
        sn.template_tag = logical.template_tag
        kind = logical.op_type
        if kind is LogicalOpType.JOIN:
            left_key, right_key = logical.keys
            sn.hash_left = Partitioning.hash(left_key)
            sn.hash_right = Partitioning.hash(right_key)
            sn.sort_left = SortOrder.on(left_key)
            sn.sort_right = SortOrder.on(right_key)
        elif kind is LogicalOpType.AGGREGATE:
            keys = logical.keys
            sn.final_req = Partitioning.hash(*keys) if keys else Partitioning.singleton()
            sn.sort_req = SortOrder.on(*keys)
            sn.local_tag = f"{logical.template_tag}#local"
        elif kind in (LogicalOpType.SORT, LogicalOpType.TOP_K):
            sn.sort_order = SortOrder.on(*logical.keys)
        sn.index = len(nodes)
        nodes.append(sn)
        return sn.index

    visit(root)
    return TemplateSkeleton(nodes)


def _bind_logical(root: LogicalOp) -> list[LogicalOp]:
    """This job's logical nodes in skeleton (post-order) position order."""
    bound: list[LogicalOp] = []

    def visit(logical: LogicalOp) -> None:
        for child in logical.children:
            visit(child)
        bound.append(logical)

    visit(root)
    return bound


def supports_fast_path(
    cost_model: object, estimator: object, config: PlannerConfig
) -> bool:
    """True when the replay search is exact for this configuration.

    Cost models opt in through the ``supports_replay_costing`` capability
    flag (see :class:`~repro.cost.interface.CostModelBase`) — heuristic
    models whose formula the replay can reproduce from cached statistics,
    retuned subclasses included, and learned models exposing the packed
    pricing hooks.  The estimate formulas are the stock estimator's
    (subclasses could override them), and partition strategies run a
    separate optimization pass the workload engine does not model — those
    fall back to the reference planner.  (:meth:`SkeletonPlanner.replan_job`
    and the fleet replanner run the partition pass themselves, so the
    strategy restriction applies only to this workload-engine gate.)
    """
    return (
        bool(getattr(cost_model, "supports_replay_costing", False))
        and type(estimator) is CardinalityEstimator
        and config.partition_strategy is None
    )


def supports_replay(cost_model: object, estimator: object) -> bool:
    """True when :class:`SkeletonPlanner` itself can serve this model.

    The replanning entry points (:meth:`SkeletonPlanner.replan_job`,
    :func:`repro.optimizer.replan.replan_jobs`) gate on this — unlike
    :func:`supports_fast_path` they handle partition strategies.
    """
    return bool(
        getattr(cost_model, "supports_replay_costing", False)
    ) and type(estimator) is CardinalityEstimator


def _walk_replay(node: RNode):
    """Yield the replay tree children-before-parents, like ``PhysicalOp.walk``.

    Shared winner subtrees are yielded once per occurrence, matching the
    walk of the materialized (tree-shaped) plan.
    """
    for child in node.children:
        yield from _walk_replay(child)
    yield node


def _annotate_replay(node: RNode) -> None:
    """Attach the learned-costing statistics, incrementally from children.

    Every value matches what :func:`feature_input_for` /
    :meth:`SignatureBundle.of` would compute on the materialized operator —
    including float fold order (``base_card`` left-folds the leaf true
    cardinalities in walk order, exactly like ``PhysicalOp.base_card``) and
    the approx-signature convention that logical-operator frequencies count
    descendants only (the node's own logical type is added *after* its
    bundle is computed, mirroring ``compute_signature_bundles``).
    """
    children = node.children
    logical = node.logical
    op_value = node.op_type.value
    if logical is not None:
        inputs = logical.normalized_inputs
        node.params = logical.params
    else:
        # Enforcers have exactly one child; PhysicalOp.normalized_inputs
        # unions the children's sets, which for one child is the child's.
        inputs = children[0].inputs
        node.params = ()
    node.inputs = inputs
    if not children:
        node.leaf_cards = (node.true_card,)
        node.depth = 1
        node.n_logical = 1 if logical is not None else 0
        strict = combine_hashes([_own_hash(op_value, node.template_tag)])
        freq_below: dict[str, int] = {}
    elif len(children) == 1:
        child = children[0]
        node.leaf_cards = child.leaf_cards
        node.depth = child.depth + 1
        node.n_logical = child.n_logical + (1 if logical is not None else 0)
        strict = combine_hashes(
            [child.strict_sig, _own_hash(op_value, node.template_tag)]
        )
        freq_below = child.freq_incl
    else:
        leaf_cards: tuple[float, ...] = ()
        depth = 0
        n_logical = 0
        child_sigs: list[int] = []
        freq_below = {}
        for child in children:
            leaf_cards += child.leaf_cards
            if child.depth > depth:
                depth = child.depth
            n_logical += child.n_logical
            child_sigs.append(child.strict_sig)
            for name, count in child.freq_incl.items():
                freq_below[name] = freq_below.get(name, 0) + count
        node.leaf_cards = leaf_cards
        node.depth = depth + 1
        node.n_logical = n_logical + (1 if logical is not None else 0)
        child_sigs.append(_own_hash(op_value, node.template_tag))
        strict = combine_hashes(child_sigs)
    node.base_card = float(sum(node.leaf_cards))
    node.strict_sig = strict
    node.bundle = SignatureBundle(
        strict=strict,
        approx=_approx_hash(op_value, _freq_hash(freq_below), inputs),
        input=input_signature_for(op_value, inputs),
        operator=operator_signature_for(op_value),
    )
    if logical is not None:
        freq = dict(freq_below)  # children may share the dict — copy first
        name = logical.op_type.value
        freq[name] = freq.get(name, 0) + 1
        node.freq_incl = freq
    else:
        node.freq_incl = freq_below


def _replay_feature_input(node: RNode) -> FeatureInput:
    """``feature_input_for`` from the replay node's cached statistics."""
    return FeatureInput(
        input_card=node.est_in,
        base_card=node.base_card,
        output_card=node.est_out,
        avg_row_bytes=node.row_bytes,
        partition_count=float(node.partition_count),
        input_enc=FeatureInput.encode_inputs(node.inputs),
        params_enc=FeatureInput.encode_params(node.params),
        logical_count=float(node.n_logical),
        depth=float(node.depth),
    )


@dataclass(frozen=True)
class SkeletonPlannerStats:
    """Telemetry counters of one :class:`SkeletonPlanner`.

    ``skeleton_hits``/``skeleton_builds`` split replays that reused a cached
    skeleton from ones that had to analyze the template structure;
    ``skeleton_evictions`` counts entries dropped by the clear-at-limit cap.
    The per-job ``_memo`` needs no cap: it is reset at every replay (its
    size is bounded by one template's frame count), and clearing it
    mid-search would invalidate live deferred-cost ledger indices.
    """

    jobs_replayed: int
    skeleton_hits: int
    skeleton_builds: int
    skeleton_evictions: int
    skeletons_cached: int
    frontier_flushes: int


class _ReplayState:
    """One job instance's live search state, detached from the planner.

    The fleet replanner replays many instances of one template in lockstep
    (:mod:`repro.optimizer.replan`): it prepares each instance, exports its
    state, and swaps states in and out of the shared planner frame by frame.
    All mutable members (memo, choices, pending, priced, jitter cache) are
    shared by reference with the planner while loaded, so in-place mutation
    through either handle stays coherent; ``candidates_considered`` is a
    plain int the driver updates on the state directly.
    """

    __slots__ = (
        "bound",
        "salt",
        "jitter_cache",
        "memo",
        "choices",
        "pending",
        "priced",
        "primed",
        "candidates_considered",
    )


class SkeletonPlanner:
    """Replays the Cascades search over a memoized template skeleton.

    One instance per (cost model, estimator, config) triple — i.e. per
    :class:`~repro.workload.runner.WorkloadRunner`.  ``plan_job`` returns the
    winning :class:`RNode` tree; :func:`materialize` converts it to a real
    :class:`PhysicalOp` plan when one is needed (``keep_plans``, shape-static
    extraction).
    """

    #: Clear-at-limit cap on the per-``(template_id, day)`` skeleton cache,
    #: like the module-level signature-hash caches: wholesale clearing keeps
    #: the common case allocation-free and the worst case bounded.
    _SKELETON_CACHE_LIMIT = 1 << 12

    def __init__(
        self,
        cost_model,
        estimator: CardinalityEstimator,
        config: PlannerConfig | None = None,
    ) -> None:
        if not getattr(cost_model, "supports_replay_costing", False):
            raise OptimizationError(
                "SkeletonPlanner requires a cost model that advertises "
                "supports_replay_costing; "
                f"{type(cost_model).__name__} does not (its pricing formula "
                "is opaque to the replay)"
            )
        self.cost_model = cost_model
        self.estimator = estimator
        self.config = config or PlannerConfig()
        self._skeletons: dict[tuple[str, int], TemplateSkeleton] = {}
        self._mb_bytes = self.config.exchange_partition_mb * 1024 * 1024
        self._estimate_logical = estimator.estimate_logical
        # Costing backend (see module docstring): learned models price
        # through the packed hooks (deferred ledger when they batch),
        # DefaultCostModel keeps the inlined formula, other heuristic
        # models go through operator_cost_from_stats.
        self._learned = hasattr(cost_model, "price_inputs")
        self._deferred = False
        if self._learned:
            self._deferred = bool(
                getattr(cost_model, "supports_batched_pricing", False)
            )
            self._cost = self._cost_deferred if self._deferred else self._cost_scalar
        elif isinstance(cost_model, DefaultCostModel):
            # Cost-model constants, prefetched once.  id()-keyed coefficient
            # lookup skips enum.__hash__ (a Python-level call) on the hottest
            # dict access; enum members are singletons, so ids are stable.
            # Retuned subclasses (constants changed, formula intact) prefetch
            # their own values, so the inlined path serves them too.
            self._inflation = cost_model.inflation
            self._row_cap = cost_model.row_cap
            self._coef_by_id = {
                id(op_type): coef for op_type, coef in cost_model.coefficients.items()
            }
            self._cost = self._cost_inlined
        elif hasattr(cost_model, "operator_cost_from_stats"):
            self._cost = self._cost_stats
        else:  # pragma: no cover - supports_replay_costing implies a backend
            raise OptimizationError(
                f"{type(cost_model).__name__} advertises replay costing but "
                "exposes neither the packed pricing hooks nor "
                "operator_cost_from_stats"
            )
        # Telemetry (see stats()).
        self._jobs_replayed = 0
        self._skeleton_hits = 0
        self._skeleton_builds = 0
        self._skeleton_evictions = 0
        self._frontier_flushes = 0
        # Per-job state, reset by prepare_job.
        self._bound: list[LogicalOp] = []
        self._salt = ""
        self._jitter_cache: dict[str, float] = {}
        self._memo: dict[tuple[int, int, int], tuple[RNode, object]] = {}
        self._choices: list[int] = []
        self._pending: list[RNode] = []
        self._priced: list[float] = []
        self._primed: list[float] = []
        self._candidates_considered = 0
        self._schedule: list[tuple[int, Partitioning, SortOrder]] | None = None
        self._skel: TemplateSkeleton | None = None

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def prepare_job(
        self, template_id: str, day: int, logical_root: LogicalOp, jitter_salt: str
    ) -> TemplateSkeleton:
        """Bind one job instance to its (possibly cached) skeleton.

        Resets all per-job search state; callers then drive the replay with
        :meth:`_optimize` (done by :meth:`plan_job` / :meth:`replan_job`, and
        frame-by-frame by the fleet replanner's lockstep loop).
        """
        key = (template_id, day)
        skeleton = self._skeletons.get(key)
        bound = _bind_logical(logical_root)
        if skeleton is None or skeleton.node_count != len(bound):
            # node_count mismatch should be impossible (template structure is
            # instance-independent); rebuilding keeps the path correct anyway.
            if len(self._skeletons) >= self._SKELETON_CACHE_LIMIT:
                self._skeleton_evictions += len(self._skeletons)
                self._skeletons.clear()
            skeleton = _build_skeleton(logical_root)
            self._skeletons[key] = skeleton
            self._skeleton_builds += 1
        else:
            self._skeleton_hits += 1
        self._skel = skeleton
        self._bound = bound
        self._salt = jitter_salt
        self._jitter_cache = {}
        self._memo = {}
        self._choices = []
        self._pending = []
        self._priced = []
        self._candidates_considered = 0
        self._schedule = None
        # Prime one estimate per logical node.  Any candidate whose physical
        # children all carry primed estimates shares the primed value (the
        # estimate formula sees identical inputs); only subplans containing a
        # synthesized local aggregate compute estimates live.  The JOIN and
        # UNION formulas are symmetric/order-matching, so commuted join
        # orientations share the primed value too.
        estimate_logical = self._estimate_logical
        primed: list[float] = []
        for i, sn in enumerate(skeleton.nodes):
            primed.append(
                estimate_logical(bound[i], [primed[c] for c in sn.children])
            )
        self._primed = primed
        self._jobs_replayed += 1
        return skeleton

    def plan_job(
        self, template_id: str, day: int, logical_root: LogicalOp, jitter_salt: str
    ) -> RNode:
        """Optimize one job instance through the memoized skeleton.

        Also records the job's *choice key* (see :attr:`last_choice_key`): the
        ordinal of the winning candidate at every memo entry, in entry-creation
        order.  Entry order is a pure function of the template structure, so
        ``(template_id, choices)`` uniquely identifies the resulting plan
        shape — the batched execution engine keys its shape-statics cache on
        it without fingerprinting the tree.
        """
        skeleton = self.prepare_job(template_id, day, logical_root, jitter_salt)
        best, _cost = self._optimize(skeleton.root_index, _ANY, _NO_SORT)
        self.last_choice_key = (template_id, tuple(self._choices))
        return best

    def replan_job(
        self, template_id: str, day: int, logical_root: LogicalOp, jitter_salt: str
    ) -> PlannedJob:
        """Full :meth:`QueryPlanner.plan` replacement for one recurring job.

        Beyond :meth:`plan_job` it materializes the winner, runs the
        partition-strategy pass when one is configured, and reports the total
        plan cost — everything :class:`~repro.optimizer.planner.PlannedJob`
        carries — bitwise identical to the reference planner.  Also records
        the skeleton's frame :attr:`~TemplateSkeleton.schedule` on first use,
        which the fleet replanner's lockstep loop keys on.
        """
        start = time.perf_counter()
        skeleton = self.prepare_job(template_id, day, logical_root, jitter_salt)
        record = skeleton.schedule is None
        if record:
            self._schedule = []
        best, _cost = self._optimize(skeleton.root_index, _ANY, _NO_SORT)
        if record:
            skeleton.schedule = tuple(self._schedule)
            self._schedule = None
        self.last_choice_key = (template_id, tuple(self._choices))
        if self._deferred:
            # Align lookup accounting with the reference planner, which
            # flushes any straggling deferred candidates after the search.
            self._flush_pending()
        plan, total = self._finalize(best)
        elapsed = time.perf_counter() - start
        return PlannedJob(plan, total, elapsed, self._candidates_considered)

    def _finalize(self, win: RNode) -> tuple[PhysicalOp, float]:
        """Materialize + partition pass + total cost, as ``plan()`` would."""
        strategy = self.config.partition_strategy
        if strategy is not None:
            physical = materialize(win)
            self.estimator.reset()
            physical = optimize_partitions(
                physical,
                self.cost_model,
                self.estimator,
                strategy,
                max_partitions=self.config.max_partitions,
            )
            return physical, plan_cost(self.cost_model, physical, self.estimator)
        if self._learned:
            # One packed pass over the walk, with CleoService.predict_plan's
            # exact left-fold order (see price_plans).
            nodes = list(_walk_replay(win))
            inputs = [_replay_feature_input(n) for n in nodes]
            bundles = [n.bundle for n in nodes]
            totals = self.cost_model.price_plans(inputs, bundles, [len(nodes)])
            return materialize(win), float(totals[0])
        # Heuristic models: CostModelBase.plan_cost's int-0 left fold.
        total = 0
        for node in _walk_replay(win):
            total = total + self._cost(node)
        return materialize(win), float(total)

    def stats(self) -> SkeletonPlannerStats:
        """Current telemetry counters (cheap; safe to call between jobs)."""
        return SkeletonPlannerStats(
            jobs_replayed=self._jobs_replayed,
            skeleton_hits=self._skeleton_hits,
            skeleton_builds=self._skeleton_builds,
            skeleton_evictions=self._skeleton_evictions,
            skeletons_cached=len(self._skeletons),
            frontier_flushes=self._frontier_flushes,
        )

    # ------------------------------------------------------------------ #
    # Per-job state capture (the fleet replanner's lockstep loop)
    # ------------------------------------------------------------------ #

    def _export_state(self) -> "_ReplayState":
        st = _ReplayState()
        st.bound = self._bound
        st.salt = self._salt
        st.jitter_cache = self._jitter_cache
        st.memo = self._memo
        st.choices = self._choices
        st.pending = self._pending
        st.priced = self._priced
        st.primed = self._primed
        st.candidates_considered = self._candidates_considered
        return st

    def _load_state(self, st: "_ReplayState") -> None:
        self._bound = st.bound
        self._salt = st.salt
        self._jitter_cache = st.jitter_cache
        self._memo = st.memo
        self._choices = st.choices
        self._pending = st.pending
        self._priced = st.priced
        self._primed = st.primed
        self._candidates_considered = st.candidates_considered

    # ------------------------------------------------------------------ #
    # Node construction (the _mk analogue)
    # ------------------------------------------------------------------ #

    def _mk(
        self,
        op_type: PhysOpType,
        children: tuple[RNode, ...],
        logical: LogicalOp | None,
        partition_count: int,
        partitioning: Partitioning,
        sorting: SortOrder = _NO_SORT,
        exchange_mode: ExchangeMode | None = None,
        sort_keys: tuple[str, ...] = (),
        index: int = -1,
    ) -> RNode:
        node = RNode()
        node.op_type = op_type
        node.children = children
        node.logical = logical
        node.partition_count = partition_count
        node.partitioning = partitioning
        node.sorting = sorting
        node.exchange_mode = exchange_mode
        node.sort_keys = sort_keys
        if logical is not None:
            node.template_tag = logical.template_tag
            node.true_card = logical.true_card
            node.row_bytes = logical.row_bytes
            primed = index >= 0
            if primed:
                for child in children:
                    if not child.primed:
                        primed = False
                        break
            if primed:
                node.est_out = self._primed[index]
            else:
                node.est_out = self._estimate_logical(
                    logical, [child.est_out for child in children]
                )
            node.primed = primed
        else:
            child = children[0]
            if op_type is PhysOpType.EXCHANGE:
                node.template_tag = f"xchg:{exchange_mode.value}"
            else:
                node.template_tag = (
                    f"enf:{op_type.value.lower()}:{','.join(sort_keys)}"
                )
            node.true_card = child.true_card
            node.row_bytes = child.row_bytes
            node.est_out = child.est_out
            node.primed = child.primed
        if not children:
            node.est_in = node.est_out
        elif len(children) == 1:
            # float(sum([e])) == e exactly; skip the generator machinery.
            node.est_in = children[0].est_out
        else:
            total = 0.0
            for child in children:
                total += child.est_out
            node.est_in = total
        if self._learned:
            _annotate_replay(node)
        return node

    def _with_partitions(self, op: RNode, partition_count: int) -> RNode:
        """A copy of ``op`` at a different partition count.

        Estimates are partition-independent, so they are copied rather than
        recomputed (used by the alignment rebuild) — and so are every one of
        the learned-costing annotations (signatures and feature statistics
        never look at partition counts; the partition feature is read off
        the node at pricing time).
        """
        node = RNode()
        node.op_type = op.op_type
        node.children = op.children
        node.logical = op.logical
        node.partition_count = partition_count
        node.partitioning = op.partitioning
        node.sorting = op.sorting
        node.exchange_mode = op.exchange_mode
        node.sort_keys = op.sort_keys
        node.template_tag = op.template_tag
        node.true_card = op.true_card
        node.row_bytes = op.row_bytes
        node.est_out = op.est_out
        node.est_in = op.est_in
        node.primed = op.primed
        if self._learned:
            node.leaf_cards = op.leaf_cards
            node.base_card = op.base_card
            node.inputs = op.inputs
            node.params = op.params
            node.n_logical = op.n_logical
            node.depth = op.depth
            node.strict_sig = op.strict_sig
            node.freq_incl = op.freq_incl
            node.bundle = op.bundle
        return node

    def _cost_inlined(self, node: RNode) -> float:
        # Inlined DefaultCostModel.operator_cost_from_stats — expression
        # order kept identical; the parity suite pins the equivalence.
        children = node.children
        cpu, io, out, nlogn = self._coef_by_id[id(node.op_type)]
        partitions = float(node.partition_count)
        row_cap = self._row_cap
        rows_in = min(node.est_in, row_cap) / partitions
        rows_out = min(node.est_out, row_cap) / partitions
        cost = (
            io * rows_in * (children[0].row_bytes if children else node.row_bytes)
            + out * rows_out
        )
        if nlogn:
            cost += cpu * rows_in * math.log2(rows_in + 2.0)
        else:
            cost += cpu * rows_in
        return self._inflation * cost + 1e-4

    def _cost_stats(self, node: RNode) -> float:
        # Heuristic models beyond DefaultCostModel (e.g. TunedCostModel):
        # hand the formula the exact statistics operator_cost would have
        # pulled from the estimator.
        return self.cost_model.operator_cost_from_stats(
            node.op_type,
            node.est_in,
            node.est_out,
            node.children[0].row_bytes if node.children else node.row_bytes,
            node.partition_count,
        )

    def _cost_scalar(self, node: RNode) -> float:
        # Learned model, scalar serving path (batched=False): one service
        # round-trip per candidate, like QueryPlanner's operator_cost calls.
        return self.cost_model.price_input(_replay_feature_input(node), node.bundle)

    def _cost_deferred(self, node: RNode):
        # Learned model, batched: emit the reference planner's deferred-cost
        # ledger; whole frontiers are priced at flush time in packed passes.
        index = len(self._priced) + len(self._pending)
        self._pending.append(node)
        return _DeferredCost(_DeferredCost.LEAF, index)

    def _flush_pending(self) -> None:
        """Price every pending deferred operator in one packed pass."""
        if not self._pending:
            return
        nodes = self._pending
        self._pending = []
        inputs = [_replay_feature_input(n) for n in nodes]
        bundles = [n.bundle for n in nodes]
        self._priced.extend(map(float, self.cost_model.price_inputs(inputs, bundles)))
        self._frontier_flushes += 1

    # ------------------------------------------------------------------ #
    # Core recursion (mirrors QueryPlanner._optimize)
    # ------------------------------------------------------------------ #

    def _optimize(
        self, index: int, req_part: Partitioning, req_sort: SortOrder
    ) -> tuple[RNode, float]:
        # Requirement objects are interned (module constants + per-skeleton
        # precomputed properties), so identity keys are equivalent to the
        # reference planner's value keys — and skip frozen-dataclass hashing.
        # A hypothetical identity miss only recomputes the same pure result.
        key = (index, id(req_part), id(req_sort))
        cached = self._memo.get(key)
        if cached is not None:
            # The reference planner clones memoized subplans so physical
            # plans stay trees; the replay shares winners during the search
            # and duplicates shared subtrees at materialization instead.
            return cached
        candidates = self._implementations(index, req_part, req_sort)
        if not candidates:
            raise OptimizationError(
                f"no implementation for {self._bound[index].op_type.value} under "
                f"{req_part.describe()}/{req_sort.describe()}"
            )
        self._candidates_considered += len(candidates)
        if self._deferred:
            best, best_ordinal = self._pick_deferred(candidates, req_part, req_sort)
        elif req_part is _ANY and req_sort is _NO_SORT:
            # Enforcement is a no-op under (ANY, unsorted): every delivered
            # partitioning satisfies ANY and every sort satisfies "none".
            best = candidates[0]
            best_ordinal = 0
            for ordinal in range(1, len(candidates)):
                if candidates[ordinal][1] < best[1]:
                    best = candidates[ordinal]
                    best_ordinal = ordinal
        else:
            best = self._enforce(candidates[0], req_part, req_sort)
            best_ordinal = 0
            for ordinal in range(1, len(candidates)):
                enforced = self._enforce(candidates[ordinal], req_part, req_sort)
                if enforced[1] < best[1]:
                    best = enforced
                    best_ordinal = ordinal
        # Candidate *existence* can vary per job (alignment failures), so the
        # choice key records how many candidates were in play as well
        # (packed with the winner ordinal; counts are single-digit).
        self._choices.append(best_ordinal * 16 + len(candidates))
        if self._schedule is not None:
            self._schedule.append((index, req_part, req_sort))
        self._memo[key] = best
        return best

    def _pick_deferred(
        self,
        candidates: list[tuple[RNode, object]],
        req_part: Partitioning,
        req_sort: SortOrder,
    ) -> tuple[tuple[RNode, object], int]:
        """The winner under a deferred-cost ledger.

        Mirrors the reference planner's batched branch: a lone candidate is
        stored with its cost expression unresolved (no flush — the parent
        frontier prices it), while a genuine comparison flushes the pending
        operators in one packed pass and resolves each expression with
        :func:`_resolve_cost`'s bit-exact arithmetic replay before the usual
        first-seen strict ``<`` scan.
        """
        if req_part is _ANY and req_sort is _NO_SORT:
            enforced = candidates
        else:
            enforced = [
                self._enforce(candidate, req_part, req_sort)
                for candidate in candidates
            ]
        if len(enforced) == 1:
            return enforced[0], 0
        self._flush_pending()
        priced = self._priced
        best_op, best_cost = enforced[0]
        best_cost = _resolve_cost(best_cost, priced)
        best = (best_op, best_cost)
        best_ordinal = 0
        for ordinal in range(1, len(enforced)):
            op, cost = enforced[ordinal]
            cost = _resolve_cost(cost, priced)
            if cost < best_cost:
                best = (op, cost)
                best_cost = cost
                best_ordinal = ordinal
        return best, best_ordinal

    def _implementations(
        self, index: int, req_part: Partitioning, req_sort: SortOrder
    ) -> list[tuple[RNode, float]]:
        kind = self._skel.nodes[index].op_type
        if kind is LogicalOpType.GET:
            return self._impl_get(index)
        if kind in (LogicalOpType.FILTER, LogicalOpType.PROJECT):
            return self._impl_passthrough(index, req_part, req_sort)
        if kind is LogicalOpType.PROCESS:
            return self._impl_process(index)
        if kind is LogicalOpType.JOIN:
            return self._impl_join(index)
        if kind is LogicalOpType.AGGREGATE:
            return self._impl_aggregate(index)
        if kind is LogicalOpType.SORT:
            return self._impl_sort(index)
        if kind is LogicalOpType.TOP_K:
            return self._impl_topk(index)
        if kind is LogicalOpType.UNION:
            return self._impl_union(index)
        if kind is LogicalOpType.OUTPUT:
            return self._impl_output(index)
        raise OptimizationError(f"unsupported logical operator {kind}")

    # ------------------------------------------------------------------ #
    # Per-operator implementations (mirroring QueryPlanner's)
    # ------------------------------------------------------------------ #

    def _impl_get(self, index: int) -> list[tuple[RNode, float]]:
        logical = self._bound[index]
        partitions = self._heuristic_partitions_for_volume(
            logical.true_card, logical.row_bytes, logical.template_tag
        )
        op = self._mk(
            PhysOpType.EXTRACT, (), logical, partitions, _RANDOM, index=index
        )
        return [(op, self._cost(op))]

    def _impl_passthrough(
        self, index: int, req_part: Partitioning, req_sort: SortOrder
    ) -> list[tuple[RNode, float]]:
        sn = self._skel.nodes[index]
        logical = self._bound[index]
        phys_type = (
            PhysOpType.FILTER
            if sn.op_type is LogicalOpType.FILTER
            else PhysOpType.COMPUTE
        )
        child_index = sn.children[0]
        requirement_pairs = [(req_part, req_sort)]
        if (req_part, req_sort) != (_ANY, _NO_SORT):
            requirement_pairs.append((_ANY, _NO_SORT))
        out: list[tuple[RNode, float]] = []
        for child_part, child_sort in requirement_pairs:
            child_node, child_cost = self._optimize(child_index, child_part, child_sort)
            op = self._mk(
                phys_type,
                (child_node,),
                logical,
                child_node.partition_count,
                child_node.partitioning,
                child_node.sorting,
                index=index,
            )
            out.append((op, child_cost + self._cost(op)))
        return out

    def _impl_process(self, index: int) -> list[tuple[RNode, float]]:
        sn = self._skel.nodes[index]
        child_node, child_cost = self._optimize(sn.children[0], _ANY, _NO_SORT)
        op = self._mk(
            PhysOpType.PROCESS,
            (child_node,),
            self._bound[index],
            child_node.partition_count,
            _RANDOM,
            index=index,
        )
        return [(op, child_cost + self._cost(op))]

    def _impl_join(self, index: int) -> list[tuple[RNode, float]]:
        sn = self._skel.nodes[index]
        logical = self._bound[index]
        left, right = sn.children
        sides = [(left, right, sn.hash_left, sn.hash_right)]
        if self.config.enable_join_commute:
            sides.append((right, left, sn.hash_right, sn.hash_left))

        # Candidate existence here is *numeric* (partition alignment can fail
        # on one side only), so the join contributes an existence mask to the
        # choice key — winner ordinals alone would be ambiguous.
        mask = 0
        out: list[tuple[RNode, float]] = []
        for side, (probe, build, probe_req, build_req) in enumerate(sides):
            probe_cand = self._optimize(probe, probe_req, _NO_SORT)
            build_cand = self._optimize(build, build_req, _NO_SORT)
            aligned = self._align_partitions([probe_cand, build_cand])
            if aligned is not None:
                mask |= 1 << side
                (probe_node, probe_cost), (build_node, build_cost) = aligned
                op = self._mk(
                    PhysOpType.HASH_JOIN,
                    (probe_node, build_node),
                    logical,
                    probe_node.partition_count,
                    probe_req,
                    index=index,
                )
                out.append((op, probe_cost + build_cost + self._cost(op)))

        if self.config.enable_merge_join:
            left_cand = self._optimize(left, sn.hash_left, sn.sort_left)
            right_cand = self._optimize(right, sn.hash_right, sn.sort_right)
            aligned = self._align_partitions([left_cand, right_cand])
            if aligned is not None:
                mask |= 4
                (left_node, left_cost), (right_node, right_cost) = aligned
                op = self._mk(
                    PhysOpType.MERGE_JOIN,
                    (left_node, right_node),
                    logical,
                    left_node.partition_count,
                    sn.hash_left,
                    sn.sort_left,
                    index=index,
                )
                out.append((op, left_cost + right_cost + self._cost(op)))
        self._choices.append(mask)
        return out

    def _impl_aggregate(self, index: int) -> list[tuple[RNode, float]]:
        sn = self._skel.nodes[index]
        logical = self._bound[index]
        keys = logical.keys
        child_index = sn.children[0]
        final_req = sn.final_req
        delivered = final_req if keys else _SINGLETON
        out: list[tuple[RNode, float]] = []

        # (a) Hash aggregate directly on repartitioned input.
        child_node, child_cost = self._optimize(child_index, final_req, _NO_SORT)
        hash_agg = self._mk(
            PhysOpType.HASH_AGGREGATE,
            (child_node,),
            logical,
            child_node.partition_count,
            delivered,
            index=index,
        )
        out.append((hash_agg, child_cost + self._cost(hash_agg)))

        # (b) Stream aggregate over sorted, repartitioned input.
        if keys and self.config.enable_stream_aggregate:
            sorted_node, sorted_cost = self._optimize(child_index, final_req, sn.sort_req)
            stream_agg = self._mk(
                PhysOpType.STREAM_AGGREGATE,
                (sorted_node,),
                logical,
                sorted_node.partition_count,
                delivered,
                sn.sort_req,
                index=index,
            )
            out.append((stream_agg, sorted_cost + self._cost(stream_agg)))

        # (c) Local pre-aggregation before the shuffle (the Q17 plan shape).
        if self.config.enable_local_aggregate:
            any_node, any_cost = self._optimize(child_index, _ANY, _NO_SORT)
            local_logical = self._local_aggregate_logical(
                logical, sn.local_tag, any_node.partition_count
            )
            local = self._mk(
                PhysOpType.LOCAL_AGGREGATE,
                (any_node,),
                local_logical,
                any_node.partition_count,
                any_node.partitioning,
            )
            exchange = self._exchange_for(local, final_req)
            final = self._mk(
                PhysOpType.HASH_AGGREGATE,
                (exchange,),
                logical,
                exchange.partition_count,
                delivered,
                index=index,
            )
            cost = (
                any_cost + self._cost(local) + self._cost(exchange) + self._cost(final)
            )
            out.append((final, cost))
        return out

    def _impl_sort(self, index: int) -> list[tuple[RNode, float]]:
        sn = self._skel.nodes[index]
        logical = self._bound[index]
        child_node, child_cost = self._optimize(sn.children[0], _SINGLETON, _NO_SORT)
        op = self._mk(
            PhysOpType.SORT,
            (child_node,),
            logical,
            1,
            _SINGLETON,
            sn.sort_order,
            sort_keys=logical.keys,
            index=index,
        )
        return [(op, child_cost + self._cost(op))]

    def _impl_topk(self, index: int) -> list[tuple[RNode, float]]:
        sn = self._skel.nodes[index]
        logical = self._bound[index]
        child_node, child_cost = self._optimize(sn.children[0], _SINGLETON, _NO_SORT)
        op = self._mk(
            PhysOpType.TOP_K,
            (child_node,),
            logical,
            1,
            _SINGLETON,
            sn.sort_order,
            sort_keys=logical.keys,
            index=index,
        )
        return [(op, child_cost + self._cost(op))]

    def _impl_union(self, index: int) -> list[tuple[RNode, float]]:
        sn = self._skel.nodes[index]
        logical = self._bound[index]
        child_cands = [
            self._optimize(child, _ANY, _NO_SORT) for child in sn.children
        ]
        target = max(
            self._heuristic_partitions_for_volume(
                child.true_card, child.row_bytes, logical.template_tag
            )
            for child in logical.children
        )
        exchanged = []
        cost = 0.0
        for child_node, child_cost in child_cands:
            exchange = self._mk(
                PhysOpType.EXCHANGE,
                (child_node,),
                None,
                target,
                _RANDOM,
                exchange_mode=ExchangeMode.RANDOM,
            )
            exchanged.append(exchange)
            cost += child_cost + self._cost(exchange)
        op = self._mk(
            PhysOpType.UNION_ALL, tuple(exchanged), logical, target, _RANDOM,
            index=index,
        )
        return [(op, cost + self._cost(op))]

    def _impl_output(self, index: int) -> list[tuple[RNode, float]]:
        sn = self._skel.nodes[index]
        child_node, child_cost = self._optimize(sn.children[0], _ANY, _NO_SORT)
        op = self._mk(
            PhysOpType.OUTPUT,
            (child_node,),
            self._bound[index],
            child_node.partition_count,
            child_node.partitioning,
            child_node.sorting,
            index=index,
        )
        return [(op, child_cost + self._cost(op))]

    # ------------------------------------------------------------------ #
    # Enforcers and alignment (mirroring QueryPlanner's)
    # ------------------------------------------------------------------ #

    def _enforce(
        self,
        candidate: tuple[RNode, float],
        req_part: Partitioning,
        req_sort: SortOrder,
    ) -> tuple[RNode, float]:
        op, cost = candidate
        if not op.partitioning.satisfies(req_part):
            op = self._exchange_for(op, req_part)
            cost += self._cost(op)
        if not op.sorting.satisfies(req_sort):
            op = self._mk(
                PhysOpType.SORT,
                (op,),
                None,
                op.partition_count,
                op.partitioning,
                SortOrder(req_sort.columns),
                sort_keys=req_sort.columns,
            )
            cost += self._cost(op)
        return (op, cost)

    def _exchange_for(self, child: RNode, req_part: Partitioning) -> RNode:
        if req_part.scheme is PartitionScheme.SINGLETON:
            mode, partitions, delivered = ExchangeMode.GATHER, 1, _SINGLETON
        elif req_part.scheme is PartitionScheme.HASH:
            mode = ExchangeMode.HASH
            partitions = self._heuristic_partitions(child)
            delivered = req_part
        else:
            mode = ExchangeMode.RANDOM
            partitions = self._heuristic_partitions(child)
            delivered = _RANDOM
        return self._mk(
            PhysOpType.EXCHANGE,
            (child,),
            None,
            partitions,
            delivered,
            exchange_mode=mode,
        )

    def _align_partitions(
        self, candidates: list[tuple[RNode, float]]
    ) -> list[tuple[RNode, float]] | None:
        counts = [node.partition_count for node, _ in candidates]
        target = max(counts)
        out: list[tuple[RNode, float]] = []
        for candidate in candidates:
            if candidate[0].partition_count == target:
                out.append(candidate)
                continue
            adjusted = self._with_root_stage_partitions(candidate, target)
            if adjusted is None:
                return None
            out.append(adjusted)
        return out

    def _with_root_stage_partitions(
        self, candidate: tuple[RNode, float], new_count: int
    ) -> tuple[RNode, float] | None:
        root, cost = candidate
        stage_ops: list[RNode] = []

        def collect(op: RNode) -> None:
            stage_ops.append(op)
            if op.op_type in PARTITIONING_OPS:
                return
            for child in op.children:
                collect(child)

        collect(root)
        for op in stage_ops:
            if (
                op.op_type is PhysOpType.EXCHANGE
                and op.exchange_mode is ExchangeMode.GATHER
            ):
                return None
            if op.partitioning.scheme is PartitionScheme.SINGLETON:
                return None
        in_stage = {id(op) for op in stage_ops}
        cost_delta = 0.0

        def rebuild(op: RNode) -> RNode:
            nonlocal cost_delta
            if id(op) not in in_stage:
                return op
            new_children = tuple(rebuild(child) for child in op.children)
            replaced = self._with_partitions(op, new_count)
            replaced.children = new_children
            cost_delta += self._cost(replaced) - self._cost(op)
            return replaced

        new_root = rebuild(root)
        return (new_root, cost + cost_delta)

    # ------------------------------------------------------------------ #
    # Partition heuristics and jitter (mirroring QueryPlanner's)
    # ------------------------------------------------------------------ #

    def _heuristic_partitions(self, op: RNode) -> int:
        # default_partition_heuristic on the replay node's cached estimates.
        rows = op.est_in if op.children else op.est_out
        width = op.children[0].row_bytes if op.children else op.row_bytes
        partitions = int(math.ceil(rows * width / self._mb_bytes))
        base = max(1, min(partitions, self.config.default_partition_cap))
        return min(self._jittered(base, op.template_tag), self.config.max_partitions)

    def _heuristic_partitions_for_volume(
        self, rows: float, row_bytes: float, jitter_key: str
    ) -> int:
        partitions = int(max(1, rows * row_bytes // self._mb_bytes + 1))
        partitions = min(partitions, self.config.default_partition_cap)
        return min(self._jittered(partitions, jitter_key), self.config.max_partitions)

    def _jittered(self, partitions: int, key: str) -> int:
        sigma = self.config.partition_jitter
        if sigma <= 0.0:
            return partitions
        factor = self._jitter_cache.get(key)
        if factor is None:
            factor = jitter_factor(self._salt, key, sigma)
            self._jitter_cache[key] = factor
        return max(1, int(round(partitions * factor)))

    # ------------------------------------------------------------------ #
    # Synthesized logical nodes
    # ------------------------------------------------------------------ #

    @staticmethod
    def _local_aggregate_logical(
        node: LogicalOp, local_tag: str, partitions: int
    ) -> LogicalOp:
        child = node.children[0]
        groups = node.group_count if node.group_count is not None else node.true_card
        local_card = max(1.0, min(child.true_card, groups * partitions))
        return LogicalOp(
            op_type=LogicalOpType.AGGREGATE,
            children=(child,),
            template_tag=local_tag,
            true_card=local_card,
            row_bytes=node.row_bytes,
            normalized_inputs=node.normalized_inputs,
            sel_true=(local_card / child.true_card) if child.true_card > 0 else 1.0,
            keys=node.keys,
            group_count=local_card,
        )


def materialize(node: RNode) -> PhysicalOp:
    """Convert a winning replay tree into a real :class:`PhysicalOp` plan.

    Shared winner subtrees are duplicated into fresh nodes, matching the
    reference planner's memo-hit cloning (physical plans must stay trees).
    """
    children = tuple(materialize(child) for child in node.children)
    return PhysicalOp(
        op_type=node.op_type,
        children=children,
        logical=node.logical,
        partition_count=node.partition_count,
        partitioning=node.partitioning,
        sorting=node.sorting,
        exchange_mode=node.exchange_mode,
        sort_keys=node.sort_keys,
    )


__all__ = [
    "RNode",
    "SkeletonPlanner",
    "SkeletonPlannerStats",
    "TemplateSkeleton",
    "materialize",
    "supports_fast_path",
    "supports_replay",
]
