"""Query optimizer: Cascades-style planning with resource exploration.

The planner lowers logical plans to physical plans top-down with required
properties (partitioning, sorting) flowing down and delivered properties
flowing up, inserting Exchange/Sort enforcers where needed — the SCOPE
optimizer's structure (Section 2.3).  Cleo's extensions (Section 5.2) are the
resource context and the partition exploration/optimization steps, which
replace the default local partition-count heuristics with stage-global
optimization driven by the learned models.
"""

from repro.optimizer.partition import (
    AnalyticalStrategy,
    DefaultHeuristicStrategy,
    ExhaustiveStrategy,
    PartitionStrategy,
    ResourceContext,
    SamplingStrategy,
    optimize_partitions,
)
from repro.optimizer.planner import PlannedJob, PlannerConfig, QueryPlanner
from repro.optimizer.replan import FleetReplanner, ReplanJob, replan_jobs
from repro.optimizer.skeleton import (
    SkeletonPlanner,
    SkeletonPlannerStats,
    materialize,
    supports_fast_path,
    supports_replay,
)

__all__ = [
    "AnalyticalStrategy",
    "DefaultHeuristicStrategy",
    "ExhaustiveStrategy",
    "FleetReplanner",
    "PartitionStrategy",
    "PlannedJob",
    "PlannerConfig",
    "QueryPlanner",
    "ReplanJob",
    "ResourceContext",
    "SamplingStrategy",
    "SkeletonPlanner",
    "SkeletonPlannerStats",
    "materialize",
    "optimize_partitions",
    "replan_jobs",
    "supports_fast_path",
    "supports_replay",
]
