"""Query optimizer: Cascades-style planning with resource exploration.

The planner lowers logical plans to physical plans top-down with required
properties (partitioning, sorting) flowing down and delivered properties
flowing up, inserting Exchange/Sort enforcers where needed — the SCOPE
optimizer's structure (Section 2.3).  Cleo's extensions (Section 5.2) are the
resource context and the partition exploration/optimization steps, which
replace the default local partition-count heuristics with stage-global
optimization driven by the learned models.
"""

from repro.optimizer.partition import (
    AnalyticalStrategy,
    DefaultHeuristicStrategy,
    ExhaustiveStrategy,
    PartitionStrategy,
    ResourceContext,
    SamplingStrategy,
    optimize_partitions,
)
from repro.optimizer.planner import PlannedJob, PlannerConfig, QueryPlanner

__all__ = [
    "AnalyticalStrategy",
    "DefaultHeuristicStrategy",
    "ExhaustiveStrategy",
    "PartitionStrategy",
    "PlannedJob",
    "PlannerConfig",
    "QueryPlanner",
    "ResourceContext",
    "SamplingStrategy",
    "optimize_partitions",
]
