"""Partition exploration and optimization (Sections 5.2-5.3).

The default SCOPE behaviour lets each partitioning operator pick its stage's
partition count from *local* statistics, which is locally optimal but can be
globally wrong (the paper's Figure 8b example: Exchange picks 2 for itself,
16 is best for the stage).  Cleo instead accumulates per-operator cost-vs-
partition information in a **resource context** and lets the partitioning
operator minimize the *stage total*:

* sampling strategies probe the learned models at candidate counts (random /
  uniform / geometric grids);
* the analytical strategy sums each operator's ``(theta_p, theta_c)``
  resource profile and minimizes ``sum(theta_p)/P + sum(theta_c)*P`` in
  closed form — at a small constant number of model lookups per operator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.cardinality.estimator import CardinalityEstimator
from repro.common.stats import geometric_partition_samples
from repro.core.learned_model import ResourceProfile
from repro.cost.interface import CostModel
from repro.plan.physical import ExchangeMode, PhysOpType, PhysicalOp
from repro.plan.properties import PartitionScheme
from repro.plan.stages import Stage, build_stage_graph


@dataclass
class ResourceContext:
    """Accumulates per-operator resource profiles for one stage.

    This is the paper's resource-context abstraction: operators attach their
    learned cost-vs-partition relationship while the stage is being
    optimized; the partitioning operator then reads the aggregate.
    """

    profiles: list[ResourceProfile] = field(default_factory=list)

    def attach(self, profile: ResourceProfile) -> None:
        self.profiles.append(profile)

    @property
    def theta_p(self) -> float:
        return sum(p.theta_p for p in self.profiles)

    @property
    def theta_c(self) -> float:
        return sum(p.theta_c for p in self.profiles)

    @property
    def theta_0(self) -> float:
        return sum(p.theta_0 for p in self.profiles)

    def stage_cost(self, partitions: float) -> float:
        return self.theta_p / partitions + self.theta_c * partitions + self.theta_0

    def optimal_partitions(self, max_partitions: int) -> int:
        """The paper's three-case analysis, via safe candidate evaluation."""
        aggregate = ResourceProfile(self.theta_p, self.theta_c, self.theta_0)
        return aggregate.optimal_partitions(max_partitions)


def default_partition_heuristic(
    op: PhysicalOp,
    estimator: CardinalityEstimator,
    partition_mb: float = 256.0,
    cap: int = 250,
) -> int:
    """SCOPE's default: partitions from local data volume, capped.

    ``ceil(estimated bytes / target partition size)``, clamped to [1, cap].
    """
    rows = estimator.estimate_input(op) if op.children else estimator.estimate(op)
    width = op.children[0].row_bytes if op.children else op.row_bytes
    partitions = int(math.ceil(rows * width / (partition_mb * 1024.0 * 1024.0)))
    return max(1, min(partitions, cap))


# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #


@runtime_checkable
class PartitionStrategy(Protocol):
    """Chooses a stage's partition count."""

    name: str

    def choose(
        self,
        stage_ops: list[PhysicalOp],
        cost_model: CostModel,
        estimator: CardinalityEstimator,
        max_partitions: int,
    ) -> int:
        """Return the chosen partition count for the stage."""
        ...


def _stage_cost_at(
    stage_ops: list[PhysicalOp],
    cost_model: CostModel,
    estimator: CardinalityEstimator,
    partitions: int,
) -> float:
    return sum(
        cost_model.operator_cost(op, estimator, partition_override=partitions)
        for op in stage_ops
    )


def _stage_costs_at(
    stage_ops: list[PhysicalOp],
    cost_model: CostModel,
    estimator: CardinalityEstimator,
    partitions: "list[int] | range",
) -> list[float]:
    """Stage totals at several candidate counts — one matrix pass if possible.

    Learned cost models advertising ``supports_batched_pricing`` price the
    whole ``len(partitions) x len(stage_ops)`` sweep through the packed
    serving runtime (:meth:`~repro.core.cost_model.CleoCostModel.
    price_stage_sweep`), bitwise identical to the scalar per-candidate
    :func:`_stage_cost_at` loop this falls back to.
    """
    if getattr(cost_model, "supports_batched_pricing", False):
        return cost_model.price_stage_sweep(stage_ops, estimator, list(partitions))
    return [_stage_cost_at(stage_ops, cost_model, estimator, p) for p in partitions]


@dataclass
class DefaultHeuristicStrategy:
    """The baseline: local statistics at the partitioning operator only."""

    partition_mb: float = 256.0
    cap: int = 250
    name: str = "heuristic"

    def choose(
        self,
        stage_ops: list[PhysicalOp],
        cost_model: CostModel,
        estimator: CardinalityEstimator,
        max_partitions: int,
    ) -> int:
        partitioning = [op for op in stage_ops if op.is_partitioning]
        anchor = partitioning[0] if partitioning else stage_ops[0]
        return min(
            default_partition_heuristic(anchor, estimator, self.partition_mb, self.cap),
            max_partitions,
        )


@dataclass
class ExhaustiveStrategy:
    """Probe every count in [1, max]; the oracle baseline of Section 6.5."""

    name: str = "exhaustive"

    def choose(
        self,
        stage_ops: list[PhysicalOp],
        cost_model: CostModel,
        estimator: CardinalityEstimator,
        max_partitions: int,
    ) -> int:
        candidates = range(1, max_partitions + 1)
        costs = _stage_costs_at(stage_ops, cost_model, estimator, candidates)
        return candidates[min(range(len(costs)), key=costs.__getitem__)]


@dataclass
class SamplingStrategy:
    """Probe a sampled grid of candidate counts.

    ``scheme`` is one of "geometric" (the paper's ``x_{i+1} = ceil(x_i +
    x_i/s)`` with skip coefficient s), "uniform", or "random"; for the last
    two, ``n_samples`` sets the grid size.
    """

    scheme: str = "geometric"
    skip_coefficient: float = 2.0
    n_samples: int = 16
    seed: int = 0
    name: str = "sampling"

    def __post_init__(self) -> None:
        if self.scheme not in ("geometric", "uniform", "random"):
            raise ValueError(f"unknown sampling scheme {self.scheme!r}")
        self.name = f"sampling-{self.scheme}"

    def candidates(self, max_partitions: int) -> list[int]:
        if self.scheme == "geometric":
            return geometric_partition_samples(max_partitions, self.skip_coefficient)
        if self.scheme == "uniform":
            grid = np.linspace(1, max_partitions, num=min(self.n_samples, max_partitions))
            return sorted({int(round(g)) for g in grid})
        # repro: allow(wallclock-rng) -- the random sampling scheme's seed is an explicit strategy hyperparameter (Section 5.2 ablation knob); candidates must replay across processes, which the raw int seed guarantees
        rng = np.random.default_rng(self.seed)
        picks = rng.integers(1, max_partitions + 1, size=self.n_samples)
        return sorted({1, *map(int, picks)})

    def choose(
        self,
        stage_ops: list[PhysicalOp],
        cost_model: CostModel,
        estimator: CardinalityEstimator,
        max_partitions: int,
    ) -> int:
        candidates = self.candidates(max_partitions)
        costs = _stage_costs_at(stage_ops, cost_model, estimator, candidates)
        return candidates[min(range(len(costs)), key=costs.__getitem__)]


@dataclass
class AnalyticalStrategy:
    """Closed-form stage optimization from learned resource profiles.

    Requires a :class:`CleoCostModel` (the profiles come from the learned
    models' raw-space coefficients).  Operators without any covering model
    contribute nothing, matching the paper's behaviour of only exploring
    where learned knowledge exists.

    ``trust_region`` bounds how far the analytical optimum may move from the
    stage's current count (a factor in each direction).  The linear theta
    profiles are fitted from the partition counts the logs actually contain;
    far outside that neighbourhood their extrapolation is unreliable, and an
    unbounded jump can trade a small predicted latency win for a large real
    resource blow-up.  ``None`` disables the bound.
    """

    name: str = "analytical"
    trust_region: float | None = 8.0

    def choose(
        self,
        stage_ops: list[PhysicalOp],
        cost_model: CostModel,
        estimator: CardinalityEstimator,
        max_partitions: int,
    ) -> int:
        # Duck-typed on purpose: only Cleo's cost model exposes learned
        # resource profiles (importing it here would cycle core<->optimizer).
        if not hasattr(cost_model, "resource_profile"):
            raise TypeError(
                "AnalyticalStrategy requires a cost model with resource_profile()"
                " (CleoCostModel)"
            )
        context = ResourceContext()
        if hasattr(cost_model, "resource_profiles") and getattr(
            cost_model, "supports_batched_pricing", False
        ):
            # One packed pass for the whole stage (bitwise identical to the
            # per-op loop below, which batched=False cost models retain).
            profiles = cost_model.resource_profiles(stage_ops, estimator)
        else:
            profiles = [cost_model.resource_profile(op, estimator) for op in stage_ops]
        for profile in profiles:
            if profile is not None:
                context.attach(profile)
        if not context.profiles:
            return stage_ops[0].partition_count  # nothing learned: keep as-is
        current = stage_ops[0].partition_count
        lo, hi = 1, max_partitions
        if self.trust_region is not None:
            lo = max(1, int(current / self.trust_region))
            hi = min(max_partitions, max(int(current * self.trust_region), lo))
        chosen = context.optimal_partitions(max_partitions)
        chosen = min(max(chosen, lo), hi)
        # Within the clamped range, re-check the boundary candidates.  The
        # candidates are sorted so a stage-cost tie always resolves to the
        # smallest partition count — never to set iteration order.
        return min(sorted({lo, chosen, hi}), key=context.stage_cost)


# --------------------------------------------------------------------- #
# Plan-level partition optimization
# --------------------------------------------------------------------- #


def _stage_is_fixed(stage: Stage) -> bool:
    """Stages pinned by required properties (singleton/gather) are skipped.

    This is step 2 of Figure 8a: when a partition count comes as a required
    property from upstream operators, no exploration happens.
    """
    for op in stage.operators:
        if op.op_type is PhysOpType.EXCHANGE and op.exchange_mode is ExchangeMode.GATHER:
            return True
        if op.partitioning.scheme is PartitionScheme.SINGLETON:
            return True
    return False


def optimize_partitions(
    plan: PhysicalOp,
    cost_model: CostModel,
    estimator: CardinalityEstimator,
    strategy: PartitionStrategy,
    max_partitions: int = 3000,
    guard: bool = True,
) -> PhysicalOp:
    """Re-optimize every stage's partition count in a finished plan.

    Walks the stage graph, asks the strategy for each non-fixed stage, and
    rebuilds the plan with the new counts.  Stages formed by co-partitioned
    joins share one count by construction (their exchanges live in the same
    stage), preserving co-partitioning.

    With ``guard`` enabled, a stage keeps its current count unless the cost
    model itself predicts the new count is cheaper — one of the paper's
    regression-avoidance techniques (Section 6.7): never act on a learned
    suggestion the learned costs do not endorse.
    """
    graph = build_stage_graph(plan)
    chosen: dict[int, int] = {}
    for stage in graph.topological_order():
        if _stage_is_fixed(stage):
            chosen[stage.index] = stage.partition_count
            continue
        candidate = strategy.choose(stage.operators, cost_model, estimator, max_partitions)
        if guard and candidate != stage.partition_count:
            # Both probes priced in one batched pass for learned models.
            current_cost, new_cost = _stage_costs_at(
                stage.operators,
                cost_model,
                estimator,
                [stage.partition_count, candidate],
            )
            if new_cost >= current_cost:
                candidate = stage.partition_count
        chosen[stage.index] = candidate

    rebuilt: dict[int, PhysicalOp] = {}

    def rebuild(op: PhysicalOp) -> PhysicalOp:
        # Memoized by node id: plans with shared subexpressions (DAG-shaped
        # caller input) keep each shared subtree as ONE rebuilt object —
        # un-memoized recursion duplicated it per consumer, splitting the
        # ``id(op)``-keyed stage identity and going exponential on deep
        # sharing.
        done = rebuilt.get(id(op))
        if done is not None:
            return done
        new_children = tuple(rebuild(child) for child in op.children)
        stage_idx = graph.stage_of[id(op)]
        new_count = chosen[stage_idx]
        if new_children == op.children and new_count == op.partition_count:
            result = op
        else:
            result = PhysicalOp(
                op_type=op.op_type,
                children=new_children,
                logical=op.logical,
                partition_count=new_count,
                partitioning=op.partitioning,
                sorting=op.sorting,
                exchange_mode=op.exchange_mode,
                sort_keys=op.sort_keys,
            )
        rebuilt[id(op)] = result
        return result

    return rebuild(plan)


def expected_lookups(
    n_operators: int,
    strategy_name: str,
    max_partitions: int = 3000,
    skip_coefficient: float = 2.0,
    models_per_lookup: int = 5,
) -> int:
    """Analytic model-lookup counts behind Figure 8(c).

    Exhaustive probes every count; geometric sampling probes
    ``log_{(s+1)/s}(Pmax)`` counts; the analytical approach reads each
    operator's models once.
    """
    if strategy_name == "exhaustive":
        return models_per_lookup * n_operators * max_partitions
    if strategy_name.startswith("sampling"):
        ratio = (skip_coefficient + 1.0) / skip_coefficient
        n_samples = int(math.ceil(math.log(max_partitions, ratio))) + 1
        return models_per_lookup * n_operators * n_samples
    if strategy_name == "analytical":
        return models_per_lookup * n_operators
    if strategy_name == "heuristic":
        return 0
    raise ValueError(f"unknown strategy {strategy_name!r}")
