"""Top-down query planner with property enforcement and resource awareness.

A Cascades-style Optimize-Inputs loop: required properties (partitioning,
sort order) flow down, delivered properties flow up, Exchange/Sort enforcers
reconcile the two, and every candidate operator is priced through a pluggable
cost model — the default heuristic model or Cleo's learned models served via
:class:`~repro.serving.service.CleoService` (step 10 of Figure 8a is
literally one call-site here).  Final plan totals go through the model's
``plan_cost``, which the learned models answer with one batched, grouped
prediction call.

Alternatives explored per logical operator:

* joins: hash join (either build side, via commutativity) and merge join;
* aggregates: hash vs stream aggregate, plus local-aggregate pre-reduction
  (the plan shape behind the paper's Q17 discussion);
* filters/projections: requirement push-down vs enforcement above (shuffle
  raw vs shuffle reduced data).

After the structural search, the optional partition strategy re-optimizes
every stage's partition count (Section 5.2's partition exploration +
optimization, run as a dedicated pass over the chosen plan's stage graph).

**Batched learned-cost planning.**  When the cost model advertises
``supports_batched_pricing`` (Cleo's :class:`~repro.core.cost_model.
CleoCostModel` does), the planner defers every ``_cost`` call: operators
are appended to a pending ledger and the call returns a
:class:`_DeferredCost` expression that records the exact float arithmetic
the scalar planner would have executed.  Whenever a costing frontier
actually needs comparing (a multi-candidate ``_optimize`` frame), the
whole ledger — the frontier's candidates plus every operator accumulated
through single-candidate frames below it — is priced in one
``price_operators`` call over the packed serving runtime, and the deferred
expressions are resolved by replaying their recorded arithmetic.  Plan
choices, costs, and model-lookup accounting are bitwise identical to the
scalar path (``tests/optimizer/test_batched_planning.py`` pins this); only
the number of vectorized model invocations differs.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.common.hashing import stable_unit_float

from repro.cardinality.estimator import CardinalityEstimator
from repro.common.errors import OptimizationError
from repro.cost.interface import CostModel, plan_cost
from repro.optimizer.partition import (
    PartitionStrategy,
    _stage_is_fixed,
    default_partition_heuristic,
    optimize_partitions,
)
from repro.plan.logical import LogicalOp, LogicalOpType
from repro.plan.physical import ExchangeMode, PhysOpType, PhysicalOp
from repro.plan.properties import Partitioning, PartitionScheme, SortOrder
from repro.plan.stages import build_stage_graph


@dataclass(frozen=True)
class PlannerConfig:
    """Planner knobs.

    ``default_partition_cap`` mirrors SCOPE's habit of capping the local
    heuristic at a few hundred partitions, while ``max_partitions`` is the
    cluster-wide bound that partition *exploration* may use (the paper probes
    up to 3000, a virtual cluster's machine allocation).
    """

    max_partitions: int = 3000
    exchange_partition_mb: float = 256.0
    default_partition_cap: int = 250
    enable_merge_join: bool = True
    enable_stream_aggregate: bool = True
    enable_local_aggregate: bool = True
    enable_join_commute: bool = True
    partition_strategy: PartitionStrategy | None = None
    #: Log-space sigma of deterministic allocation jitter applied to the
    #: default partition heuristic.  Production allocations wobble with queue
    #: pressure and token availability; that historical variation is what
    #: gives the learned models within-template partition-count signal.
    partition_jitter: float = 0.0


@dataclass(frozen=True)
class PlanCandidate:
    """A physical subplan with its accumulated estimated cost.

    During batched costing ``cost`` may transiently hold a
    :class:`_DeferredCost` expression; it is resolved to a float before any
    candidate comparison (and before the memo winner escapes the search).
    """

    op: PhysicalOp
    cost: float


@dataclass
class PlannedJob:
    """Result of one optimization: the plan plus planning telemetry."""

    plan: PhysicalOp
    estimated_cost: float
    optimize_seconds: float
    candidates_considered: int = 0

    @property
    def partition_counts(self) -> dict[int, int]:
        """Stage index -> partition count of the final plan."""
        graph = build_stage_graph(self.plan)
        return {stage.index: stage.partition_count for stage in graph.stages}


_ANY = Partitioning.any()
_NO_SORT = SortOrder.none()


class _DeferredCost:
    """A cost expression awaiting batched pricing.

    Leaves index into the planner's priced-value ledger (one entry per
    deferred operator, in ``_cost`` call order); interior nodes record the
    ``+``/``-`` arithmetic the scalar planner would have executed, with the
    operand order preserved by the reflected operators.  Resolving after
    the batch therefore replays bit-identical floating point: the batched
    planner can never flip a cost tie the scalar planner would not flip.
    """

    __slots__ = ("kind", "a", "b")

    LEAF = 0
    ADD = 1
    SUB = 2

    def __init__(self, kind: int, a, b=None) -> None:
        self.kind = kind
        self.a = a
        self.b = b

    def __add__(self, other):
        return _DeferredCost(_DeferredCost.ADD, self, other)

    def __radd__(self, other):
        return _DeferredCost(_DeferredCost.ADD, other, self)

    def __sub__(self, other):
        return _DeferredCost(_DeferredCost.SUB, self, other)

    def __rsub__(self, other):
        return _DeferredCost(_DeferredCost.SUB, other, self)


def _resolve_cost(cost, priced: list[float]) -> float:
    """Evaluate a (possibly deferred) cost against the priced ledger.

    Iterative post-order walk with an explicit stack: wide frontiers (a
    union of thousands of branches accumulating ``cost += ...``) build
    expressions deeper than the interpreter recursion limit.  Shared
    subexpressions (memo-reused deferred costs) are evaluated once per
    call; the arithmetic per node is identical to a recursive evaluation.
    """
    if not isinstance(cost, _DeferredCost):
        return cost
    values: dict[int, float] = {}
    stack: list[tuple[_DeferredCost, bool]] = [(cost, False)]
    while stack:
        node, expanded = stack.pop()
        node_id = id(node)
        if node_id in values:
            continue
        kind = node.kind
        if kind == _DeferredCost.LEAF:
            values[node_id] = priced[node.a]
        elif expanded:
            a, b = node.a, node.b
            a_value = values[id(a)] if isinstance(a, _DeferredCost) else a
            b_value = values[id(b)] if isinstance(b, _DeferredCost) else b
            values[node_id] = (
                a_value + b_value if kind == _DeferredCost.ADD else a_value - b_value
            )
        else:
            stack.append((node, True))
            if isinstance(node.b, _DeferredCost):
                stack.append((node.b, False))
            if isinstance(node.a, _DeferredCost):
                stack.append((node.a, False))
    return values[id(cost)]


def jitter_factor(salt: str, key: str, sigma: float) -> float:
    """The deterministic log-normal allocation-jitter multiplier.

    Shared by :meth:`QueryPlanner._jittered` and the skeleton planner so the
    two paths draw bit-identical wobble from the same (salt, key) pair.
    """
    u = stable_unit_float("partition-jitter", salt, key)
    v = stable_unit_float("partition-jitter-v", salt, key)
    z = math.sqrt(-2.0 * math.log(max(u, 1e-12))) * math.cos(2.0 * math.pi * v)
    return math.exp(sigma * z)


class QueryPlanner:
    """Optimizes logical plans into physical plans under a cost model."""

    def __init__(
        self,
        cost_model: CostModel,
        estimator: CardinalityEstimator,
        config: PlannerConfig | None = None,
    ) -> None:
        self.cost_model = cost_model
        self.estimator = estimator
        self.config = config or PlannerConfig()
        #: Callers (e.g. the workload runner) vary this per job so allocation
        #: jitter differs across jobs while staying reproducible.
        self.jitter_salt: str = ""
        self._memo: dict[tuple[int, Partitioning, SortOrder], PlanCandidate] = {}
        self._keepalive: list[object] = []
        self._candidates_considered = 0
        # Batched-costing state (active only while `plan` runs with a cost
        # model that advertises `supports_batched_pricing`).
        self._batched = False
        self._pending_ops: list[PhysicalOp] = []
        self._priced: list[float] = []

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def plan(self, logical_root: LogicalOp) -> PlannedJob:
        """Optimize one logical plan end to end."""
        start = time.perf_counter()
        self._memo.clear()
        self._keepalive = [logical_root]
        self._candidates_considered = 0
        self._batched = bool(
            getattr(self.cost_model, "supports_batched_pricing", False)
        )
        self._pending_ops = []
        self._priced = []
        # The estimator memoizes by object identity; stale entries from a
        # previous (freed) plan must never leak into this optimization.
        self.estimator.reset()

        best = self._optimize(logical_root, _ANY, _NO_SORT)
        if self._batched:
            # Operators whose costs never had to decide a comparison
            # (single-candidate frontiers feeding the final winner) are
            # still priced exactly once, so per-prediction model-lookup
            # accounting matches the scalar planner's total.
            self._flush_pending()
        physical = best.op
        if self.config.partition_strategy is not None:
            physical = optimize_partitions(
                physical,
                self.cost_model,
                self.estimator,
                self.config.partition_strategy,
                max_partitions=self.config.max_partitions,
            )
        total_cost = plan_cost(self.cost_model, physical, self.estimator)
        elapsed = time.perf_counter() - start
        return PlannedJob(
            plan=physical,
            estimated_cost=total_cost,
            optimize_seconds=elapsed,
            candidates_considered=self._candidates_considered,
        )

    # ------------------------------------------------------------------ #
    # Core recursion
    # ------------------------------------------------------------------ #

    def _optimize(
        self, node: LogicalOp, req_part: Partitioning, req_sort: SortOrder
    ) -> PlanCandidate:
        key = (id(node), req_part, req_sort)
        cached = self._memo.get(key)
        if cached is not None:
            # Logical plans may be DAGs (common subexpressions used twice,
            # e.g. TPC-H Q17's lineitem branch).  Physical plans must stay
            # trees — the stage graph and simulator count each operator
            # once — so every reuse of a memoized subplan gets fresh nodes.
            return PlanCandidate(self._clone_tree(cached.op), cached.cost)

        candidates = self._implementations(node, req_part, req_sort)
        if not candidates:
            raise OptimizationError(
                f"no implementation for {node.op_type.value} under "
                f"{req_part.describe()}/{req_sort.describe()}"
            )
        enforced = [self._enforce(c, req_part, req_sort) for c in candidates]
        self._candidates_considered += len(enforced)
        if self._batched and len(enforced) > 1:
            # This frontier needs comparing: price every operator deferred
            # so far in one batched pass, then resolve the candidates'
            # recorded cost arithmetic.  Single-candidate frames skip the
            # flush entirely — their deferred cost flows into the parent's
            # expression and is priced with the parent's frontier.
            self._flush_pending()
            priced = self._priced
            enforced = [
                PlanCandidate(c.op, _resolve_cost(c.cost, priced)) for c in enforced
            ]
        best = min(enforced, key=lambda c: c.cost)
        self._memo[key] = best
        return best

    def _implementations(
        self, node: LogicalOp, req_part: Partitioning, req_sort: SortOrder
    ) -> list[PlanCandidate]:
        kind = node.op_type
        if kind is LogicalOpType.GET:
            return self._impl_get(node)
        if kind in (LogicalOpType.FILTER, LogicalOpType.PROJECT):
            return self._impl_passthrough(node, req_part, req_sort)
        if kind is LogicalOpType.PROCESS:
            return self._impl_process(node)
        if kind is LogicalOpType.JOIN:
            return self._impl_join(node)
        if kind is LogicalOpType.AGGREGATE:
            return self._impl_aggregate(node)
        if kind is LogicalOpType.SORT:
            return self._impl_sort(node)
        if kind is LogicalOpType.TOP_K:
            return self._impl_topk(node)
        if kind is LogicalOpType.UNION:
            return self._impl_union(node)
        if kind is LogicalOpType.OUTPUT:
            return self._impl_output(node)
        raise OptimizationError(f"unsupported logical operator {kind}")

    # ------------------------------------------------------------------ #
    # Per-operator implementations
    # ------------------------------------------------------------------ #

    def _impl_get(self, node: LogicalOp) -> list[PlanCandidate]:
        partitions = self._heuristic_partitions_for_volume(
            node.true_card, node.row_bytes, jitter_key=node.template_tag
        )
        op = self._mk(
            PhysOpType.EXTRACT,
            children=(),
            logical=node,
            partition_count=partitions,
            partitioning=Partitioning.random(),
        )
        return [PlanCandidate(op, self._cost(op))]

    def _impl_passthrough(
        self, node: LogicalOp, req_part: Partitioning, req_sort: SortOrder
    ) -> list[PlanCandidate]:
        """Filter/Project: push the requirement down, or enforce above."""
        phys_type = (
            PhysOpType.FILTER if node.op_type is LogicalOpType.FILTER else PhysOpType.COMPUTE
        )
        child = node.children[0]
        # Push-down first, relaxed second, in a deterministic ORDER: a set
        # here would iterate in salted-hash order, and since `_optimize`
        # breaks cost ties by first-seen candidate, plan shapes (and thus
        # every simulated latency) would vary with PYTHONHASHSEED across
        # processes.
        requirement_pairs = [(req_part, req_sort)]
        if (req_part, req_sort) != (_ANY, _NO_SORT):
            requirement_pairs.append((_ANY, _NO_SORT))
        out: list[PlanCandidate] = []
        for child_part, child_sort in requirement_pairs:
            child_cand = self._optimize(child, child_part, child_sort)
            op = self._mk(
                phys_type,
                children=(child_cand.op,),
                logical=node,
                partition_count=child_cand.op.partition_count,
                partitioning=child_cand.op.partitioning,
                sorting=child_cand.op.sorting,
            )
            out.append(PlanCandidate(op, child_cand.cost + self._cost(op)))
        return out

    def _impl_process(self, node: LogicalOp) -> list[PlanCandidate]:
        """UDF: order/partitioning guarantees do not survive custom code."""
        child_cand = self._optimize(node.children[0], _ANY, _NO_SORT)
        op = self._mk(
            PhysOpType.PROCESS,
            children=(child_cand.op,),
            logical=node,
            partition_count=child_cand.op.partition_count,
            partitioning=Partitioning.random(),
        )
        return [PlanCandidate(op, child_cand.cost + self._cost(op))]

    def _impl_join(self, node: LogicalOp) -> list[PlanCandidate]:
        left, right = node.children
        left_key, right_key = node.keys
        sides = [(left, right, left_key, right_key)]
        if self.config.enable_join_commute:
            sides.append((right, left, right_key, left_key))

        out: list[PlanCandidate] = []
        for probe, build, probe_key, build_key in sides:
            probe_cand = self._optimize(probe, Partitioning.hash(probe_key), _NO_SORT)
            build_cand = self._optimize(build, Partitioning.hash(build_key), _NO_SORT)
            aligned = self._align_partitions([probe_cand, build_cand])
            if aligned is not None:
                probe_a, build_a = aligned
                op = self._mk(
                    PhysOpType.HASH_JOIN,
                    children=(probe_a.op, build_a.op),
                    logical=node,
                    partition_count=probe_a.op.partition_count,
                    partitioning=Partitioning.hash(probe_key),
                )
                out.append(PlanCandidate(op, probe_a.cost + build_a.cost + self._cost(op)))

        if self.config.enable_merge_join:
            left_cand = self._optimize(
                left, Partitioning.hash(left_key), SortOrder.on(left_key)
            )
            right_cand = self._optimize(
                right, Partitioning.hash(right_key), SortOrder.on(right_key)
            )
            aligned = self._align_partitions([left_cand, right_cand])
            if aligned is not None:
                left_a, right_a = aligned
                op = self._mk(
                    PhysOpType.MERGE_JOIN,
                    children=(left_a.op, right_a.op),
                    logical=node,
                    partition_count=left_a.op.partition_count,
                    partitioning=Partitioning.hash(left_key),
                    sorting=SortOrder.on(left_key),
                )
                out.append(PlanCandidate(op, left_a.cost + right_a.cost + self._cost(op)))
        return out

    def _impl_aggregate(self, node: LogicalOp) -> list[PlanCandidate]:
        keys = node.keys
        child = node.children[0]
        final_req = Partitioning.hash(*keys) if keys else Partitioning.singleton()
        delivered = final_req if keys else Partitioning.singleton()
        out: list[PlanCandidate] = []

        # (a) Hash aggregate directly on repartitioned input.
        child_cand = self._optimize(child, final_req, _NO_SORT)
        hash_agg = self._mk(
            PhysOpType.HASH_AGGREGATE,
            children=(child_cand.op,),
            logical=node,
            partition_count=child_cand.op.partition_count,
            partitioning=delivered,
        )
        out.append(PlanCandidate(hash_agg, child_cand.cost + self._cost(hash_agg)))

        # (b) Stream aggregate over sorted, repartitioned input.
        if keys and self.config.enable_stream_aggregate:
            sorted_cand = self._optimize(child, final_req, SortOrder.on(*keys))
            stream_agg = self._mk(
                PhysOpType.STREAM_AGGREGATE,
                children=(sorted_cand.op,),
                logical=node,
                partition_count=sorted_cand.op.partition_count,
                partitioning=delivered,
                sorting=SortOrder.on(*keys),
            )
            out.append(PlanCandidate(stream_agg, sorted_cand.cost + self._cost(stream_agg)))

        # (c) Local pre-aggregation before the shuffle (the Q17 plan shape).
        if self.config.enable_local_aggregate:
            any_cand = self._optimize(child, _ANY, _NO_SORT)
            local_logical = self._local_aggregate_logical(
                node, any_cand.op.partition_count
            )
            local = self._mk(
                PhysOpType.LOCAL_AGGREGATE,
                children=(any_cand.op,),
                logical=local_logical,
                partition_count=any_cand.op.partition_count,
                partitioning=any_cand.op.partitioning,
            )
            exchange = self._exchange_for(local, final_req)
            final = self._mk(
                PhysOpType.HASH_AGGREGATE,
                children=(exchange,),
                logical=node,
                partition_count=exchange.partition_count,
                partitioning=delivered,
            )
            cost = (
                any_cand.cost + self._cost(local) + self._cost(exchange) + self._cost(final)
            )
            out.append(PlanCandidate(final, cost))
        return out

    def _impl_sort(self, node: LogicalOp) -> list[PlanCandidate]:
        child_cand = self._optimize(node.children[0], Partitioning.singleton(), _NO_SORT)
        op = self._mk(
            PhysOpType.SORT,
            children=(child_cand.op,),
            logical=node,
            partition_count=1,
            partitioning=Partitioning.singleton(),
            sorting=SortOrder.on(*node.keys),
            sort_keys=node.keys,
        )
        return [PlanCandidate(op, child_cand.cost + self._cost(op))]

    def _impl_topk(self, node: LogicalOp) -> list[PlanCandidate]:
        child_cand = self._optimize(node.children[0], Partitioning.singleton(), _NO_SORT)
        op = self._mk(
            PhysOpType.TOP_K,
            children=(child_cand.op,),
            logical=node,
            partition_count=1,
            partitioning=Partitioning.singleton(),
            sorting=SortOrder.on(*node.keys),
            sort_keys=node.keys,
        )
        return [PlanCandidate(op, child_cand.cost + self._cost(op))]

    def _impl_union(self, node: LogicalOp) -> list[PlanCandidate]:
        child_cands = [self._optimize(child, _ANY, _NO_SORT) for child in node.children]
        # All inputs rebalanced to a common width (a union barrier).
        target = max(
            self._heuristic_partitions_for_volume(
                child.true_card, child.row_bytes, jitter_key=node.template_tag
            )
            for child in node.children
        )
        exchanged = []
        cost = 0.0
        for cand in child_cands:
            exchange = self._mk(
                PhysOpType.EXCHANGE,
                children=(cand.op,),
                logical=None,
                partition_count=target,
                partitioning=Partitioning.random(),
                exchange_mode=ExchangeMode.RANDOM,
            )
            exchanged.append(exchange)
            cost += cand.cost + self._cost(exchange)
        op = self._mk(
            PhysOpType.UNION_ALL,
            children=tuple(exchanged),
            logical=node,
            partition_count=target,
            partitioning=Partitioning.random(),
        )
        return [PlanCandidate(op, cost + self._cost(op))]

    def _impl_output(self, node: LogicalOp) -> list[PlanCandidate]:
        child_cand = self._optimize(node.children[0], _ANY, _NO_SORT)
        op = self._mk(
            PhysOpType.OUTPUT,
            children=(child_cand.op,),
            logical=node,
            partition_count=child_cand.op.partition_count,
            partitioning=child_cand.op.partitioning,
            sorting=child_cand.op.sorting,
        )
        return [PlanCandidate(op, child_cand.cost + self._cost(op))]

    # ------------------------------------------------------------------ #
    # Enforcers and alignment
    # ------------------------------------------------------------------ #

    def _enforce(
        self, candidate: PlanCandidate, req_part: Partitioning, req_sort: SortOrder
    ) -> PlanCandidate:
        """Insert Exchange/Sort on top until the requirement is satisfied."""
        op, cost = candidate.op, candidate.cost
        if not op.partitioning.satisfies(req_part):
            op = self._exchange_for(op, req_part)
            cost += self._cost(op)
        if not op.sorting.satisfies(req_sort):
            op = self._mk(
                PhysOpType.SORT,
                children=(op,),
                logical=None,
                partition_count=op.partition_count,
                partitioning=op.partitioning,
                sorting=SortOrder(req_sort.columns),
                sort_keys=req_sort.columns,
            )
            cost += self._cost(op)
        return PlanCandidate(op, cost)

    def _exchange_for(self, child: PhysicalOp, req_part: Partitioning) -> PhysicalOp:
        """Build the Exchange enforcer that delivers ``req_part``."""
        if req_part.scheme is PartitionScheme.SINGLETON:
            mode, partitions, delivered = ExchangeMode.GATHER, 1, Partitioning.singleton()
        elif req_part.scheme is PartitionScheme.HASH:
            mode = ExchangeMode.HASH
            partitions = self._heuristic_partitions(child)
            delivered = req_part
        else:  # RANDOM or ANY-after-failure: rebalance round-robin
            mode = ExchangeMode.RANDOM
            partitions = self._heuristic_partitions(child)
            delivered = Partitioning.random()
        return self._mk(
            PhysOpType.EXCHANGE,
            children=(child,),
            logical=None,
            partition_count=partitions,
            partitioning=delivered,
            exchange_mode=mode,
        )

    def _align_partitions(
        self, candidates: list[PlanCandidate]
    ) -> list[PlanCandidate] | None:
        """Make co-partitioned join inputs agree on a partition count.

        The larger count wins; the other side's root stage is rebuilt with
        the new count when possible.  Returns None when alignment fails
        (both sides pinned to different fixed counts).
        """
        counts = [c.op.partition_count for c in candidates]
        target = max(counts)
        out: list[PlanCandidate] = []
        for cand in candidates:
            if cand.op.partition_count == target:
                out.append(cand)
                continue
            adjusted = self._with_root_stage_partitions(cand, target)
            if adjusted is None:
                return None
            out.append(adjusted)
        return out

    def _with_root_stage_partitions(
        self, candidate: PlanCandidate, new_count: int
    ) -> PlanCandidate | None:
        """Rebuild the candidate's root stage at ``new_count`` partitions."""
        graph = build_stage_graph(candidate.op)
        root_stage = graph.stage_for(candidate.op)
        if _stage_is_fixed(root_stage):
            return None
        in_stage = {id(op) for op in root_stage.operators}
        cost_delta = 0.0

        def rebuild(op: PhysicalOp) -> PhysicalOp:
            nonlocal cost_delta
            if id(op) not in in_stage:
                return op
            new_children = tuple(rebuild(child) for child in op.children)
            replaced = PhysicalOp(
                op_type=op.op_type,
                children=new_children,
                logical=op.logical,
                partition_count=new_count,
                partitioning=op.partitioning,
                sorting=op.sorting,
                exchange_mode=op.exchange_mode,
                sort_keys=op.sort_keys,
            )
            self._keepalive.append(replaced)
            cost_delta += self._cost(replaced) - self._cost(op)
            return replaced

        new_root = rebuild(candidate.op)
        return PlanCandidate(new_root, candidate.cost + cost_delta)

    # ------------------------------------------------------------------ #
    # Small helpers
    # ------------------------------------------------------------------ #

    def _mk(self, op_type: PhysOpType, **kwargs) -> PhysicalOp:
        op = PhysicalOp(op_type=op_type, **kwargs)
        self._keepalive.append(op)
        return op

    def _clone_tree(self, op: PhysicalOp) -> PhysicalOp:
        """Deep-copy a physical subtree (fresh node identities)."""
        children = tuple(self._clone_tree(child) for child in op.children)
        clone = PhysicalOp(
            op_type=op.op_type,
            children=children,
            logical=op.logical,
            partition_count=op.partition_count,
            partitioning=op.partitioning,
            sorting=op.sorting,
            exchange_mode=op.exchange_mode,
            sort_keys=op.sort_keys,
        )
        self._keepalive.append(clone)
        return clone

    def _cost(self, op: PhysicalOp) -> "float | _DeferredCost":
        if not self._batched:
            return self.cost_model.operator_cost(op, self.estimator)
        index = len(self._priced) + len(self._pending_ops)
        self._pending_ops.append(op)
        return _DeferredCost(_DeferredCost.LEAF, index)

    def _flush_pending(self) -> None:
        """Price every deferred operator through the model's batched path."""
        ops = self._pending_ops
        if not ops:
            return
        self._pending_ops = []
        values = self.cost_model.price_operators(ops, self.estimator)
        self._priced.extend(map(float, values))

    def _heuristic_partitions(self, op: PhysicalOp) -> int:
        base = default_partition_heuristic(
            op,
            self.estimator,
            partition_mb=self.config.exchange_partition_mb,
            cap=self.config.default_partition_cap,
        )
        return min(
            self._jittered(base, op.template_tag),
            self.config.max_partitions,
        )

    def _heuristic_partitions_for_volume(
        self, rows: float, row_bytes: float, jitter_key: str = ""
    ) -> int:
        partitions = int(
            max(1, rows * row_bytes // (self.config.exchange_partition_mb * 1024 * 1024) + 1)
        )
        partitions = min(partitions, self.config.default_partition_cap)
        return min(self._jittered(partitions, jitter_key), self.config.max_partitions)

    def _jittered(self, partitions: int, key: str) -> int:
        """Deterministic allocation wobble around the heuristic choice."""
        sigma = self.config.partition_jitter
        if sigma <= 0.0:
            return partitions
        factor = jitter_factor(self.jitter_salt, key, sigma)
        return max(1, int(round(partitions * factor)))

    def _local_aggregate_logical(self, node: LogicalOp, partitions: int) -> LogicalOp:
        """Synthesize the logical node of a partial (per-partition) aggregate.

        Each partition emits at most ``group_count`` groups, so the local
        output is ``min(input, group_count * partitions)`` — a big win when
        groups are few, pure overhead when they are near-distinct (the
        paper's Q17 regression case).
        """
        child = node.children[0]
        groups = node.group_count if node.group_count is not None else node.true_card
        local_card = max(1.0, min(child.true_card, groups * partitions))
        return LogicalOp(
            op_type=LogicalOpType.AGGREGATE,
            children=(child,),
            template_tag=f"{node.template_tag}#local",
            true_card=local_card,
            row_bytes=node.row_bytes,
            normalized_inputs=node.normalized_inputs,
            sel_true=(local_card / child.true_card) if child.true_card > 0 else 1.0,
            keys=node.keys,
            # The estimator reads group_count as "output groups of this
            # node"; for a per-partition aggregate that is groups*partitions.
            group_count=local_card,
        )
