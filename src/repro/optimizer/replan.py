"""Fleet-scale recurring-job replanning through the packed runtime.

A production cluster re-optimizes its recurring jobs in bulk — nightly, or
whenever a model bank refresh lands (the paper's monthly retraining cadence,
Section 6.3).  The fleet shares massive structure: thousands of instances of
a few hundred templates, each instance differing only in its numbers.  This
driver compounds the repo's three planning optimizations over that shape:

* **skeleton memoization** — each ``(template_id, day)`` shape is analyzed
  once and replayed per instance (:class:`~repro.optimizer.skeleton.SkeletonPlanner`);
* **deferred frontier pricing** — candidate costs accumulate in the
  reference planner's ledger instead of scalar model round-trips;
* **packed inference** — and, the fleet-scale step, instances of one
  template are driven through the search *in lockstep*, so every frontier
  flush prices all instances' candidates in one
  :meth:`~repro.serving.service.CleoService.predict_inputs` pass, and the
  final per-plan totals for the whole fleet go through one
  :meth:`~repro.core.cost_model.CleoCostModel.price_plans` call.

Lockstep is sound because the search's *frame sequence* — which
``(node, requirement)`` subproblems are optimized, in what order — is a pure
function of the template structure and planner config: costs pick winners,
they never change which frames run.  The first replayed instance records the
sequence on the skeleton (:attr:`TemplateSkeleton.schedule`); every other
instance then processes frames in that order, which makes each frame's child
lookups memo hits and leaves candidate generation, enforcement, tie-breaking,
and floating-point arithmetic exactly the solo replay's.  Plans, costs, and
(with the prediction cache disabled, the optimizer-experiment default)
per-prediction lookup accounting are therefore bitwise identical to a
per-job :class:`~repro.optimizer.planner.QueryPlanner` loop; with a shared
prediction cache enabled, values are still identical but in-batch reuse
accounting can differ (the PR-5 precedent for cross-plan batches).

Heuristic cost models and scalar learned serving (``batched=False``) have no
frontier batches to share, so :meth:`FleetReplanner.replan_jobs` simply runs
:meth:`SkeletonPlanner.replan_job` per instance — still skeleton-memoized.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.cardinality.estimator import CardinalityEstimator
from repro.common.errors import OptimizationError
from repro.optimizer.planner import PlannedJob, PlannerConfig, _resolve_cost
from repro.optimizer.skeleton import (
    _ANY,
    _NO_SORT,
    RNode,
    SkeletonPlanner,
    SkeletonPlannerStats,
    _ReplayState,
    _replay_feature_input,
    _walk_replay,
    materialize,
)
from repro.plan.logical import LogicalOp


@dataclass(frozen=True)
class ReplanJob:
    """One recurring-job instance in a fleet replanning request.

    ``jitter_salt`` defaults to ``job_id``, matching the workload runner's
    per-job salting convention.
    """

    job_id: str
    template_id: str
    day: int
    logical: LogicalOp
    jitter_salt: str | None = None

    @property
    def salt(self) -> str:
        return self.job_id if self.jitter_salt is None else self.jitter_salt


class FleetReplanner:
    """Replans a fleet of recurring jobs, batching across instances.

    One instance wraps one :class:`SkeletonPlanner` (and thus one cost
    model / estimator / config triple); the skeleton cache and telemetry
    persist across :meth:`replan_jobs` calls, so a nightly driver reuses
    template analyses from the previous night.
    """

    def __init__(
        self,
        cost_model,
        estimator: CardinalityEstimator | None = None,
        config: PlannerConfig | None = None,
    ) -> None:
        self.planner = SkeletonPlanner(
            cost_model, estimator or CardinalityEstimator(), config
        )

    def stats(self) -> SkeletonPlannerStats:
        return self.planner.stats()

    def replan_jobs(self, jobs) -> list[PlannedJob]:
        """Replan every instance; results align with the input order.

        ``optimize_seconds`` amortizes shared work (a group's lockstep
        search, the fleet-wide pricing finale) evenly over the jobs that
        shared it — per-job wall clock is not individually attributable
        once instances batch together.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        planner = self.planner
        if not planner._deferred:
            # No frontier batches to share across instances: the solo replay
            # (already skeleton-memoized) is the whole optimization.
            return [
                planner.replan_job(job.template_id, job.day, job.logical, job.salt)
                for job in jobs
            ]

        groups: dict[tuple[str, int], list[int]] = {}
        for i, job in enumerate(jobs):
            groups.setdefault((job.template_id, job.day), []).append(i)

        wins: list[RNode | None] = [None] * len(jobs)
        seconds = [0.0] * len(jobs)
        candidates = [0] * len(jobs)
        for indices in groups.values():
            start = time.perf_counter()
            group_wins, group_candidates = self._search_group(jobs, indices)
            share = (time.perf_counter() - start) / len(indices)
            for k, i in enumerate(indices):
                wins[i] = group_wins[k]
                candidates[i] = group_candidates[k]
                seconds[i] = share

        strategy = planner.config.partition_strategy
        if strategy is not None:
            out: list[PlannedJob] = []
            for i, win in enumerate(wins):
                start = time.perf_counter()
                plan, total = planner._finalize(win)
                elapsed = seconds[i] + (time.perf_counter() - start)
                out.append(PlannedJob(plan, total, elapsed, candidates[i]))
            return out

        # Fleet-wide pricing finale: every job's plan total in one packed
        # pass, each reduced with predict_plan's exact left-fold order.
        start = time.perf_counter()
        walks = [list(_walk_replay(win)) for win in wins]
        inputs = [_replay_feature_input(node) for nodes in walks for node in nodes]
        bundles = [node.bundle for nodes in walks for node in nodes]
        lengths = [len(nodes) for nodes in walks]
        totals = planner.cost_model.price_plans(inputs, bundles, lengths)
        plans = [materialize(win) for win in wins]
        share = (time.perf_counter() - start) / len(jobs)
        return [
            PlannedJob(plans[i], float(totals[i]), seconds[i] + share, candidates[i])
            for i in range(len(jobs))
        ]

    # ------------------------------------------------------------------ #
    # One template group, searched in lockstep
    # ------------------------------------------------------------------ #

    def _search_group(
        self, jobs: list[ReplanJob], indices: list[int]
    ) -> tuple[list[RNode], list[int]]:
        planner = self.planner
        skeleton = None
        states: list[_ReplayState] = []
        for i in indices:
            job = jobs[i]
            skeleton = planner.prepare_job(
                job.template_id, job.day, job.logical, job.salt
            )
            states.append(planner._export_state())

        wins: list[RNode | None] = [None] * len(indices)
        pos = 0
        if skeleton.schedule is None:
            # First instance runs solo to record the frame schedule (and in
            # the common single-instance-per-group case, this IS the search).
            planner._load_state(states[0])
            planner._schedule = []
            best, _cost = planner._optimize(skeleton.root_index, _ANY, _NO_SORT)
            skeleton.schedule = tuple(planner._schedule)
            planner._schedule = None
            planner._flush_pending()
            states[0] = planner._export_state()
            wins[0] = best
            pos = 1

        rest = states[pos:]
        if rest:
            for frame in skeleton.schedule:
                self._lockstep_frame(rest, frame)
            # The solo replay flushes stragglers after the search; match it
            # so lookup accounting stays aligned.
            self._flush_states(rest)
            root_key = (skeleton.root_index, id(_ANY), id(_NO_SORT))
            for k, st in enumerate(rest):
                wins[pos + k] = st.memo[root_key][0]
        return wins, [st.candidates_considered for st in states]

    def _lockstep_frame(
        self, states: list[_ReplayState], frame: tuple
    ) -> None:
        """Run one recorded search frame across every instance.

        Mirrors ``SkeletonPlanner._optimize`` for a cache-missing frame —
        same candidate generation, enforcement, choice-key packing, and
        first-seen strict ``<`` tie-breaking — except that when any instance
        has a real comparison to make, *all* instances' pending operators
        are priced in one packed pass.  Early pricing never perturbs values
        or ledger indices (predictions are batch-invariant and indices are
        assigned at ``_cost`` time), so per-instance arithmetic is exactly
        the solo replay's.
        """
        planner = self.planner
        index, req_part, req_sort = frame
        key = (index, id(req_part), id(req_sort))
        no_requirement = req_part is _ANY and req_sort is _NO_SORT
        per_state: list[list] = []
        need_flush = False
        for st in states:
            planner._load_state(st)
            candidates = planner._implementations(index, req_part, req_sort)
            if not candidates:
                raise OptimizationError(
                    f"no implementation for {st.bound[index].op_type.value} "
                    f"under {req_part.describe()}/{req_sort.describe()}"
                )
            st.candidates_considered += len(candidates)
            if no_requirement:
                enforced = candidates
            else:
                enforced = [
                    planner._enforce(candidate, req_part, req_sort)
                    for candidate in candidates
                ]
            if len(enforced) > 1:
                need_flush = True
            per_state.append(enforced)
        if need_flush:
            self._flush_states(states)
        for st, enforced in zip(states, per_state):
            if len(enforced) == 1:
                best = enforced[0]
                best_ordinal = 0
            else:
                priced = st.priced
                best_op, best_cost = enforced[0]
                best_cost = _resolve_cost(best_cost, priced)
                best = (best_op, best_cost)
                best_ordinal = 0
                for ordinal in range(1, len(enforced)):
                    op, cost = enforced[ordinal]
                    cost = _resolve_cost(cost, priced)
                    if cost < best_cost:
                        best = (op, cost)
                        best_cost = cost
                        best_ordinal = ordinal
            st.choices.append(best_ordinal * 16 + len(enforced))
            st.memo[key] = best

    def _flush_states(self, states: list[_ReplayState]) -> None:
        """Price every instance's pending operators in one packed pass."""
        pending: list[RNode] = []
        for st in states:
            pending.extend(st.pending)
        if not pending:
            return
        planner = self.planner
        inputs = [_replay_feature_input(node) for node in pending]
        bundles = [node.bundle for node in pending]
        values = planner.cost_model.price_inputs(inputs, bundles)
        offset = 0
        for st in states:
            n = len(st.pending)
            for value in values[offset : offset + n]:
                st.priced.append(float(value))
            # In-place clear: the planner's _pending aliases this list while
            # the state is loaded.
            st.pending.clear()
            offset += n
        planner._frontier_flushes += 1


def replan_jobs(
    jobs,
    cost_model,
    estimator: CardinalityEstimator | None = None,
    config: PlannerConfig | None = None,
) -> list[PlannedJob]:
    """One-shot fleet replanning (see :class:`FleetReplanner`)."""
    return FleetReplanner(cost_model, estimator, config).replan_jobs(jobs)


__all__ = ["FleetReplanner", "ReplanJob", "replan_jobs"]
