"""Cluster hardware model.

Each production cluster in the paper's study (Figure 9) has its own machine
SKUs, load profile, and workload mix.  A :class:`ClusterSpec` captures the
per-cluster knobs: a global speed factor, variance level, and the maximum
number of containers a virtual cluster may use (the paper probes partitions
up to 3000, its stated per-VC machine cap).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of one cluster.

    Attributes:
        name: cluster identifier (e.g. "cluster1").
        speed_factor: relative machine speed; latencies divide by this.
        noise_sigma: log-space sigma of per-execution runtime noise.
        outlier_probability: chance an operator hits a straggler/failure and
            is slowed by ``outlier_slowdown_range``.
        max_partitions: maximum containers per job (paper: 3000).
        default_partition_mb: target bytes per partition used by the default
            partition-count heuristic (SCOPE uses input-size-based defaults).
    """

    name: str
    speed_factor: float = 1.0
    noise_sigma: float = 0.10
    outlier_probability: float = 0.008
    outlier_slowdown_min: float = 1.8
    outlier_slowdown_max: float = 3.5
    max_partitions: int = 3000
    default_partition_mb: float = 256.0

    def __post_init__(self) -> None:
        if self.speed_factor <= 0:
            raise ValueError("speed_factor must be positive")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be >= 0")
        if not 0.0 <= self.outlier_probability < 1.0:
            raise ValueError("outlier_probability must be in [0, 1)")
        if self.max_partitions < 1:
            raise ValueError("max_partitions must be >= 1")


#: The four production clusters of the paper's evaluation (Figure 9), with
#: mild heterogeneity: different speeds and variance levels.
DEFAULT_CLUSTERS: tuple[ClusterSpec, ...] = (
    ClusterSpec(name="cluster1", speed_factor=1.00, noise_sigma=0.10),
    ClusterSpec(name="cluster2", speed_factor=0.85, noise_sigma=0.13),
    ClusterSpec(name="cluster3", speed_factor=1.10, noise_sigma=0.11),
    ClusterSpec(name="cluster4", speed_factor=0.95, noise_sigma=0.09),
)
