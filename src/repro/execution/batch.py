"""Batched job execution: array-speed ground truth over replayed plans.

The scalar :class:`~repro.execution.simulator.ExecutionSimulator` walks a
plan operator by operator — signature recursion, hidden-multiplier hashes,
feature extraction, latency formula — all in Python per operator.  This
module executes a whole *run* of jobs in a handful of array operations
instead, in two layers:

* **Shape statics**, cached per plan *shape* (the structural fingerprint of
  a replayed plan, day-independent): signatures, hidden multipliers, skew
  units, stage-graph structure, coefficient gathers, input encodings, CL/D
  context features.  None of these depend on a job instance's numbers, so
  every job that makes the same planning choices reuses them.  Statics are
  extracted by running the *real* implementations
  (``compute_signature_bundles``, ``build_stage_graph``,
  ``hidden_multiplier``) once over a materialized representative plan —
  parity with the scalar path is structural, not re-implemented.
* **Per-run numerics**: jobs are accumulated into flat row-major buffers
  (one row per operator) and the ground-truth latency formula runs once,
  vectorized, over all rows at :meth:`BatchedExecutionEngine.finish`.
  Per-execution noise stays a compact scalar loop so the RNG draw order
  matches the scalar path's interleaved, outcome-dependent ``_noise`` calls
  exactly; transcendental terms (``log2`` for sorts, ``log1p`` for skew) go
  through the same ``math.*`` calls as the scalar path because numpy's SIMD
  variants are not guaranteed bit-identical.

The result is bitwise-identical to per-job ``ExecutionSimulator.run_job``
runs: same operator latencies, features, signatures, and job records
(pinned by ``tests/workload/test_batched_parity.py``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.execution.runtime_log import JobRecord, OperatorRecord
from repro.execution.simulator import STAGE_STARTUP_SECONDS, ExecutionSimulator
from repro.features.featurizer import FeatureInput
from repro.features.table import FeatureTable
from repro.optimizer.skeleton import RNode, materialize
from repro.plan.physical import PhysOpType, PhysicalOp
from repro.plan.signatures import compute_signature_bundles
from repro.plan.stages import build_stage_graph


class ShapeStatics:
    """Everything about a plan shape that no job instance can change."""

    __slots__ = (
        "n",
        "op_type_values",
        "template_tags",
        "bundles",
        "multipliers",
        "skew_u",
        "input_enc",
        "logical_count",
        "depth",
        "coef_cpu",
        "coef_io",
        "coef_out",
        "coef_setup",
        "nlogn_indices",
        "hash_join_children",
        "first_child",
        "child_indices",
        "leaf_sets",
        "root_leaves",
        "params_indices",
        "stage_members",
        "stage_upstream",
        "stage_topo",
        "sig_strict",
        "sig_approx",
        "sig_input",
        "sig_operator",
    )


def build_shape_statics(plan: PhysicalOp, simulator: ExecutionSimulator) -> ShapeStatics:
    """Extract a shape's static data by running the real scalar machinery
    once over a representative materialized plan."""
    ground_truth = simulator.ground_truth
    ops = list(plan.walk())
    index_of = {id(op): i for i, op in enumerate(ops)}
    bundles_by_id = compute_signature_bundles(plan)

    s = ShapeStatics()
    s.n = len(ops)
    s.op_type_values = [op.op_type.value for op in ops]
    s.template_tags = [op.template_tag for op in ops]
    s.bundles = [bundles_by_id[id(op)] for op in ops]
    s.multipliers = [
        ground_truth.hidden_multiplier(op, strict_sig=s.bundles[i].strict)
        for i, op in enumerate(ops)
    ]
    s.skew_u = [
        ground_truth.skew_unit(frozenset(op.normalized_inputs)) for op in ops
    ]
    s.input_enc = [FeatureInput.encode_inputs(op.normalized_inputs) for op in ops]

    coefficients = ground_truth.params.coefficients
    s.coef_cpu = [coefficients[op.op_type].cpu for op in ops]
    s.coef_io = [coefficients[op.op_type].io for op in ops]
    s.coef_out = [coefficients[op.op_type].out for op in ops]
    s.coef_setup = [coefficients[op.op_type].setup for op in ops]
    s.nlogn_indices = tuple(
        i for i, op in enumerate(ops) if coefficients[op.op_type].nlogn
    )
    s.hash_join_children = tuple(
        (i, index_of[id(op.children[0])], index_of[id(op.children[1])])
        for i, op in enumerate(ops)
        if op.op_type is PhysOpType.HASH_JOIN
    )
    s.first_child = tuple(
        index_of[id(op.children[0])] if op.children else i
        for i, op in enumerate(ops)
    )
    s.child_indices = tuple(
        tuple(index_of[id(child)] for child in op.children) for op in ops
    )
    # CL / D / leaf sets, bottom-up in one pass (post-order guarantees the
    # children's entries exist).  Integer-exact, matching the per-node
    # recursive properties.
    logical_count = [0] * s.n
    depth = [1] * s.n
    leaf_sets: list[tuple[int, ...]] = [()] * s.n
    for i, op in enumerate(ops):
        children = s.child_indices[i]
        own = 1 if op.logical is not None else 0
        if not children:
            logical_count[i] = own
            leaf_sets[i] = (i,)
        else:
            count = own
            max_depth = 0
            leaves: list[int] = []
            for c in children:
                count += logical_count[c]
                if depth[c] > max_depth:
                    max_depth = depth[c]
                leaves.extend(leaf_sets[c])
            logical_count[i] = count
            depth[i] = 1 + max_depth
            leaf_sets[i] = tuple(leaves)
    s.logical_count = [float(v) for v in logical_count]
    s.depth = [float(v) for v in depth]
    s.leaf_sets = tuple(leaf_sets)
    s.root_leaves = s.leaf_sets[-1]
    s.params_indices = tuple(
        i for i, op in enumerate(ops) if op.logical is not None and op.logical.params
    )

    graph = build_stage_graph(plan)
    s.stage_members = tuple(
        tuple(index_of[id(op)] for op in stage.operators) for stage in graph.stages
    )
    s.stage_upstream = tuple(tuple(stage.upstream) for stage in graph.stages)
    s.stage_topo = tuple(stage.index for stage in graph.topological_order())

    s.sig_strict = [b.strict for b in s.bundles]
    s.sig_approx = [b.approx for b in s.bundles]
    s.sig_input = [b.input for b in s.bundles]
    s.sig_operator = [b.operator for b in s.bundles]
    return s


class _JobEntry:
    """Bookkeeping for one accumulated job (row offset + metadata)."""

    __slots__ = (
        "statics",
        "job_id",
        "template_id",
        "day",
        "is_adhoc",
        "offset",
        "input_bytes",
        "params_enc",
    )


class BatchedExecutionEngine:
    """Executes replayed plans through the vectorized ground-truth model.

    Wraps one cluster's :class:`ExecutionSimulator`, sharing its ground-truth
    model (and thus its multiplier caches) and its RNG tree, so noise streams
    are identical to the scalar path's.  Usage::

        engine.begin()
        for job ...:
            statics = engine.statics_for(win)
            engine.add_job(win, statics, job_id, template_id, day, adhoc)
        records, table = engine.finish()
    """

    def __init__(self, simulator: ExecutionSimulator) -> None:
        self.simulator = simulator
        self.ground_truth = simulator.ground_truth
        self.cluster = simulator.cluster
        self._rngs = simulator._rngs
        self._shape_cache: dict[tuple, ShapeStatics] = {}
        self.begin()

    def statics_for(
        self, win: RNode, choice_key: tuple, plan: PhysicalOp | None = None
    ) -> ShapeStatics:
        """The (cached) shape statics of a replayed plan.

        ``choice_key`` is the skeleton planner's ``last_choice_key``: the
        template id plus the search's winner ordinals and join-existence
        masks, which uniquely determine the plan shape (and is far cheaper
        to hash than a structural fingerprint of the tree).
        """
        statics = self._shape_cache.get(choice_key)
        if statics is None:
            statics = build_shape_statics(plan or materialize(win), self.simulator)
            self._shape_cache[choice_key] = statics
        return statics

    # ------------------------------------------------------------------ #
    # Run accumulation
    # ------------------------------------------------------------------ #

    def begin(self) -> None:
        """Reset the row buffers for a new run."""
        self._jobs: list[_JobEntry] = []
        self._true_card: list[float] = []
        self._row_bytes: list[float] = []
        self._partitions: list[int] = []
        self._est_in: list[float] = []
        self._est_out: list[float] = []
        self._input_card: list[float] = []
        self._base_card: list[float] = []
        self._rb_src_idx: list[int] = []
        self._multipliers: list[float] = []
        self._skew_u: list[float] = []
        self._coef_cpu: list[float] = []
        self._coef_io: list[float] = []
        self._coef_out: list[float] = []
        self._coef_setup: list[float] = []
        self._nlogn_rows: list[int] = []
        self._hash_join_rows: list[tuple[int, int, int]] = []

    def add_job(
        self,
        win: RNode,
        statics: ShapeStatics,
        job_id: str,
        template_id: str,
        day: int,
        is_adhoc: bool,
    ) -> None:
        """Gather one job's numerics into the run buffers."""
        offset = len(self._true_card)
        true_card = self._true_card
        row_bytes = self._row_bytes
        partitions = self._partitions
        est_in = self._est_in
        est_out = self._est_out
        # Iterative post-order walk (recursive generators cost a frame per
        # node); order matches PhysicalOp.walk exactly — the ordering
        # contract every row buffer and ShapeStatics index relies on.
        nodes: list[RNode] = []
        stack: list[tuple[RNode, bool]] = [(win, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded or not node.children:
                nodes.append(node)
                true_card.append(node.true_card)
                row_bytes.append(node.row_bytes)
                partitions.append(node.partition_count)
                est_in.append(node.est_in)
                est_out.append(node.est_out)
                continue
            stack.append((node, True))
            for child in reversed(node.children):
                stack.append((child, False))

        # Summation orders below replicate the scalar properties exactly
        # (PhysicalOp.input_card / base_card and run_job's input_bytes all
        # accumulate left to right from zero).
        for i, children in enumerate(statics.child_indices):
            if not children:
                self._input_card.append(true_card[offset + i])
            else:
                total = 0.0
                for c in children:
                    total += true_card[offset + c]
                self._input_card.append(total)

        # base_card per operator (the B feature).
        for leaves in statics.leaf_sets:
            total = 0
            for leaf in leaves:
                total += true_card[offset + leaf]
            self._base_card.append(float(total))

        entry = _JobEntry()
        entry.statics = statics
        entry.job_id = job_id
        entry.template_id = template_id
        entry.day = day
        entry.is_adhoc = is_adhoc
        entry.offset = offset
        input_bytes = 0
        for leaf in statics.root_leaves:
            input_bytes += true_card[offset + leaf] * self._row_bytes[offset + leaf]
        entry.input_bytes = float(input_bytes)
        params_enc = [0.0] * statics.n
        for i in statics.params_indices:
            params_enc[i] = FeatureInput.encode_params(nodes[i].logical.params)
        entry.params_enc = params_enc
        self._jobs.append(entry)

        for i in statics.first_child:
            self._rb_src_idx.append(offset + i)
        self._multipliers.extend(statics.multipliers)
        self._skew_u.extend(statics.skew_u)
        self._coef_cpu.extend(statics.coef_cpu)
        self._coef_io.extend(statics.coef_io)
        self._coef_out.extend(statics.coef_out)
        self._coef_setup.extend(statics.coef_setup)
        for i in statics.nlogn_indices:
            self._nlogn_rows.append(offset + i)
        for i, c0, c1 in statics.hash_join_children:
            self._hash_join_rows.append((offset + i, offset + c0, offset + c1))

    # ------------------------------------------------------------------ #
    # Vectorized execution
    # ------------------------------------------------------------------ #

    def finish(self) -> tuple[list[JobRecord], FeatureTable]:
        """Execute every accumulated job; returns records + columnar table."""
        if not self._jobs:
            return [], FeatureTable.from_records([])
        ground_truth = self.ground_truth
        params = ground_truth.params
        n_rows = len(self._true_card)

        true_card = np.array(self._true_card)
        row_bytes = np.array(self._row_bytes)
        partitions = np.array(self._partitions, dtype=float)
        input_card = np.array(self._input_card)

        rows_out = true_card / partitions
        rows_in = input_card / partitions
        bytes_in = rows_in * row_bytes[np.array(self._rb_src_idx)]

        effective_rows_in = rows_in.copy()
        for i, c0, c1 in self._hash_join_rows:
            probe = self._true_card[c0] / partitions[i]
            build = self._true_card[c1] / partitions[i]
            effective_rows_in[i] = probe + ground_truth.HASH_BUILD_FACTOR * build

        coef_cpu = np.array(self._coef_cpu)
        work = np.array(self._coef_io) * bytes_in + np.array(self._coef_out) * rows_out
        cpu_term = coef_cpu * effective_rows_in
        for i in self._nlogn_rows:
            # math.log2, matching the scalar path bit for bit.
            cpu_term[i] = coef_cpu[i] * rows_in[i] * math.log2(rows_in[i] + 2.0)
        work = work + cpu_term

        log1p_cached = ground_truth.log1p_partitions
        log1p_p = np.array([log1p_cached(p) for p in self._partitions])
        skew = 1.0 + params.skew_base * np.array(self._skew_u) * log1p_p
        base = work * skew
        base = base + np.array(self._coef_setup) * partitions
        latency = np.array(self._multipliers) * base / self.cluster.speed_factor

        # Per-execution noise: a compact scalar loop in job order so the
        # interleaved, outcome-dependent RNG draws match the scalar path's.
        noise = np.empty(n_rows)
        gt_noise = ground_truth._noise
        rng_child = self._rngs.child
        for entry in self._jobs:
            rng = rng_child("noise", entry.job_id, entry.day)
            for i in range(entry.offset, entry.offset + entry.statics.n):
                noise[i] = gt_noise(rng)
        latency = latency * noise
        latency = np.maximum(latency, params.min_latency)
        cpu_seconds = latency * partitions / skew

        latency_list = latency.tolist()
        cpu_list = cpu_seconds.tolist()
        records = self._build_records(latency_list, cpu_list)
        table = self._build_table(latency)
        self.begin()
        return records, table

    def _build_records(
        self, latency_list: list[float], cpu_list: list[float]
    ) -> list[JobRecord]:
        cluster_name = self.cluster.name
        records: list[JobRecord] = []
        for entry in self._jobs:
            statics = entry.statics
            offset = entry.offset
            n = statics.n

            # Stage critical path, replicating the scalar accumulation order.
            stage_latency = []
            for members in statics.stage_members:
                total = 0
                for i in members:
                    total += latency_list[offset + i]
                stage_latency.append(STAGE_STARTUP_SECONDS + total)
            finish: dict[int, float] = {}
            for idx in statics.stage_topo:
                upstream_finish = max(
                    (finish[u] for u in statics.stage_upstream[idx]), default=0.0
                )
                finish[idx] = upstream_finish + stage_latency[idx]
            job_latency = max(finish.values()) if finish else 0.0

            cpu_total = 0.0
            operator_records = []
            job_id = entry.job_id
            day = entry.day
            adhoc = entry.is_adhoc
            for i in range(n):
                row = offset + i
                # Positional construction (field order) — this loop builds
                # every operator record of the workload.
                features = FeatureInput(
                    self._est_in[row],
                    self._base_card[row],
                    self._est_out[row],
                    self._row_bytes[row],
                    float(self._partitions[row]),
                    statics.input_enc[i],
                    entry.params_enc[i],
                    statics.logical_count[i],
                    statics.depth[i],
                )
                cpu = cpu_list[row]
                cpu_total += cpu
                operator_records.append(
                    OperatorRecord(
                        job_id,
                        cluster_name,
                        day,
                        statics.op_type_values[i],
                        statics.template_tags[i],
                        statics.bundles[i],
                        features,
                        latency_list[row],
                        self._true_card[row],
                        self._input_card[row],
                        cpu,
                        adhoc,
                    )
                )
            records.append(
                JobRecord(
                    job_id=entry.job_id,
                    template_id=entry.template_id,
                    cluster=cluster_name,
                    day=entry.day,
                    is_adhoc=entry.is_adhoc,
                    latency_seconds=job_latency,
                    cpu_seconds=cpu_total,
                    input_bytes=entry.input_bytes,
                    operators=tuple(operator_records),
                )
            )
        return records

    def _build_table(self, latency: np.ndarray) -> FeatureTable:
        input_enc: list[float] = []
        logical_count: list[float] = []
        depth: list[float] = []
        params_enc: list[float] = []
        sig_strict: list[int] = []
        sig_approx: list[int] = []
        sig_input: list[int] = []
        sig_operator: list[int] = []
        day: list[int] = []
        is_adhoc: list[bool] = []
        cluster: list[str] = []
        cluster_name = self.cluster.name
        for entry in self._jobs:
            statics = entry.statics
            input_enc.extend(statics.input_enc)
            logical_count.extend(statics.logical_count)
            depth.extend(statics.depth)
            params_enc.extend(entry.params_enc)
            sig_strict.extend(statics.sig_strict)
            sig_approx.extend(statics.sig_approx)
            sig_input.extend(statics.sig_input)
            sig_operator.extend(statics.sig_operator)
            day.extend([entry.day] * statics.n)
            is_adhoc.extend([entry.is_adhoc] * statics.n)
            cluster.extend([cluster_name] * statics.n)
        return FeatureTable(
            input_card=np.array(self._est_in),
            base_card=np.array(self._base_card),
            output_card=np.array(self._est_out),
            avg_row_bytes=np.array(self._row_bytes),
            partition_count=np.array(self._partitions, dtype=float),
            input_enc=np.array(input_enc),
            params_enc=np.array(params_enc),
            logical_count=np.array(logical_count),
            depth=np.array(depth),
            signatures={
                "strict": np.array(sig_strict, dtype=np.uint64),
                "approx": np.array(sig_approx, dtype=np.uint64),
                "input": np.array(sig_input, dtype=np.uint64),
                "operator": np.array(sig_operator, dtype=np.uint64),
            },
            latency=latency,
            day=np.array(day, dtype=np.int64),
            cluster=tuple(cluster),
            is_adhoc=np.array(is_adhoc, dtype=bool),
        )


__all__ = [
    "BatchedExecutionEngine",
    "ShapeStatics",
    "build_shape_statics",
]
