"""The distributed execution simulator.

Executes a physical plan against the hidden ground-truth latency model and
produces (i) per-operator records for the training feedback loop and (ii)
job-level outcomes (end-to-end latency over the stage critical path, total
processing time across containers) used by the performance experiments
(Figures 19-20).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cardinality.estimator import CardinalityEstimator
from repro.common.rng import RngFactory
from repro.execution.ground_truth import GroundTruthModel, GroundTruthParams
from repro.execution.hardware import ClusterSpec
from repro.execution.runtime_log import JobRecord, OperatorRecord
from repro.features.extract import feature_input_for
from repro.features.featurizer import FeatureInput
from repro.plan.physical import PhysicalOp
from repro.plan.signatures import compute_signature_bundles
from repro.plan.stages import build_stage_graph

#: Fixed per-stage scheduling latency (container acquisition, setup waves).
STAGE_STARTUP_SECONDS = 2.0


@dataclass(frozen=True)
class JobResult:
    """Outcome of simulating one job."""

    record: JobRecord
    stage_latencies: tuple[float, ...]

    @property
    def latency(self) -> float:
        return self.record.latency_seconds

    @property
    def cpu_seconds(self) -> float:
        return self.record.cpu_seconds


class ExecutionSimulator:
    """Simulates job executions on one cluster.

    The same simulator instance must be reused across a workload so that the
    hidden-multiplier cache stays warm; results are deterministic given the
    seed and the (job_id, day) pair of each run.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        params: GroundTruthParams | None = None,
        seed: int = 0,
    ) -> None:
        self.cluster = cluster
        self.ground_truth = GroundTruthModel(cluster, params)
        self._rngs = RngFactory(seed).spawn("simulator", cluster.name)

    def run_job(
        self,
        plan: PhysicalOp,
        job_id: str,
        template_id: str = "",
        day: int = 1,
        is_adhoc: bool = False,
        estimator: CardinalityEstimator | None = None,
        with_noise: bool = True,
    ) -> JobResult:
        """Execute ``plan`` and return its job record.

        Args:
            estimator: the cardinality estimator whose *estimates* are logged
                as features (defaults to a fresh default estimator).  The
                actual latencies always use true cardinalities.
            with_noise: disable for the deterministic oracle used in tests.
        """
        estimator = estimator or CardinalityEstimator()
        # The estimate memo is keyed by object identity; clear it so reused
        # estimators never serve entries from a previous (freed) plan.
        estimator.reset()
        bundles = compute_signature_bundles(plan)
        noise_rng = (
            self._rngs.child("noise", job_id, day) if with_noise else None
        )

        records: list[OperatorRecord] = []
        latencies: dict[int, float] = {}
        cpu_total = 0.0
        for op in plan.walk():
            bundle = bundles[id(op)]
            latency = self.ground_truth.exclusive_latency(
                op, rng=noise_rng, strict_sig=bundle.strict
            )
            cpu = self.ground_truth.cpu_seconds(op, latency)
            cpu_total += cpu
            latencies[id(op)] = latency
            records.append(
                OperatorRecord(
                    job_id=job_id,
                    cluster=self.cluster.name,
                    day=day,
                    op_type=op.op_type.value,
                    template_tag=op.template_tag,
                    signatures=bundle,
                    features=self.feature_input(op, estimator),
                    actual_latency=latency,
                    actual_output_card=op.true_card,
                    actual_input_card=op.input_card,
                    cpu_seconds=cpu,
                    is_adhoc=is_adhoc,
                )
            )

        stage_latencies, job_latency = self._stage_critical_path(plan, latencies)
        input_bytes = sum(
            leaf.true_card * leaf.row_bytes for leaf in plan.walk() if not leaf.children
        )
        record = JobRecord(
            job_id=job_id,
            template_id=template_id,
            cluster=self.cluster.name,
            day=day,
            is_adhoc=is_adhoc,
            latency_seconds=job_latency,
            cpu_seconds=cpu_total,
            input_bytes=input_bytes,
            operators=tuple(records),
        )
        return JobResult(record=record, stage_latencies=tuple(stage_latencies))

    @staticmethod
    def feature_input(op: PhysicalOp, estimator: CardinalityEstimator) -> FeatureInput:
        """Compile-time features of ``op`` as the optimizer would see them."""
        return feature_input_for(op, estimator)

    def _stage_critical_path(
        self, plan: PhysicalOp, latencies: dict[int, float]
    ) -> tuple[list[float], float]:
        """Per-stage latency and end-to-end latency (critical path)."""
        graph = build_stage_graph(plan)
        stage_latency = [
            STAGE_STARTUP_SECONDS + sum(latencies[id(op)] for op in stage.operators)
            for stage in graph.stages
        ]
        finish: dict[int, float] = {}
        for stage in graph.topological_order():
            upstream_finish = max((finish[u] for u in stage.upstream), default=0.0)
            finish[stage.index] = upstream_finish + stage_latency[stage.index]
        return stage_latency, max(finish.values()) if finish else 0.0

    def expected_job_latency(self, plan: PhysicalOp) -> float:
        """Noise-free end-to-end latency: the oracle for plan comparisons."""
        bundles = compute_signature_bundles(plan)
        latencies = {
            id(op): self.ground_truth.exclusive_latency(
                op, rng=None, strict_sig=bundles[id(op)].strict
            )
            for op in plan.walk()
        }
        _, total = self._stage_critical_path(plan, latencies)
        return total

    def expected_cpu_seconds(self, plan: PhysicalOp) -> float:
        """Noise-free total processing time across all containers."""
        bundles = compute_signature_bundles(plan)
        total = 0.0
        for op in plan.walk():
            latency = self.ground_truth.exclusive_latency(
                op, rng=None, strict_sig=bundles[id(op)].strict
            )
            total += self.ground_truth.cpu_seconds(op, latency)
        return total
