"""Execution substrate: a SCOPE-like distributed execution simulator.

The simulator is the reproduction's stand-in for Microsoft's production
clusters.  It assigns every physical operator an *actual* exclusive latency
drawn from a hidden ground-truth model (see :mod:`repro.execution.ground_truth`)
whose structure matches what the paper reports about real systems: runtimes
depend on the operator's subgraph context, its inputs, black-box UDFs, the
partition count, and cloud variance — none of which the default cost model
can see, all of which are learnable per template.
"""

from repro.execution.ground_truth import GroundTruthModel, GroundTruthParams
from repro.execution.hardware import ClusterSpec
from repro.execution.runtime_log import JobRecord, OperatorRecord, RunLog
from repro.execution.simulator import ExecutionSimulator, JobResult

__all__ = [
    "ClusterSpec",
    "ExecutionSimulator",
    "GroundTruthModel",
    "GroundTruthParams",
    "JobRecord",
    "JobResult",
    "OperatorRecord",
    "RunLog",
]
