"""Run logs: the instrumentation data that feeds Cleo's training pipeline.

Big data systems are already instrumented to collect per-operator compile
time statistics and runtime traces (Section 5.1).  The simulator emits one
:class:`OperatorRecord` per executed operator — compile-time features (with
the optimizer's *estimated* statistics, exactly what a model can see at
prediction time), the four model signatures, and the actual exclusive
latency — plus one :class:`JobRecord` per job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.features.featurizer import FeatureInput
from repro.features.table import FeatureTable
from repro.plan.signatures import SignatureBundle


@dataclass(frozen=True, slots=True)
class OperatorRecord:
    """One executed operator instance: features, signatures, and outcome."""

    job_id: str
    cluster: str
    day: int
    op_type: str
    template_tag: str
    signatures: SignatureBundle
    features: FeatureInput
    actual_latency: float  # seconds, exclusive (the learning target)
    actual_output_card: float
    actual_input_card: float
    cpu_seconds: float
    is_adhoc: bool = False

    def __post_init__(self) -> None:
        if self.actual_latency < 0:
            raise ValueError("actual_latency must be >= 0")


@dataclass(frozen=True, slots=True)
class JobRecord:
    """One executed job: end-to-end outcome plus its operator records."""

    job_id: str
    template_id: str
    cluster: str
    day: int
    is_adhoc: bool
    latency_seconds: float
    cpu_seconds: float
    input_bytes: float
    operators: tuple[OperatorRecord, ...]

    @property
    def operator_count(self) -> int:
        return len(self.operators)

    @property
    def input_gib(self) -> float:
        return self.input_bytes / (1024.0**3)


@dataclass
class RunLog:
    """A collection of executed jobs, filterable by day/cluster/kind.

    This is the feedback loop's storage layer: train on ``log.filter(days=
    range(1, 3))``, test on ``log.filter(days=[3])``.
    """

    jobs: list[JobRecord] = field(default_factory=list)
    #: Cached columnar materialization; invalidated whenever jobs mutate.
    _table: FeatureTable | None = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Fingerprint of ``jobs`` at materialization time (staleness guard).
    _table_key: tuple = field(default=(), init=False, repr=False, compare=False)

    def append(self, job: JobRecord) -> None:
        self.jobs.append(job)
        self._table = None

    def extend(self, jobs: list[JobRecord]) -> None:
        self.jobs.extend(jobs)
        self._table = None

    @classmethod
    def from_columnar(cls, jobs: list[JobRecord], table: FeatureTable) -> "RunLog":
        """A log whose columnar table was built alongside its records.

        The batched execution engine produces operator rows directly in
        column form; adopting that table here makes the first ``to_table()``
        free instead of re-materializing from the records.  ``table`` must
        hold exactly the rows of ``jobs``'s operator records, in order.
        """
        log = cls(jobs=jobs)
        log._table = table
        log._table_key = log._jobs_fingerprint()
        return log

    def _jobs_fingerprint(self) -> tuple:
        return (
            len(self.jobs),
            self.operator_count,
            id(self.jobs[0]) if self.jobs else None,
            id(self.jobs[-1]) if self.jobs else None,
        )

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[JobRecord]:
        return iter(self.jobs)

    def filter(
        self,
        days: list[int] | range | None = None,
        clusters: list[str] | None = None,
        adhoc: bool | None = None,
    ) -> "RunLog":
        """A new log restricted to the given days/clusters/job kind."""
        day_set = set(days) if days is not None else None
        cluster_set = set(clusters) if clusters is not None else None
        selected = [
            job
            for job in self.jobs
            if (day_set is None or job.day in day_set)
            and (cluster_set is None or job.cluster in cluster_set)
            and (adhoc is None or job.is_adhoc == adhoc)
        ]
        return RunLog(jobs=selected)

    def operator_records(self) -> Iterator[OperatorRecord]:
        """All operator records across jobs, in execution order."""
        for job in self.jobs:
            yield from job.operators

    def to_table(self) -> FeatureTable:
        """Columnar view of every operator record (features, signatures,
        latencies, day, cluster), materialized once and cached.

        The cache is invalidated by :meth:`append` / :meth:`extend`;
        :meth:`filter` returns a fresh log with its own (lazy) table.
        Mutate jobs through those methods: direct surgery on the public
        ``jobs`` list is only caught heuristically (count and end-element
        fingerprint), so e.g. replacing an interior job with one of equal
        length would serve a stale table.
        """
        key = self._jobs_fingerprint()
        if self._table is None or self._table_key != key:
            self._table = FeatureTable.from_records(list(self.operator_records()))
            self._table_key = key
        return self._table

    @property
    def operator_count(self) -> int:
        return sum(len(job.operators) for job in self.jobs)

    @property
    def days(self) -> list[int]:
        return sorted({job.day for job in self.jobs})

    @property
    def clusters(self) -> list[str]:
        return sorted({job.cluster for job in self.jobs})
