"""Execution traces: per-stage timelines and critical-path analysis.

Production SCOPE exposes job execution graphs for debugging; this module
provides the simulator-side equivalent.  A :class:`JobTrace` records when
each stage starts and finishes under the critical-path schedule, which
stages are on the critical path, and where the job's time goes — the view
an engineer uses to understand why a Cleo plan beat (or lost to) the default
plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.execution.simulator import STAGE_STARTUP_SECONDS, ExecutionSimulator
from repro.plan.physical import PhysicalOp
from repro.plan.signatures import compute_signature_bundles
from repro.plan.stages import build_stage_graph


@dataclass(frozen=True)
class StageTrace:
    """Timeline entry for one stage."""

    index: int
    partition_count: int
    operator_types: tuple[str, ...]
    start_seconds: float
    finish_seconds: float
    on_critical_path: bool

    @property
    def duration(self) -> float:
        return self.finish_seconds - self.start_seconds


@dataclass(frozen=True)
class JobTrace:
    """Full execution timeline of one simulated job."""

    stages: tuple[StageTrace, ...]
    total_latency: float

    @property
    def critical_path(self) -> tuple[StageTrace, ...]:
        return tuple(s for s in self.stages if s.on_critical_path)

    @property
    def critical_path_fraction(self) -> float:
        """Share of summed stage time that sits on the critical path."""
        total = sum(s.duration for s in self.stages)
        if total <= 0:
            return 1.0
        return sum(s.duration for s in self.critical_path) / total

    def bottleneck(self) -> StageTrace:
        """The longest stage on the critical path."""
        return max(self.critical_path, key=lambda s: s.duration)

    def describe(self) -> str:
        lines = [f"job latency: {self.total_latency:.1f}s over {len(self.stages)} stages"]
        for stage in sorted(self.stages, key=lambda s: s.start_seconds):
            marker = "*" if stage.on_critical_path else " "
            ops = ",".join(stage.operator_types)
            lines.append(
                f" {marker} stage {stage.index:>2} "
                f"[{stage.start_seconds:8.1f} -> {stage.finish_seconds:8.1f}] "
                f"P={stage.partition_count:<5} {ops}"
            )
        lines.append("(* = on the critical path)")
        return "\n".join(lines)


def trace_job(simulator: ExecutionSimulator, plan: PhysicalOp) -> JobTrace:
    """Noise-free execution timeline of ``plan`` on ``simulator``.

    Stages start as soon as all upstream stages finish (infinite concurrent
    stage slots — SCOPE schedules independent stages in parallel); the
    critical path is recovered by backtracking from the final stage.
    """
    graph = build_stage_graph(plan)
    bundles = compute_signature_bundles(plan)
    durations: dict[int, float] = {}
    for stage in graph.stages:
        durations[stage.index] = STAGE_STARTUP_SECONDS + sum(
            simulator.ground_truth.exclusive_latency(
                op, rng=None, strict_sig=bundles[id(op)].strict
            )
            for op in stage.operators
        )

    start: dict[int, float] = {}
    finish: dict[int, float] = {}
    for stage in graph.topological_order():
        start[stage.index] = max((finish[u] for u in stage.upstream), default=0.0)
        finish[stage.index] = start[stage.index] + durations[stage.index]

    # Backtrack the critical path from the stage that finishes last.
    critical: set[int] = set()
    current = max(finish, key=lambda idx: finish[idx])
    while True:
        critical.add(current)
        upstream = graph.stages[current].upstream
        if not upstream:
            break
        current = max(upstream, key=lambda idx: finish[idx])

    stages = tuple(
        StageTrace(
            index=stage.index,
            partition_count=stage.partition_count,
            operator_types=tuple(op.op_type.value for op in stage.operators),
            start_seconds=start[stage.index],
            finish_seconds=finish[stage.index],
            on_critical_path=stage.index in critical,
        )
        for stage in graph.stages
    )
    return JobTrace(stages=stages, total_latency=max(finish.values()))


def compare_traces(before: JobTrace, after: JobTrace) -> str:
    """Human-readable latency diff between two plans' traces."""
    delta = before.total_latency - after.total_latency
    pct = 100.0 * delta / before.total_latency if before.total_latency else 0.0
    lines = [
        f"latency: {before.total_latency:.1f}s -> {after.total_latency:.1f}s "
        f"({pct:+.1f}%)",
        f"stages: {len(before.stages)} -> {len(after.stages)}",
        f"critical-path stages: {len(before.critical_path)} -> {len(after.critical_path)}",
        (
            "bottleneck before: "
            f"{','.join(before.bottleneck().operator_types)} "
            f"({before.bottleneck().duration:.1f}s, P={before.bottleneck().partition_count})"
        ),
        (
            "bottleneck after:  "
            f"{','.join(after.bottleneck().operator_types)} "
            f"({after.bottleneck().duration:.1f}s, P={after.bottleneck().partition_count})"
        ),
    ]
    return "\n".join(lines)
