"""The hidden ground-truth latency model.

This module answers "how long does an operator *actually* take?" and is the
reproduction's substitute for real SCOPE clusters.  Its structure encodes the
paper's empirical findings about why cost modeling is hard in big data
systems (Sections 1-3):

1. **Template-conditional behaviour.**  The latency of an operator depends on
   what runs beneath it (pipelining, sorting/grouping properties) and on the
   input data it touches.  We model this with deterministic log-normal
   multipliers drawn from template signatures at four granularities:

   * ``m_op`` — per physical operator type (coarse calibration wiggle);
   * ``m_input`` — per (operator, normalized input set): data-specific
     effects such as skew, value widths, compression;
   * ``m_ctx`` — per (operator, child operator types): pipelining and
     property interactions ("a hash over a filter is cheaper than over a
     sort");
   * ``m_res`` — residual per exact subgraph template.

   The granularities nest exactly like Cleo's model hierarchy, which is why
   the operator model can only learn ``m_op``, the operator-input model
   ``m_op*m_input``, and the subgraph model everything — producing the
   paper's accuracy ordering as an emergent property, not by fiat.

2. **Black-box UDFs.**  Process operators get an extra per-UDF factor with a
   wide spread; the default cost model treats them as ordinary compute.

3. **Resource dependence.**  Work scales as ``1/P`` (parallelism), but each
   partition adds scheduling/setup overhead (``+ setup*P``) and stragglers
   worsen with fan-out (a ``skew(P)`` multiplier) — giving every stage a
   true optimal partition count that resource-aware planning can find
   (Section 5.2).

4. **Cloud variance.**  Per-execution log-normal noise plus rare large
   outliers (machine failures, stragglers), motivating the MSLE loss.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.common.hashing import stable_hash, stable_unit_float
from repro.execution.hardware import ClusterSpec
from repro.plan.physical import PhysOpType, PhysicalOp
from repro.plan.signatures import strict_signature


@dataclass(frozen=True)
class OpCoefficients:
    """Per-row work coefficients (seconds) of one physical operator type.

    ``cpu`` multiplies input rows, ``io`` input bytes, ``out`` output rows,
    ``setup`` the partition count, and ``nlogn`` enables sort-like scaling.
    """

    cpu: float = 0.0
    io: float = 0.0
    out: float = 0.0
    setup: float = 0.0
    nlogn: bool = False


# Baseline per-row costs.  Units are seconds per row / per byte; magnitudes
# chosen so realistic inputs (1e6..1e9 rows over tens-to-hundreds of
# partitions) yield operator latencies from seconds to tens of minutes,
# matching Figure 2's job latency range.
GROUND_TRUTH_COEFFICIENTS: dict[PhysOpType, OpCoefficients] = {
    PhysOpType.EXTRACT: OpCoefficients(cpu=4.0e-7, io=8.0e-9, setup=0.06),
    PhysOpType.FILTER: OpCoefficients(cpu=6.0e-7, setup=0.005),
    PhysOpType.COMPUTE: OpCoefficients(cpu=8.0e-7, setup=0.005),
    PhysOpType.PROCESS: OpCoefficients(cpu=2.5e-6, setup=0.01),
    PhysOpType.HASH_JOIN: OpCoefficients(cpu=3.2e-6, out=8.0e-7, setup=0.015),
    PhysOpType.MERGE_JOIN: OpCoefficients(cpu=1.2e-6, out=8.0e-7, setup=0.01),
    PhysOpType.HASH_AGGREGATE: OpCoefficients(cpu=2.8e-6, out=1.0e-6, setup=0.015),
    PhysOpType.STREAM_AGGREGATE: OpCoefficients(cpu=9.0e-7, out=1.0e-6, setup=0.005),
    PhysOpType.LOCAL_AGGREGATE: OpCoefficients(cpu=2.0e-6, out=1.0e-6, setup=0.01),
    PhysOpType.SORT: OpCoefficients(cpu=1.8e-7, setup=0.01, nlogn=True),
    PhysOpType.TOP_K: OpCoefficients(cpu=1.0e-6, setup=0.005),
    PhysOpType.EXCHANGE: OpCoefficients(cpu=4.0e-7, io=1.8e-8, setup=0.12),
    PhysOpType.UNION_ALL: OpCoefficients(cpu=1.6e-7, setup=0.005),
    PhysOpType.OUTPUT: OpCoefficients(cpu=3.0e-7, io=1.2e-8, setup=0.04),
}


@dataclass(frozen=True)
class GroundTruthParams:
    """Spread (log-space sigma) of the hidden multipliers and noise shape.

    The four sigmas control how much accuracy each model family can reach:
    larger ``sigma_input``/``sigma_ctx`` widen the gap between the operator
    model and the specialized models.
    """

    sigma_op: float = 0.15
    sigma_input: float = 0.55
    sigma_ctx: float = 0.28
    sigma_residual: float = 0.20
    sigma_udf: float = 0.70
    skew_base: float = 0.06  # skew(P) = 1 + skew_base * u_skew * ln(1+P)
    min_latency: float = 0.05  # floor, seconds
    seed_salt: str = "ground-truth-v1"
    coefficients: dict[PhysOpType, OpCoefficients] = field(
        default_factory=lambda: dict(GROUND_TRUTH_COEFFICIENTS)
    )


class GroundTruthModel:
    """Computes actual exclusive latencies and CPU-time for physical operators.

    Deterministic given (params, cluster, operator template, partition count)
    up to the explicit per-execution noise, which is drawn from a caller-
    provided RNG so whole workloads replay identically under one seed.
    """

    def __init__(self, cluster: ClusterSpec, params: GroundTruthParams | None = None) -> None:
        self.cluster = cluster
        self.params = params or GroundTruthParams()
        self._multiplier_cache: dict[tuple[int, str], float] = {}
        self._skew_u_cache: dict[frozenset[str], float] = {}
        self._log1p_cache: dict[int, float] = {}

    # ------------------------------------------------------------------ #
    # Hidden multipliers
    # ------------------------------------------------------------------ #

    def _lognormal(self, sigma: float, *key: object) -> float:
        """Deterministic log-normal draw keyed by template identity."""
        if sigma <= 0.0:
            return 1.0
        u = stable_unit_float(self.params.seed_salt, *key)
        # Box-Muller needs two uniforms; derive the second from the first key.
        v = stable_unit_float(self.params.seed_salt, "v", *key)
        u = min(max(u, 1e-12), 1 - 1e-12)
        z = math.sqrt(-2.0 * math.log(u)) * math.cos(2.0 * math.pi * v)
        return math.exp(sigma * z)

    def hidden_multiplier(self, op: PhysicalOp, strict_sig: int | None = None) -> float:
        """Combined template multiplier ``m_op * m_input * m_ctx * m_res``.

        ``strict_sig`` may be precomputed by the caller (the simulator does
        one bottom-up signature pass per plan) to avoid re-hashing subtrees.
        """
        sig = strict_signature(op) if strict_sig is None else strict_sig
        # The cluster name is constant per model instance, so (sig, op_type)
        # identifies the template; a plain tuple key avoids re-hashing on the
        # per-operator hot path.
        cache_key = (sig, op.op_type.value)
        cached = self._multiplier_cache.get(cache_key)
        if cached is not None:
            return cached
        p = self.params
        m = self._lognormal(p.sigma_op, "op", self.cluster.name, op.op_type.value)
        m *= self._lognormal(
            p.sigma_input,
            "input",
            self.cluster.name,
            op.op_type.value,
            frozenset(op.normalized_inputs),
        )
        m *= self._lognormal(p.sigma_ctx, "ctx", op.op_type.value, op.child_context())
        m *= self._lognormal(p.sigma_residual, "res", self.cluster.name, sig)
        if op.op_type is PhysOpType.PROCESS and op.logical is not None:
            m *= self._lognormal(p.sigma_udf, "udf", op.logical.udf_name)
        # Blocking children stall the pipeline: a deterministic penalty on
        # top of the random context factor.
        if any(child.is_blocking for child in op.children):
            m *= 1.15
        self._multiplier_cache[cache_key] = m
        return m

    def skew_factor(self, op: PhysicalOp) -> float:
        """Straggler multiplier: the slowest of P partitions sets the pace."""
        u_skew = self.skew_unit(frozenset(op.normalized_inputs))
        return 1.0 + self.params.skew_base * u_skew * self.log1p_partitions(
            op.partition_count
        )

    def skew_unit(self, normalized_inputs: frozenset[str]) -> float:
        """The cached per-input-set uniform behind :meth:`skew_factor`."""
        cached = self._skew_u_cache.get(normalized_inputs)
        if cached is None:
            cached = stable_unit_float(self.params.seed_salt, "skew", normalized_inputs)
            self._skew_u_cache[normalized_inputs] = cached
        return cached

    def log1p_partitions(self, partition_count: int) -> float:
        """``log1p`` over the few distinct partition counts, cached.

        Cached so the batched path can gather ``log1p(P)`` arrays from the
        exact same ``math.log1p`` values the scalar path uses (numpy's
        ``np.log1p`` is not guaranteed bit-identical to libm's).
        """
        cached = self._log1p_cache.get(partition_count)
        if cached is None:
            cached = math.log1p(partition_count)
            self._log1p_cache[partition_count] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Work functions
    # ------------------------------------------------------------------ #

    #: Hash join hashes its build side (the right child) into memory; building
    #: costs ~3x probing per row, which makes build-side choice (join
    #: commutativity) a real optimization decision.
    HASH_BUILD_FACTOR = 3.0

    def work_per_partition(self, op: PhysicalOp) -> float:
        """Noise-free per-partition work (seconds), before multipliers."""
        coef = self.params.coefficients[op.op_type]
        partitions = float(op.partition_count)
        rows_out = op.true_card / partitions
        if op.op_type is PhysOpType.HASH_JOIN:
            probe = op.children[0].true_card / partitions
            build = op.children[1].true_card / partitions
            effective_rows_in = probe + self.HASH_BUILD_FACTOR * build
        else:
            effective_rows_in = op.input_card / partitions
        rows_in = op.input_card / partitions
        bytes_in = rows_in * (
            op.children[0].row_bytes if op.children else op.row_bytes
        )
        work = coef.io * bytes_in + coef.out * rows_out
        if coef.nlogn:
            work += coef.cpu * rows_in * math.log2(rows_in + 2.0)
        else:
            work += coef.cpu * effective_rows_in
        return work

    def exclusive_latency(
        self,
        op: PhysicalOp,
        rng: np.random.Generator | None = None,
        strict_sig: int | None = None,
    ) -> float:
        """Actual exclusive latency of ``op`` in seconds.

        ``latency = m * (work/P * skew(P) + setup * P) * noise / speed``.
        With ``rng=None`` the expected (noise-free) latency is returned —
        used by tests and by the partition-exploration oracle.
        """
        coef = self.params.coefficients[op.op_type]
        base = self.work_per_partition(op) * self.skew_factor(op)
        base += coef.setup * float(op.partition_count)
        latency = (
            self.hidden_multiplier(op, strict_sig=strict_sig) * base / self.cluster.speed_factor
        )
        if rng is not None:
            latency *= self._noise(rng)
        return max(latency, self.params.min_latency)

    def cpu_seconds(self, op: PhysicalOp, latency: float) -> float:
        """Total compute-time across partitions attributed to ``op``.

        Approximated as the per-partition latency times the partition count;
        stragglers inflate wall-clock more than aggregate CPU, so the skew
        factor is removed again.
        """
        return latency * op.partition_count / self.skew_factor(op)

    def _noise(self, rng: np.random.Generator) -> float:
        noise = float(np.exp(rng.normal(0.0, self.cluster.noise_sigma)))
        if rng.random() < self.cluster.outlier_probability:
            noise *= float(
                rng.uniform(self.cluster.outlier_slowdown_min, self.cluster.outlier_slowdown_max)
            )
        return noise
