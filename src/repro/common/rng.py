"""Seeded random-number-generator plumbing.

All stochastic components (workload generation, simulator noise, ML
subsampling) draw from :class:`numpy.random.Generator` instances derived from
a single root seed, so a full experiment is reproducible end to end.  Child
generators are derived by *name* rather than by call order, which keeps
results stable when unrelated code adds or removes draws.
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import stable_hash


def derive_rng(seed: int, *names: object) -> np.random.Generator:
    """Create a generator deterministically derived from ``seed`` and names."""
    return np.random.default_rng(stable_hash("rng", seed, *names) & ((1 << 63) - 1))


class RngFactory:
    """Hands out named child generators derived from one root seed.

    Example::

        rngs = RngFactory(seed=7)
        noise_rng = rngs.child("simulator", "noise")
        size_rng = rngs.child("workload", "cluster1", "sizes")
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)

    def child(self, *names: object) -> np.random.Generator:
        """Return a generator unique to ``names`` under this factory's seed."""
        return derive_rng(self.seed, *names)

    def lognormal(self, sigma: float, *names: object) -> float:
        """One deterministic log-normal draw (mean of the log is 0)."""
        return float(np.exp(self.child(*names).normal(0.0, sigma)))

    def spawn(self, *names: object) -> "RngFactory":
        """Derive a child factory, for handing a subsystem its own seed tree."""
        return RngFactory(stable_hash("factory", self.seed, *names) & ((1 << 63) - 1))
