"""Deterministic chaos for the training and lifecycle pipeline.

PR 8's :mod:`repro.serving.faults` made *serving* failures injectable and
bitwise-replayable; this module extends the same substrate to the other
half of the paper's production loop (Section 6): the ingestion and
retraining path.  Two fault families:

* **Poisoned run logs** — :class:`RunLogPoisoner` rewrites a
  :class:`~repro.execution.runtime_log.RunLog` with the corruptions a real
  telemetry pipeline produces: NaN latencies (a lost counter), absurd
  outlier latencies (a unit bug or stuck clock), double-appended rows (an
  at-least-once writer retrying), and dropped rows.  The trainer's
  sanitization gate must detect and excise these (see
  :meth:`repro.features.table.FeatureTable.sanitize_mask`).
* **Mid-pipeline crashes** — :class:`PipelineChaos` raises
  :class:`~repro.common.errors.InjectedCrashError` at named lifecycle
  points ("retrain_start", "pre_publish", "post_publish"), modeling a
  process death mid-retrain; :class:`~repro.core.lifecycle.
  LifecycleManager` must recover from durable state without ever exposing
  a half-published version.

Every decision is a pure function of ``(policy seed, day, job id, row
index)`` or ``(policy seed, point, day)`` through
:func:`repro.common.hashing.stable_unit_float` — no RNG, no wall clock, no
per-process hash salt — so a chaos run is a regression test, not a dice
roll, and replays bitwise across processes and ``PYTHONHASHSEED``s.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dataclass_replace
from threading import Lock

from repro.common.errors import InjectedCrashError, ValidationError
from repro.common.hashing import stable_unit_float
from repro.execution.runtime_log import JobRecord, OperatorRecord, RunLog

#: Salt prefixes so pipeline-chaos draws never collide with serving faults.
_POISON_SALT = "cleo-chaos-poison"
_CRASH_SALT = "cleo-chaos-crash"

#: The poison kinds, in band-carving order (see PoisonPolicy).
POISON_KINDS: tuple[str, ...] = ("nan", "outlier", "duplicate", "drop")

#: Lifecycle points where a crash can be injected, in step order.
CRASH_POINTS: tuple[str, ...] = ("retrain_start", "pre_publish", "post_publish")


@dataclass(frozen=True)
class PoisonPolicy:
    """One reproducible run-log corruption mix.

    Rates are per operator row and mutually exclusive: a single unit draw
    is carved into ``nan`` / ``outlier`` / ``duplicate`` / ``drop`` bands,
    so they must sum to at most 1.  ``days`` limits the blast radius to the
    listed days (``None`` poisons every day); ``seed`` re-keys every draw.
    ``outlier_factor`` must push latencies beyond the serving layer's
    physical clamp (1e7 s) for typical workloads, or the outlier is
    indistinguishable from a legitimately slow operator.
    """

    name: str = "clean"
    nan_rate: float = 0.0
    outlier_rate: float = 0.0
    duplicate_rate: float = 0.0
    drop_rate: float = 0.0
    outlier_factor: float = 1e9
    days: tuple[int, ...] | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        for field_name in ("nan_rate", "outlier_rate", "duplicate_rate", "drop_rate"):
            rate = getattr(self, field_name)
            if not 0.0 <= rate <= 1.0:
                raise ValidationError(f"{field_name} must be in [0, 1], got {rate}")
        if self.total_rate > 1.0 + 1e-12:
            raise ValidationError("poison rates must sum to at most 1")
        if self.outlier_factor <= 1.0:
            raise ValidationError("outlier_factor must exceed 1.0")

    @property
    def total_rate(self) -> float:
        return self.nan_rate + self.outlier_rate + self.duplicate_rate + self.drop_rate

    @property
    def is_noop(self) -> bool:
        return self.total_rate == 0.0

    def describe(self) -> str:
        parts = [
            f"{kind}={rate:.0%}"
            for kind, rate in (
                ("nan", self.nan_rate),
                ("outlier", self.outlier_rate),
                ("duplicate", self.duplicate_rate),
                ("drop", self.drop_rate),
            )
            if rate > 0.0
        ]
        where = "all days" if self.days is None else f"days {list(self.days)}"
        return f"PoisonPolicy({self.name}: {', '.join(parts) or 'none'} on {where})"


#: Named poison scenarios the pipeline-chaos benchmark replays.
POISON_SCENARIOS: dict[str, PoisonPolicy] = {
    policy.name: policy
    for policy in (
        PoisonPolicy(name="clean"),
        PoisonPolicy(
            name="poisoned_runlog",
            nan_rate=0.08,
            outlier_rate=0.05,
            duplicate_rate=0.05,
            drop_rate=0.03,
        ),
        PoisonPolicy(name="nan_storm", nan_rate=0.25),
        PoisonPolicy(name="duplicate_writer", duplicate_rate=0.20),
    )
}


class RunLogPoisoner:
    """Applies a :class:`PoisonPolicy` to a run log, row by row.

    The poisoned log is a *new* :class:`RunLog` (records are frozen; the
    input log is never mutated): NaN and outlier rows replace the record's
    ``actual_latency``, duplicate rows append an exact copy immediately
    after the original (the at-least-once double-write shape — adjacency
    is what the trainer's excision rule keys on), and dropped rows are
    omitted.  Job-level records keep their original summary fields; the
    corruption models the operator-row telemetry channel.
    """

    def __init__(self, policy: PoisonPolicy) -> None:
        self.policy = policy

    def decide(self, day: int, job_id: str, op_index: int) -> str | None:
        """The poison kind (if any) for one operator row — a pure function."""
        policy = self.policy
        if policy.is_noop:
            return None
        if policy.days is not None and day not in policy.days:
            return None
        draw = stable_unit_float(_POISON_SALT, policy.seed, day, job_id, op_index)
        edge = 0.0
        for kind, rate in zip(
            POISON_KINDS,
            (
                policy.nan_rate,
                policy.outlier_rate,
                policy.duplicate_rate,
                policy.drop_rate,
            ),
        ):
            edge += rate
            if draw < edge:
                return kind
        return None

    def poison(self, log: RunLog) -> tuple[RunLog, dict[str, int]]:
        """A poisoned copy of ``log`` plus per-kind injection counts."""
        counts = {kind: 0 for kind in POISON_KINDS}
        jobs: list[JobRecord] = []
        for job in log.jobs:
            operators: list[OperatorRecord] = []
            for op_index, record in enumerate(job.operators):
                kind = self.decide(job.day, job.job_id, op_index)
                if kind is None:
                    operators.append(record)
                    continue
                counts[kind] += 1
                if kind == "nan":
                    operators.append(
                        dataclass_replace(record, actual_latency=float("nan"))
                    )
                elif kind == "outlier":
                    operators.append(
                        dataclass_replace(
                            record,
                            actual_latency=record.actual_latency
                            * self.policy.outlier_factor,
                        )
                    )
                elif kind == "duplicate":
                    operators.append(record)
                    operators.append(record)
                else:  # drop
                    pass
            jobs.append(dataclass_replace(job, operators=tuple(operators)))
        counts["total"] = sum(counts.values())
        return RunLog(jobs=jobs), counts

    def describe(self) -> str:
        return f"RunLogPoisoner({self.policy.describe()})"


@dataclass(frozen=True)
class CrashPolicy:
    """Where and when the lifecycle pipeline crashes.

    ``points`` names the :data:`CRASH_POINTS` that may fire; ``days``
    limits to the listed days (``None`` means any day); ``rate`` is the
    per-``(point, day)`` crash probability (1.0 crashes deterministically
    on the first visit).
    """

    name: str = "none"
    points: tuple[str, ...] = ()
    days: tuple[int, ...] | None = None
    rate: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        unknown = [p for p in self.points if p not in CRASH_POINTS]
        if unknown:
            raise ValidationError(
                f"unknown crash points {unknown}; have {list(CRASH_POINTS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValidationError(f"rate must be in [0, 1], got {self.rate}")

    def describe(self) -> str:
        where = "any day" if self.days is None else f"days {list(self.days)}"
        return (
            f"CrashPolicy({self.name}: {list(self.points) or 'nowhere'} "
            f"at {self.rate:.0%} on {where})"
        )


class PipelineChaos:
    """Deterministic crash injection for lifecycle steps.

    ``check(point, day)`` raises :class:`InjectedCrashError` exactly once
    per ``(point, day)`` the policy selects: the first visit crashes (the
    process dies mid-step), and a later visit — the restarted process
    retrying the same day from durable state — succeeds, the way a
    transient OOM or node loss behaves.  ``decide`` stays pure so replays
    are content-keyed; only the crash-once memory is stateful.
    """

    def __init__(self, policy: CrashPolicy) -> None:
        self.policy = policy
        self._lock = Lock()
        self._fired: set[tuple[str, int]] = set()

    def decide(self, point: str, day: int) -> bool:
        """Whether this (point, day) is crash-selected — a pure function."""
        policy = self.policy
        if point not in policy.points:
            return False
        if policy.days is not None and day not in policy.days:
            return False
        if policy.rate >= 1.0:
            return True
        return (
            stable_unit_float(_CRASH_SALT, policy.seed, point, day) < policy.rate
        )

    def check(self, point: str, day: int) -> None:
        """Crash here once, if the policy selects this (point, day)."""
        if not self.decide(point, day):
            return
        with self._lock:
            if (point, day) in self._fired:
                return
            self._fired.add((point, day))
        raise InjectedCrashError(
            f"injected crash at {point!r} on day {day}"
        )

    def stats(self) -> dict[str, int]:
        """Crashes fired so far, keyed ``point@day``, plus a total."""
        with self._lock:
            fired = sorted(self._fired)
        counts: dict[str, int] = {f"{point}@{day}": 1 for point, day in fired}
        counts["total"] = len(fired)
        return counts

    def describe(self) -> str:
        return f"PipelineChaos({self.policy.describe()})"
