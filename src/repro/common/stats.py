"""Statistics helpers shared by the evaluation harness and the paper figures.

The paper reports three families of numbers, all implemented here:

* **Pearson correlation** between predicted cost and actual runtime;
* **median / 95th-percentile error** of predictions, in percent, defined as
  ``|predicted - actual| / actual * 100`` (the relative-error convention used
  throughout the paper's tables);
* **CDFs of the estimated/actual ratio** (Figures 1, 11-13, 15), where the
  ideal curve is a step at ratio 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_EPS = 1e-12


def pearson(x: np.ndarray | list[float], y: np.ndarray | list[float]) -> float:
    """Pearson correlation coefficient; 0.0 when either side is constant."""
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.size != ya.size:
        raise ValueError(f"length mismatch: {xa.size} vs {ya.size}")
    if xa.size < 2:
        return 0.0
    xd = xa - xa.mean()
    yd = ya - ya.mean()
    denom = float(np.sqrt((xd * xd).sum() * (yd * yd).sum()))
    if denom < _EPS:
        return 0.0
    return float((xd * yd).sum() / denom)


def error_ratio(predicted: np.ndarray, actual: np.ndarray) -> np.ndarray:
    """Per-sample ratio ``predicted / actual``, guarding against zero actuals."""
    predicted = np.asarray(predicted, dtype=float)
    actual = np.asarray(actual, dtype=float)
    return (predicted + _EPS) / (actual + _EPS)


def relative_error_pct(predicted: np.ndarray, actual: np.ndarray) -> np.ndarray:
    """Per-sample relative error ``|p - a| / a`` in percent."""
    predicted = np.asarray(predicted, dtype=float)
    actual = np.asarray(actual, dtype=float)
    return np.abs(predicted - actual) / (np.abs(actual) + _EPS) * 100.0


def median_error_pct(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Median relative error in percent (the paper's "median error")."""
    errors = relative_error_pct(predicted, actual)
    if errors.size == 0:
        return float("nan")
    return float(np.median(errors))


def percentile_error_pct(predicted: np.ndarray, actual: np.ndarray, q: float) -> float:
    """q-th percentile of relative error in percent (e.g. q=95)."""
    errors = relative_error_pct(predicted, actual)
    if errors.size == 0:
        return float("nan")
    return float(np.percentile(errors, q))


def percentile(values: np.ndarray | list[float], q: float) -> float:
    """Plain percentile with NaN for empty input."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return float("nan")
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class Cdf:
    """Empirical CDF of a sample, evaluated on a fixed grid.

    Attributes:
        grid: x-axis values (sorted ascending).
        fractions: fraction of samples ``<= grid[i]``.
    """

    grid: tuple[float, ...]
    fractions: tuple[float, ...]

    @classmethod
    def of(cls, values: np.ndarray | list[float], grid: np.ndarray | None = None) -> "Cdf":
        """Build a CDF; by default the grid is log-spaced from 1e-3 to 1e3.

        That default matches the x-axis of the paper's estimated/actual ratio
        plots (Figures 1 and 11-13).
        """
        arr = np.sort(np.asarray(values, dtype=float))
        if grid is None:
            grid = np.logspace(-3, 3, 61)
        grid = np.asarray(grid, dtype=float)
        if arr.size == 0:
            fractions = np.zeros_like(grid)
        else:
            fractions = np.searchsorted(arr, grid, side="right") / arr.size
        return cls(tuple(float(g) for g in grid), tuple(float(f) for f in fractions))

    def at(self, x: float) -> float:
        """Fraction of samples <= x (interpolated on the grid)."""
        return float(np.interp(x, self.grid, self.fractions))

    def central_mass(self, low: float = 0.5, high: float = 2.0) -> float:
        """Fraction of samples whose ratio lies within [low, high].

        A scalar summary of "how close to the ideal vertical line" a ratio
        CDF is; used by tests to compare models without plotting.
        """
        return self.at(high) - self.at(low)


def geometric_partition_samples(max_value: int, skip_coefficient: float) -> list[int]:
    """The paper's geometric partition-count sampler (Section 5.3).

    Samples follow ``x_{i+1} = ceil(x_i + x_i / s)`` with ``x_0 = 1`` and
    ``x_1 = 2``; a larger ``s`` yields a denser (more expensive) sweep.
    """
    if max_value < 1:
        raise ValueError("max_value must be >= 1")
    if skip_coefficient <= 0:
        raise ValueError("skip_coefficient must be positive")
    samples = [1]
    if max_value >= 2:
        samples.append(2)
    while samples[-1] < max_value:
        nxt = int(np.ceil(samples[-1] + samples[-1] / skip_coefficient))
        if nxt <= samples[-1]:
            nxt = samples[-1] + 1
        samples.append(min(nxt, max_value))
        if samples[-1] == max_value:
            break
    return samples


def summarize_ratio_quality(predicted: np.ndarray, actual: np.ndarray) -> dict[str, float]:
    """Bundle of the paper's headline metrics for one prediction series."""
    return {
        "pearson": pearson(predicted, actual),
        "median_error_pct": median_error_pct(predicted, actual),
        "p95_error_pct": percentile_error_pct(predicted, actual, 95.0),
        "central_mass": Cdf.of(error_ratio(predicted, actual)).central_mass(),
    }
