"""Stable 64-bit hashing used for operator signatures and seeded draws.

SCOPE annotates every operator with a 64-bit signature computed recursively
over the plan (Section 5.1 of the paper).  We reproduce that with blake2b,
which is stable across processes and Python versions (unlike the built-in
``hash``, which is salted per process).
"""

from __future__ import annotations

import hashlib
import struct
from collections.abc import Iterable

_MASK64 = (1 << 64) - 1


def stable_hash(*parts: object) -> int:
    """Return a stable 64-bit hash of the string forms of ``parts``.

    Parts are joined with an unlikely separator so that ``("ab", "c")`` and
    ``("a", "bc")`` hash differently.
    """
    try:
        # Fast path: all-string parts (the overwhelmingly common case).
        payload = "\x1f".join(parts).encode("utf-8")
    except TypeError:
        payload = "\x1f".join(_canonical(p) for p in parts).encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return struct.unpack("<Q", digest)[0]


def _canonical(part: object) -> str:
    """Canonical string form used inside :func:`stable_hash`."""
    if isinstance(part, float) and part.is_integer():
        return str(int(part))
    if isinstance(part, frozenset):
        return "{" + ",".join(sorted(_canonical(p) for p in part)) + "}"
    if isinstance(part, (tuple, list)):
        return "[" + ",".join(_canonical(p) for p in part) + "]"
    return str(part)


def combine_hashes(values: Iterable[int]) -> int:
    """Order-sensitively combine 64-bit hashes into one.

    Uses the classic boost-style mix so children order matters, mirroring how
    SCOPE combines child signatures bottom-up.
    """
    acc = 0xCBF29CE484222325
    for value in values:
        acc ^= (value + 0x9E3779B97F4A7C15 + ((acc << 6) & _MASK64) + (acc >> 2)) & _MASK64
        acc &= _MASK64
    return acc


def combine_hashes_unordered(values: Iterable[int]) -> int:
    """Combine hashes so that the result is independent of input order.

    Used by the *approximate* subgraph signature, which deliberately ignores
    operator ordering (Section 4.2).
    """
    total = 0
    xor = 0
    count = 0
    for value in values:
        total = (total + value) & _MASK64
        xor ^= value
        count += 1
    return stable_hash("unordered", total, xor, count)


def stable_unit_float(*parts: object) -> float:
    """Deterministically map ``parts`` to a float in ``[0, 1)``.

    Used wherever the simulator needs a persistent per-template draw (for
    example the hidden latency multiplier of a subgraph template).
    """
    return stable_hash(*parts) / float(1 << 64)
