"""Exception hierarchy for the reproduction library.

Every error raised by the library derives from :class:`CleoError`, so callers
can catch one type at an API boundary without masking unrelated bugs.
"""


class CleoError(Exception):
    """Base class for all errors raised by this library."""


class InvalidPlanError(CleoError):
    """A query plan is structurally invalid (bad arity, missing child, ...)."""


class ModelNotTrainedError(CleoError):
    """A prediction was requested from a model that has not been fitted."""


class OptimizationError(CleoError):
    """The optimizer could not produce a physical plan for a logical plan."""


class WorkloadError(CleoError):
    """Workload generation was configured inconsistently."""


class SimulationError(CleoError):
    """The execution simulator was asked to run an unrunnable plan."""


class ValidationError(CleoError):
    """An application-level API was called with inconsistent arguments."""


class FeatureValidationError(ValidationError, ValueError):
    """A serving request carried unusable inputs (NaN/inf features,
    misaligned sequences, missing signature columns).

    Also a ``ValueError`` so pre-existing callers that guarded the serving
    entry points with ``except ValueError`` keep working.
    """


class DataQualityError(ValidationError):
    """A training input was rejected by the data-quality gate.

    Raised when sanitization of a run-log table (NaN/absurd latencies,
    non-finite features, double-appended rows) leaves nothing to train on —
    the typed signal that a poisoned ingestion day needs operator
    attention, as opposed to silently fitting models to garbage.
    """


class InjectedCrashError(CleoError):
    """A deterministic mid-pipeline crash produced by chaos injection.

    Models a process death (OOM kill, node loss) at a chosen pipeline
    point; recovery code must treat it as fatal to the in-memory state and
    resume from durable state only.
    """


class ShardError(CleoError):
    """A serving shard failed to answer (raised, timed out, or returned
    corrupt predictions).  ``shard`` names the failing shard when known."""

    def __init__(self, message: str, shard: "int | None" = None) -> None:
        super().__init__(message)
        self.shard = shard


class ShardTimeoutError(ShardError):
    """A serving shard exceeded its deadline."""
