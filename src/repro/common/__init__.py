"""Shared infrastructure: hashing, seeded randomness, and statistics.

These utilities are deliberately dependency-light (numpy only) and fully
deterministic so that every experiment in the reproduction can be re-run
bit-for-bit from a seed.
"""

from repro.common.errors import (
    CleoError,
    InvalidPlanError,
    ModelNotTrainedError,
    OptimizationError,
)
from repro.common.hashing import combine_hashes, stable_hash, stable_unit_float
from repro.common.rng import RngFactory, derive_rng
from repro.common.stats import (
    Cdf,
    error_ratio,
    geometric_partition_samples,
    median_error_pct,
    pearson,
    percentile,
)

__all__ = [
    "Cdf",
    "CleoError",
    "InvalidPlanError",
    "ModelNotTrainedError",
    "OptimizationError",
    "RngFactory",
    "combine_hashes",
    "derive_rng",
    "error_ratio",
    "geometric_partition_samples",
    "median_error_pct",
    "pearson",
    "percentile",
    "stable_hash",
    "stable_unit_float",
]
