"""Plan visualization: ASCII trees, stage summaries, and DOT export.

Debuggability was a stated requirement for Cleo's model choice ("intuitive
and easily interpretable ... an important requirement for effective
debugging and analysis of production jobs", Section 3.4); these helpers are
the plan-side counterpart, used by the examples and handy in a REPL.
"""

from __future__ import annotations

from repro.plan.physical import PhysicalOp
from repro.plan.stages import build_stage_graph


def render_tree(plan: PhysicalOp, show_cards: bool = True) -> str:
    """Box-drawing ASCII rendering of a physical plan."""
    lines: list[str] = []

    def visit(op: PhysicalOp, prefix: str, is_last: bool, is_root: bool) -> None:
        connector = "" if is_root else ("└─ " if is_last else "├─ ")
        label = f"{op.op_type.value}[P={op.partition_count}]"
        if show_cards:
            label += f" rows={op.true_card:,.0f}"
        if op.sorting.is_sorted:
            label += f" {op.sorting.describe()}"
        lines.append(prefix + connector + label)
        child_prefix = prefix + ("" if is_root else ("   " if is_last else "│  "))
        for i, child in enumerate(op.children):
            visit(child, child_prefix, i == len(op.children) - 1, False)

    visit(plan, "", True, True)
    return "\n".join(lines)


def render_stages(plan: PhysicalOp) -> str:
    """Stage-level summary: one line per stage, topologically ordered."""
    graph = build_stage_graph(plan)
    lines = []
    for stage in graph.topological_order():
        ops = " > ".join(op.op_type.value for op in stage.operators)
        deps = ",".join(str(u) for u in sorted(stage.upstream)) or "-"
        rows = max(op.true_card for op in stage.operators)
        lines.append(
            f"stage {stage.index:>2} (P={stage.partition_count:<5} "
            f"after [{deps}]) rows<={rows:>14,.0f}: {ops}"
        )
    return "\n".join(lines)


def to_dot(plan: PhysicalOp, name: str = "plan") -> str:
    """GraphViz DOT export; stages become clusters."""
    graph = build_stage_graph(plan)
    node_ids: dict[int, str] = {}
    lines = [f"digraph {name} {{", "  rankdir=BT;", "  node [shape=box, fontsize=10];"]

    for stage in graph.stages:
        lines.append(f"  subgraph cluster_stage{stage.index} {{")
        lines.append(f'    label="stage {stage.index} (P={stage.partition_count})";')
        for op in stage.operators:
            node_id = f"n{len(node_ids)}"
            node_ids[id(op)] = node_id
            label = f"{op.op_type.value}\\nrows={op.true_card:,.0f}"
            lines.append(f'    {node_id} [label="{label}"];')
        lines.append("  }")

    for op in plan.walk():
        for child in op.children:
            lines.append(f"  {node_ids[id(child)]} -> {node_ids[id(op)]};")
    lines.append("}")
    return "\n".join(lines)


def diff_plans(before: PhysicalOp, after: PhysicalOp) -> list[str]:
    """Operator-level differences between two plans for the same query."""
    changes: list[str] = []
    before_ops = [op.op_type.value for op in before.walk()]
    after_ops = [op.op_type.value for op in after.walk()]
    if before_ops != after_ops:
        from collections import Counter

        gained = Counter(after_ops) - Counter(before_ops)
        lost = Counter(before_ops) - Counter(after_ops)
        for op_name, count in sorted(lost.items()):
            changes.append(f"-{count} {op_name}")
        for op_name, count in sorted(gained.items()):
            changes.append(f"+{count} {op_name}")
    before_parts = sorted(
        stage.partition_count for stage in build_stage_graph(before).stages
    )
    after_parts = sorted(
        stage.partition_count for stage in build_stage_graph(after).stages
    )
    if before_parts != after_parts:
        changes.append(f"stage partitions {before_parts} -> {after_parts}")
    return changes
