"""Physical query plans.

A physical plan is an immutable tree of :class:`PhysicalOp`.  Physical
operators either implement a logical operator (and carry a reference to it)
or are *enforcers* inserted by the optimizer to satisfy required properties:
``Exchange`` (repartitioning, SCOPE's Shuffle) and enforcer ``Sort``.

Every operator records the partition count it runs with — the resource that
the paper's resource-aware planner optimizes (Section 5.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.common.errors import InvalidPlanError
from repro.plan.logical import LogicalOp, LogicalOpType
from repro.plan.properties import Partitioning, SortOrder


class PhysOpType(enum.Enum):
    """Physical operator kinds (a subset of SCOPE's, sufficient for the paper)."""

    EXTRACT = "Extract"
    FILTER = "Filter"
    COMPUTE = "Compute"
    PROCESS = "Process"
    HASH_JOIN = "HashJoin"
    MERGE_JOIN = "MergeJoin"
    HASH_AGGREGATE = "HashAggregate"
    STREAM_AGGREGATE = "StreamAggregate"
    LOCAL_AGGREGATE = "LocalAggregate"
    SORT = "Sort"
    TOP_K = "TopK"
    EXCHANGE = "Exchange"
    UNION_ALL = "UnionAll"
    OUTPUT = "Output"


class ExchangeMode(enum.Enum):
    """How an Exchange redistributes rows."""

    HASH = "hash"  # hash repartition on columns
    GATHER = "gather"  # merge everything into one partition
    RANDOM = "random"  # round-robin rebalance


#: Operators that decide the partition count of their stage (Section 5.2):
#: Extract at the leaves and Exchange at stage boundaries.
PARTITIONING_OPS = frozenset({PhysOpType.EXTRACT, PhysOpType.EXCHANGE})

#: Operators that block the pipeline (consume all input before producing).
BLOCKING_OPS = frozenset(
    {
        PhysOpType.SORT,
        PhysOpType.HASH_AGGREGATE,
        PhysOpType.STREAM_AGGREGATE,
        PhysOpType.LOCAL_AGGREGATE,
        PhysOpType.TOP_K,
    }
)


@dataclass(frozen=True, slots=True)
class PhysicalOp:
    """One node of a physical plan.

    Attributes:
        op_type: physical operator kind.
        children: input operators (tuple, possibly empty for EXTRACT).
        logical: the logical operator this node implements, or None for
            enforcers (Exchange, enforcer Sort).
        partition_count: degree of parallelism of this operator's stage.
        partitioning: the partitioning property this operator delivers.
        sorting: the intra-partition sort order this operator delivers.
        exchange_mode: set only for EXCHANGE nodes.
        sort_keys: set for SORT / TOP_K / MERGE_JOIN enforcer context.
    """

    op_type: PhysOpType
    children: tuple["PhysicalOp", ...]
    logical: LogicalOp | None
    partition_count: int
    partitioning: Partitioning
    sorting: SortOrder = SortOrder.none()
    exchange_mode: ExchangeMode | None = None
    sort_keys: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.partition_count < 1:
            raise InvalidPlanError(
                f"{self.op_type.value}: partition_count must be >= 1, "
                f"got {self.partition_count}"
            )
        if self.op_type is PhysOpType.EXCHANGE and self.exchange_mode is None:
            raise InvalidPlanError("Exchange requires an exchange_mode")
        if self.op_type is PhysOpType.EXTRACT and self.children:
            raise InvalidPlanError("Extract must be a leaf")
        if self.op_type is not PhysOpType.EXTRACT and not self.children:
            raise InvalidPlanError(f"{self.op_type.value} requires children")

    # ------------------------------------------------------------------ #
    # Semantic payload (delegated to the logical node or passed through)
    # ------------------------------------------------------------------ #

    @property
    def is_enforcer(self) -> bool:
        return self.logical is None

    @property
    def true_card(self) -> float:
        """True output cardinality: the logical node's, or pass-through."""
        if self.logical is not None:
            return self.logical.true_card
        return self.children[0].true_card

    @property
    def row_bytes(self) -> float:
        if self.logical is not None:
            return self.logical.row_bytes
        return self.children[0].row_bytes

    @property
    def template_tag(self) -> str:
        """Parameter-independent identity of this node (for signatures)."""
        if self.logical is not None:
            return self.logical.template_tag
        if self.op_type is PhysOpType.EXCHANGE:
            assert self.exchange_mode is not None
            return f"xchg:{self.exchange_mode.value}"
        return f"enf:{self.op_type.value.lower()}:{','.join(self.sort_keys)}"

    @property
    def normalized_inputs(self) -> frozenset[str]:
        if self.logical is not None:
            return self.logical.normalized_inputs
        result: set[str] = set()
        for child in self.children:
            result |= child.normalized_inputs
        return frozenset(result)

    @property
    def params(self) -> tuple[float, ...]:
        return self.logical.params if self.logical is not None else ()

    @property
    def table(self) -> str | None:
        return self.logical.table if self.logical is not None else None

    @property
    def is_partitioning(self) -> bool:
        return self.op_type in PARTITIONING_OPS

    @property
    def is_blocking(self) -> bool:
        return self.op_type in BLOCKING_OPS

    @property
    def base_card(self) -> float:
        """Total true cardinality of leaf inputs (the ``B`` feature)."""
        return float(sum(leaf.true_card for leaf in self.walk() if not leaf.children))

    @property
    def input_card(self) -> float:
        """Total true input cardinality from children (the ``I`` feature)."""
        if not self.children:
            return self.true_card
        return float(sum(child.true_card for child in self.children))

    # ------------------------------------------------------------------ #
    # Traversal / structural helpers
    # ------------------------------------------------------------------ #

    def walk(self):
        """Yield every node of the subtree, children before parents."""
        for child in self.children:
            yield from child.walk()
        yield self

    @property
    def node_count(self) -> int:
        return sum(1 for _ in self.walk())

    @property
    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth for child in self.children)

    def child_context(self) -> tuple[str, ...]:
        """Immediate-children operator types, the pipelining context.

        The simulator conditions latency multipliers on this (a hash over a
        filter is cheaper than over a sort — Section 3.1), and so implicitly
        do the subgraph-template learned models.
        """
        if not self.children:
            return ("leaf",)
        return tuple(child.op_type.value for child in self.children)

    def with_partition_count(self, partition_count: int) -> "PhysicalOp":
        """A copy of this node (only) with a different partition count."""
        return replace(self, partition_count=partition_count)

    def logical_op_count(self) -> int:
        """Number of non-enforcer operators in the subtree (``CL`` feature)."""
        return sum(1 for node in self.walk() if node.logical is not None)

    def describe(self, indent: int = 0) -> str:
        """Readable multi-line physical plan, for examples and debugging."""
        pad = "  " * indent
        extras = [f"P={self.partition_count}", self.partitioning.describe()]
        if self.sorting.is_sorted:
            extras.append(self.sorting.describe())
        if self.exchange_mode is not None:
            extras.append(self.exchange_mode.value)
        line = (
            f"{pad}{self.op_type.value}[{self.template_tag}] "
            f"card={self.true_card:,.0f} ({', '.join(extras)})"
        )
        lines = [line]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)


def validate_physical_plan(root: PhysicalOp) -> None:
    """Structural validation of a complete physical plan.

    Checks that non-partitioning operators inherit their children's partition
    count (SCOPE semantics: all operators of a stage run on the same set of
    machines) and that joins consume co-partitioned inputs.
    """
    for node in root.walk():
        if node.op_type in (PhysOpType.HASH_JOIN, PhysOpType.MERGE_JOIN):
            counts = {child.partition_count for child in node.children}
            if len(counts) != 1:
                raise InvalidPlanError(
                    f"{node.op_type.value} children disagree on partition "
                    f"count: {sorted(counts)}"
                )
        if not node.is_partitioning and node.children:
            child_counts = {child.partition_count for child in node.children}
            if node.partition_count not in child_counts:
                raise InvalidPlanError(
                    f"{node.op_type.value} (P={node.partition_count}) does not "
                    f"match its children's partition counts {sorted(child_counts)}"
                )
        if node.logical is not None and node.op_type is not PhysOpType.EXTRACT:
            if node.logical.op_type is LogicalOpType.GET:
                raise InvalidPlanError("GET must be implemented by Extract")
