"""Operator signatures: the keys under which learned models are stored.

SCOPE computes a 64-bit signature per operator recursively from (i) child
signatures, (ii) the operator's name, and (iii) its logical properties
(Section 5.1).  Cleo adds three more signatures, one per individual model:

* :func:`strict_signature` — the operator-subgraph key: root physical
  operator plus the exact shape of everything beneath it;
* :func:`approx_signature` — operator-subgraphApprox: root physical operator,
  normalized inputs, and the *frequency* of logical operators underneath,
  ignoring order (Section 4.2);
* :func:`input_signature` — operator-input: root physical operator plus
  normalized input templates;
* :func:`operator_signature` — just the physical operator type.

All four are computed in a single recursion in the optimizer's logging path,
mirroring the paper's "all signatures can be computed simultaneously in the
same recursion" observation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.hashing import combine_hashes, combine_hashes_unordered, stable_hash
from repro.plan.physical import PhysicalOp

# Per-component hash caches.  Signatures hash the same small set of template
# tags, input sets, and operator names over and over across a workload's
# thousands of operator instances; memoizing the blake2b digests turns the
# per-operator cost into dict lookups.  Values are unchanged — the caches
# only skip recomputing identical hashes.  Ad-hoc templates mint fresh tags
# forever, so each cache clears when it reaches _CACHE_LIMIT entries
# (values are pure recomputations; a clear is always safe) to keep
# long-running processes bounded.
_CACHE_LIMIT = 1 << 18
_OWN_HASH_CACHE: dict[tuple[str, str], int] = {}
_INPUT_SIG_CACHE: dict[tuple[str, frozenset[str]], int] = {}
_OPERATOR_SIG_CACHE: dict[str, int] = {}
_FREQ_HASH_CACHE: dict[frozenset[tuple[str, int]], int] = {}
_APPROX_SIG_CACHE: dict[tuple[str, int, frozenset[str]], int] = {}


def _approx_hash(op_type_value: str, freq_hash: int, inputs: frozenset[str]) -> int:
    key = (op_type_value, freq_hash, inputs)
    cached = _APPROX_SIG_CACHE.get(key)
    if cached is None:
        if len(_APPROX_SIG_CACHE) >= _CACHE_LIMIT:
            _APPROX_SIG_CACHE.clear()
        cached = stable_hash("approx", op_type_value, freq_hash, inputs)
        _APPROX_SIG_CACHE[key] = cached
    return cached


def _own_hash(op_type_value: str, template_tag: str) -> int:
    key = (op_type_value, template_tag)
    cached = _OWN_HASH_CACHE.get(key)
    if cached is None:
        if len(_OWN_HASH_CACHE) >= _CACHE_LIMIT:
            _OWN_HASH_CACHE.clear()
        cached = stable_hash("strict", op_type_value, template_tag)
        _OWN_HASH_CACHE[key] = cached
    return cached


def _freq_hash(freq: dict[str, int]) -> int:
    key = frozenset(freq.items())
    cached = _FREQ_HASH_CACHE.get(key)
    if cached is None:
        if len(_FREQ_HASH_CACHE) >= _CACHE_LIMIT:
            _FREQ_HASH_CACHE.clear()
        # combine_hashes_unordered is order-independent by construction, so
        # the frozenset key loses nothing.
        cached = combine_hashes_unordered(
            stable_hash("freq", name, count) for name, count in freq.items()
        )
        _FREQ_HASH_CACHE[key] = cached
    return cached


def strict_signature(op: PhysicalOp) -> int:
    """Exact operator-subgraph signature (root operator + all descendants)."""
    child_sigs = [strict_signature(child) for child in op.children]
    own = _own_hash(op.op_type.value, op.template_tag)
    return combine_hashes(child_sigs + [own])


def approx_signature(op: PhysicalOp) -> int:
    """Relaxed subgraph signature: same inputs + same logical-op frequencies.

    Two subgraphs map to the same key when they share the root physical
    operator, the normalized inputs, and the multiset of logical operator
    types beneath the root — the two relaxations of Section 4.2.
    """
    freq: dict[str, int] = {}
    for node in op.walk():
        if node is op:
            continue
        if node.logical is not None:
            key = node.logical.op_type.value
            freq[key] = freq.get(key, 0) + 1
    freq_hash = _freq_hash(freq)
    return _approx_hash(op.op_type.value, freq_hash, frozenset(op.normalized_inputs))


def input_signature(op: PhysicalOp) -> int:
    """Operator-input signature: physical operator + normalized inputs."""
    return input_signature_for(op.op_type.value, frozenset(op.normalized_inputs))


def input_signature_for(op_type_value: str, normalized_inputs: frozenset[str]) -> int:
    """Cached :func:`input_signature` from the raw key components."""
    key = (op_type_value, normalized_inputs)
    cached = _INPUT_SIG_CACHE.get(key)
    if cached is None:
        if len(_INPUT_SIG_CACHE) >= _CACHE_LIMIT:
            _INPUT_SIG_CACHE.clear()
        cached = stable_hash("input", op_type_value, normalized_inputs)
        _INPUT_SIG_CACHE[key] = cached
    return cached


def operator_signature(op: PhysicalOp) -> int:
    """Operator signature: the physical operator type alone (full coverage)."""
    return operator_signature_for(op.op_type.value)


def operator_signature_for(op_type_value: str) -> int:
    """Cached :func:`operator_signature` from the operator name."""
    cached = _OPERATOR_SIG_CACHE.get(op_type_value)
    if cached is None:
        cached = stable_hash("operator", op_type_value)
        _OPERATOR_SIG_CACHE[op_type_value] = cached
    return cached


def subgraph_logical_count(op: PhysicalOp) -> int:
    """Number of logical operators in the subgraph (the ``CL`` feature)."""
    return op.logical_op_count()


def subgraph_depth(op: PhysicalOp) -> int:
    """Depth of the physical operator in its subgraph (the ``D`` feature)."""
    return op.depth


@dataclass(frozen=True, slots=True)
class SignatureBundle:
    """All four model keys for one operator, computed in one recursion."""

    strict: int
    approx: int
    input: int
    operator: int

    @classmethod
    def of(cls, op: PhysicalOp) -> "SignatureBundle":
        return cls(
            strict=strict_signature(op),
            approx=approx_signature(op),
            input=input_signature(op),
            operator=operator_signature(op),
        )


def compute_signature_bundles(root: PhysicalOp) -> dict[int, SignatureBundle]:
    """Compute every operator's four signatures in one bottom-up recursion.

    Mirrors the paper's instrumentation note that all signatures are computed
    simultaneously in the same recursion with minimal overhead.  Returns a
    map from ``id(op)`` to its :class:`SignatureBundle`.
    """
    bundles: dict[int, SignatureBundle] = {}
    strict_memo: dict[int, int] = {}
    freq_memo: dict[int, dict[str, int]] = {}

    def visit(op: PhysicalOp) -> tuple[int, dict[str, int]]:
        child_sigs: list[int] = []
        freq: dict[str, int] = {}
        for child in op.children:
            sig, child_freq = visit(child)
            child_sigs.append(sig)
            for name, count in child_freq.items():
                freq[name] = freq.get(name, 0) + count
        own = _own_hash(op.op_type.value, op.template_tag)
        strict = combine_hashes(child_sigs + [own])
        strict_memo[id(op)] = strict

        # The approx signature counts logical operators *beneath* the root,
        # i.e. the subtree frequencies before adding this node's own type.
        freq_hash = _freq_hash(freq)
        approx = _approx_hash(
            op.op_type.value, freq_hash, frozenset(op.normalized_inputs)
        )
        bundles[id(op)] = SignatureBundle(
            strict=strict,
            approx=approx,
            input=input_signature(op),
            operator=operator_signature(op),
        )
        if op.logical is not None:
            freq[op.logical.op_type.value] = freq.get(op.logical.op_type.value, 0) + 1
        freq_memo[id(op)] = freq
        return strict, freq

    visit(root)
    return bundles
