"""Query plan layer: logical algebra, physical operators, stages, signatures.

The plan layer is deliberately self-contained: logical operators carry the
semantic payload (true cardinalities, row widths, template tags) that the
cardinality estimator, cost models, and execution simulator consume, so no
component needs to reach back into the catalog after a plan is built.
"""

from repro.plan.builder import PlanBuilder
from repro.plan.logical import LogicalOp, LogicalOpType
from repro.plan.physical import PhysicalOp, PhysOpType
from repro.plan.properties import Partitioning, PartitionScheme, SortOrder
from repro.plan.signatures import (
    approx_signature,
    input_signature,
    operator_signature,
    strict_signature,
    subgraph_depth,
    subgraph_logical_count,
)
from repro.plan.stages import Stage, StageGraph, build_stage_graph

__all__ = [
    "LogicalOp",
    "LogicalOpType",
    "Partitioning",
    "PartitionScheme",
    "PhysOpType",
    "PhysicalOp",
    "PlanBuilder",
    "SortOrder",
    "Stage",
    "StageGraph",
    "approx_signature",
    "build_stage_graph",
    "input_signature",
    "operator_signature",
    "strict_signature",
    "subgraph_depth",
    "subgraph_logical_count",
]
