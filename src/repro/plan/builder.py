"""Plan builder: the public DSL for constructing logical plans.

The builder computes, bottom-up, each node's true output cardinality, row
width, and normalized input set, so a finished plan is self-describing.  All
cardinality semantics live here:

* ``filter``: ``C = selectivity * I``;
* ``join``: either an explicit ``output_card`` (TPC-H queries, computed
  analytically by the query module) or a *fan-out* relative to the larger
  input, the convention used by the synthetic workload generator;
* ``aggregate``: ``C = min(I, group_count)``;
* ``process`` (UDF): an arbitrary card factor — UDFs may expand or contract.
"""

from __future__ import annotations

from repro.common.errors import InvalidPlanError
from repro.data.catalog import Catalog
from repro.plan.logical import LogicalOp, LogicalOpType, normalize_input_name

_MIN_ROW_BYTES = 8.0


class PlanBuilder:
    """Builds logical plans against a catalog snapshot.

    Example::

        b = PlanBuilder(catalog)
        plan = b.output(
            b.aggregate(
                b.join(
                    b.filter(b.scan("orders"), "o_orderdate", 0.05, tag="f1"),
                    b.scan("lineitem"),
                    keys=("o_orderkey", "l_orderkey"),
                    fanout=4.0,
                ),
                keys=("o_custkey",),
                group_count=10_000,
            ),
            name="report",
        )
    """

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    # ------------------------------------------------------------------ #
    # Leaf and unary operators
    # ------------------------------------------------------------------ #

    def scan(self, table: str, tag: str | None = None) -> LogicalOp:
        """Scan a base table; true cardinality comes from the catalog."""
        stats = self.catalog.stats(table)
        return LogicalOp(
            op_type=LogicalOpType.GET,
            children=(),
            template_tag=tag or f"get:{normalize_input_name(table)}",
            true_card=stats.row_count,
            row_bytes=float(stats.avg_row_bytes),
            normalized_inputs=frozenset({normalize_input_name(table)}),
            table=table,
        )

    def filter(
        self,
        child: LogicalOp,
        column: str,
        selectivity: float,
        tag: str | None = None,
        params: tuple[float, ...] = (),
    ) -> LogicalOp:
        """Filter with a known true selectivity in (0, 1]."""
        if not 0.0 < selectivity <= 1.0:
            raise InvalidPlanError(f"filter selectivity must be in (0, 1], got {selectivity}")
        return LogicalOp(
            op_type=LogicalOpType.FILTER,
            children=(child,),
            template_tag=tag or f"filter:{column}",
            true_card=child.true_card * selectivity,
            row_bytes=child.row_bytes,
            normalized_inputs=child.normalized_inputs,
            sel_true=selectivity,
            keys=(column,),
            params=params,
        )

    def project(
        self,
        child: LogicalOp,
        width_factor: float = 0.8,
        tag: str | None = None,
        columns: tuple[str, ...] = (),
    ) -> LogicalOp:
        """Projection / column computation; narrows rows, keeps cardinality."""
        if width_factor <= 0:
            raise InvalidPlanError("width_factor must be positive")
        return LogicalOp(
            op_type=LogicalOpType.PROJECT,
            children=(child,),
            template_tag=tag or f"project:{len(columns)}c",
            true_card=child.true_card,
            row_bytes=max(_MIN_ROW_BYTES, child.row_bytes * width_factor),
            normalized_inputs=child.normalized_inputs,
            keys=columns,
        )

    def process(
        self,
        child: LogicalOp,
        udf_name: str,
        card_factor: float = 1.0,
        width_factor: float = 1.0,
        tag: str | None = None,
        params: tuple[float, ...] = (),
    ) -> LogicalOp:
        """User-defined operator (black box to the default cost model)."""
        if card_factor <= 0 or width_factor <= 0:
            raise InvalidPlanError("process factors must be positive")
        return LogicalOp(
            op_type=LogicalOpType.PROCESS,
            children=(child,),
            template_tag=tag or f"process:{udf_name}",
            true_card=child.true_card * card_factor,
            row_bytes=max(_MIN_ROW_BYTES, child.row_bytes * width_factor),
            normalized_inputs=child.normalized_inputs,
            sel_true=card_factor,
            udf_name=udf_name,
            params=params,
        )

    # ------------------------------------------------------------------ #
    # Binary / n-ary operators
    # ------------------------------------------------------------------ #

    def join(
        self,
        left: LogicalOp,
        right: LogicalOp,
        keys: tuple[str, str],
        fanout: float | None = None,
        output_card: float | None = None,
        tag: str | None = None,
    ) -> LogicalOp:
        """Equi-join on ``keys = (left_key, right_key)``.

        Exactly one of ``fanout`` (output = fanout * max input) or
        ``output_card`` may be given; default is fanout 1.0, the typical
        foreign-key join that preserves the fact side.
        """
        if fanout is not None and output_card is not None:
            raise InvalidPlanError("give either fanout or output_card, not both")
        bigger = max(left.true_card, right.true_card)
        if output_card is not None:
            if output_card < 0:
                raise InvalidPlanError("output_card must be >= 0")
            card = float(output_card)
        else:
            card = bigger * (1.0 if fanout is None else fanout)
        sel_local = card / bigger if bigger > 0 else 1.0
        return LogicalOp(
            op_type=LogicalOpType.JOIN,
            children=(left, right),
            template_tag=tag or f"join:{keys[0]}={keys[1]}",
            true_card=card,
            row_bytes=max(_MIN_ROW_BYTES, 0.9 * (left.row_bytes + right.row_bytes)),
            normalized_inputs=left.normalized_inputs | right.normalized_inputs,
            sel_true=sel_local,
            keys=keys,
        )

    def aggregate(
        self,
        child: LogicalOp,
        keys: tuple[str, ...],
        group_count: float | None = None,
        tag: str | None = None,
    ) -> LogicalOp:
        """Group-by aggregation; ``group_count`` is the true group cardinality.

        When omitted, a sqrt heuristic on the input size is used — adequate
        for synthetic workloads where only the magnitude matters.
        """
        if group_count is None:
            group_count = max(1.0, child.true_card**0.5)
        card = min(child.true_card, float(group_count)) if child.true_card > 0 else 0.0
        return LogicalOp(
            op_type=LogicalOpType.AGGREGATE,
            children=(child,),
            template_tag=tag or f"agg:{','.join(keys) or 'all'}",
            true_card=max(card, 1.0 if child.true_card > 0 else 0.0),
            row_bytes=max(_MIN_ROW_BYTES, min(child.row_bytes, 16.0 + 8.0 * len(keys))),
            normalized_inputs=child.normalized_inputs,
            sel_true=(card / child.true_card) if child.true_card > 0 else 1.0,
            keys=keys,
            group_count=float(group_count),
        )

    def sort(self, child: LogicalOp, keys: tuple[str, ...], tag: str | None = None) -> LogicalOp:
        if not keys:
            raise InvalidPlanError("sort requires at least one key")
        return LogicalOp(
            op_type=LogicalOpType.SORT,
            children=(child,),
            template_tag=tag or f"sort:{','.join(keys)}",
            true_card=child.true_card,
            row_bytes=child.row_bytes,
            normalized_inputs=child.normalized_inputs,
            keys=keys,
        )

    def topk(
        self, child: LogicalOp, keys: tuple[str, ...], k: int, tag: str | None = None
    ) -> LogicalOp:
        if k < 1:
            raise InvalidPlanError("k must be >= 1")
        card = min(float(k), child.true_card)
        return LogicalOp(
            op_type=LogicalOpType.TOP_K,
            children=(child,),
            template_tag=tag or f"topk:{','.join(keys)}:{k}",
            true_card=card,
            row_bytes=child.row_bytes,
            normalized_inputs=child.normalized_inputs,
            sel_true=(card / child.true_card) if child.true_card > 0 else 1.0,
            keys=keys,
            limit=k,
        )

    def union(self, *children: LogicalOp, tag: str | None = None) -> LogicalOp:
        if len(children) < 2:
            raise InvalidPlanError("union requires at least two children")
        total = sum(c.true_card for c in children)
        width = sum(c.row_bytes * c.true_card for c in children) / total if total else children[
            0
        ].row_bytes
        inputs: frozenset[str] = frozenset()
        for child in children:
            inputs |= child.normalized_inputs
        return LogicalOp(
            op_type=LogicalOpType.UNION,
            children=tuple(children),
            template_tag=tag or f"union:{len(children)}",
            true_card=float(total),
            row_bytes=max(_MIN_ROW_BYTES, width),
            normalized_inputs=inputs,
        )

    def output(self, child: LogicalOp, name: str = "out", tag: str | None = None) -> LogicalOp:
        return LogicalOp(
            op_type=LogicalOpType.OUTPUT,
            children=(child,),
            template_tag=tag or f"output:{normalize_input_name(name)}",
            true_card=child.true_card,
            row_bytes=child.row_bytes,
            normalized_inputs=child.normalized_inputs,
        )
