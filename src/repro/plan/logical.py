"""Logical query algebra.

A logical plan is an immutable tree of :class:`LogicalOp`.  Each node carries
the *semantic payload* that downstream components need:

* ``true_card`` — the true output cardinality of the (sub)expression, fixed
  at build time by the plan builder (from catalog statistics and predicate
  selectivities).  The execution simulator treats this as ground truth.
* ``sel_true`` — the node's local true selectivity/fan-out factor, used by
  the *estimated* cardinality engine, which corrupts it with deterministic
  per-template errors that compound up the plan (Section 2.4).
* ``template_tag`` — the parameter-independent identity of the node.  Two
  instances of the same recurring job share tags even though their dates,
  input sizes, and parameter values differ; all learned-model signatures
  derive from these tags.
* ``normalized_inputs`` — normalized names of the inputs feeding the
  subexpression (dates and numbers stripped), the paper's ``IN`` feature.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field


class LogicalOpType(enum.Enum):
    """Logical operator kinds."""

    GET = "Get"
    FILTER = "Filter"
    PROJECT = "Project"
    PROCESS = "Process"  # user-defined operator (black-box UDF)
    JOIN = "Join"
    AGGREGATE = "Aggregate"
    SORT = "Sort"
    TOP_K = "TopK"
    UNION = "Union"
    OUTPUT = "Output"


_DATE_NUM_RE = re.compile(r"\d+")


def normalize_input_name(name: str) -> str:
    """Strip dates and numbers from an input name (Section 3.3, ``IN``).

    ``clicks_2020_02_27`` and ``clicks_2020_02_28`` normalize to the same
    template, which is how recurring jobs over daily inputs are grouped.
    """
    return _DATE_NUM_RE.sub("#", name).lower()


@dataclass(frozen=True, slots=True)
class LogicalOp:
    """One node of a logical plan.

    Instances are immutable; plans are built bottom-up by the
    :class:`~repro.plan.builder.PlanBuilder`, which computes ``true_card``,
    ``row_bytes`` and ``normalized_inputs`` from the children.
    """

    op_type: LogicalOpType
    children: tuple["LogicalOp", ...]
    template_tag: str
    true_card: float
    row_bytes: float
    normalized_inputs: frozenset[str]
    sel_true: float = 1.0
    table: str | None = None
    keys: tuple[str, ...] = ()
    limit: int | None = None
    udf_name: str | None = None
    params: tuple[float, ...] = ()
    group_count: float | None = None

    def __post_init__(self) -> None:
        if self.true_card < 0:
            raise ValueError("true_card must be >= 0")
        if self.row_bytes <= 0:
            raise ValueError("row_bytes must be positive")
        expected_arity = _ARITY[self.op_type]
        if expected_arity is not None and len(self.children) != expected_arity:
            raise ValueError(
                f"{self.op_type.value} expects {expected_arity} children, "
                f"got {len(self.children)}"
            )

    # ------------------------------------------------------------------ #
    # Traversal helpers
    # ------------------------------------------------------------------ #

    def walk(self):
        """Yield every node of the subtree, children before parents."""
        for child in self.children:
            yield from child.walk()
        yield self

    @property
    def node_count(self) -> int:
        return sum(1 for _ in self.walk())

    @property
    def depth(self) -> int:
        """Height of the subtree rooted here (leaf = 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth for child in self.children)

    @property
    def base_card(self) -> float:
        """Total input cardinality at the leaves (the paper's ``B`` feature)."""
        leaves = [node for node in self.walk() if not node.children]
        return float(sum(leaf.true_card for leaf in leaves))

    def op_type_frequencies(self) -> dict[str, int]:
        """Multiset of logical operator types in the subtree.

        This is the relaxation used by the operator-subgraphApprox model
        (Section 4.2): same frequencies, ordering ignored.
        """
        freq: dict[str, int] = {}
        for node in self.walk():
            freq[node.op_type.value] = freq.get(node.op_type.value, 0) + 1
        return freq

    def describe(self, indent: int = 0) -> str:
        """Readable multi-line plan description for debugging and examples."""
        pad = "  " * indent
        label = f"{pad}{self.op_type.value}[{self.template_tag}] card={self.true_card:,.0f}"
        lines = [label]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)


# Arity per operator type; None means "one or more" (UNION).
_ARITY: dict[LogicalOpType, int | None] = {
    LogicalOpType.GET: 0,
    LogicalOpType.FILTER: 1,
    LogicalOpType.PROJECT: 1,
    LogicalOpType.PROCESS: 1,
    LogicalOpType.JOIN: 2,
    LogicalOpType.AGGREGATE: 1,
    LogicalOpType.SORT: 1,
    LogicalOpType.TOP_K: 1,
    LogicalOpType.UNION: None,
    LogicalOpType.OUTPUT: 1,
}
