"""Stage graph: grouping physical operators into SCOPE stages.

"The sequence of intermediate operators that operate over the same set of
input partitions are grouped into a stage — all operators in a stage run on
the same set of machines" (Section 2.1).  Stages begin at a partitioning
operator (Extract or Exchange) and extend upward until the next Exchange.

The stage graph drives the execution simulator: a job's end-to-end latency is
the critical path over stages, and its total processing time is the sum of
per-stage work across partitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import InvalidPlanError
from repro.plan.physical import PhysicalOp


@dataclass
class Stage:
    """A set of operators running together on one set of partitions."""

    index: int
    operators: list[PhysicalOp] = field(default_factory=list)
    upstream: set[int] = field(default_factory=set)

    @property
    def partition_count(self) -> int:
        if not self.operators:
            raise InvalidPlanError("empty stage")
        return self.operators[0].partition_count

    @property
    def partitioning_operators(self) -> list[PhysicalOp]:
        """The Extract/Exchange operators that set this stage's partitions."""
        return [op for op in self.operators if op.is_partitioning]

    def __contains__(self, op: PhysicalOp) -> bool:
        return any(member is op for member in self.operators)


@dataclass
class StageGraph:
    """Stages of one physical plan plus their dependency edges."""

    stages: list[Stage]
    stage_of: dict[int, int]  # id(PhysicalOp) -> stage index

    def stage_for(self, op: PhysicalOp) -> Stage:
        try:
            return self.stages[self.stage_of[id(op)]]
        except KeyError:
            raise InvalidPlanError("operator is not part of this stage graph") from None

    def __len__(self) -> int:
        return len(self.stages)

    def topological_order(self) -> list[Stage]:
        """Stages ordered so that producers precede consumers."""
        order: list[Stage] = []
        seen: set[int] = set()

        def visit(idx: int) -> None:
            if idx in seen:
                return
            seen.add(idx)
            for upstream_idx in sorted(self.stages[idx].upstream):
                visit(upstream_idx)
            order.append(self.stages[idx])

        for idx in range(len(self.stages)):
            visit(idx)
        return order


def build_stage_graph(root: PhysicalOp) -> StageGraph:
    """Partition a physical plan into stages.

    An Exchange starts a new stage (it is the partitioning operator of the
    stage that *consumes* the repartitioned data, per Figure 8b where Stage 2
    is ``[Exchange, Reduce, Output]``).  An Extract starts a leaf stage.
    Joins merge the stages of their children when no Exchange intervenes,
    which requires the children to agree on partition count — validated here.
    """
    stages: list[Stage] = []
    stage_of: dict[int, int] = {}

    def new_stage() -> Stage:
        stage = Stage(index=len(stages))
        stages.append(stage)
        return stage

    def visit(op: PhysicalOp) -> int:
        """Return the stage index that ``op`` belongs to."""
        seen = stage_of.get(id(op))
        if seen is not None:
            # Shared subexpression (DAG-shaped caller input): the operator
            # already has a stage; revisiting must neither duplicate its
            # membership nor re-walk the subtree (exponential on sharing).
            return seen
        child_stage_indices = [visit(child) for child in op.children]

        if op.is_partitioning:
            stage = new_stage()
            stage.upstream.update(child_stage_indices)
        else:
            # Continue in the children's stage; joins merge both sides.
            distinct = sorted(set(child_stage_indices))
            if not distinct:
                raise InvalidPlanError(
                    f"{op.op_type.value} has no children and is not a "
                    "partitioning operator"
                )
            primary = distinct[0]
            stage = stages[primary]
            for other_idx in distinct[1:]:
                other = stages[other_idx]
                if other.partition_count != stage.partition_count:
                    raise InvalidPlanError(
                        "cannot merge stages with partition counts "
                        f"{stage.partition_count} and {other.partition_count} "
                        f"under {op.op_type.value}"
                    )
                for moved in other.operators:
                    stage_of[id(moved)] = primary
                    stage.operators.append(moved)
                stage.upstream |= other.upstream
                other.operators = []
            if op.partition_count != stage.partition_count:
                raise InvalidPlanError(
                    f"{op.op_type.value} partition count {op.partition_count} "
                    f"differs from its stage's {stage.partition_count}"
                )
        stage.operators.append(op)
        stage_of[id(op)] = stage.index
        return stage.index

    visit(root)

    # Drop stages emptied by join merges and compact indices.
    alive = [s for s in stages if s.operators]
    remap = {old.index: new_idx for new_idx, old in enumerate(alive)}
    for stage in alive:
        stage.upstream = {remap[u] for u in stage.upstream if stages[u].operators}
        stage.index = remap[stage.index]
    compact_of = {op_id: remap[idx] for op_id, idx in stage_of.items() if stages[idx].operators}
    return StageGraph(stages=alive, stage_of=compact_of)
