"""Physical plan properties: partitioning and sort order.

Cascades optimizes with *required* properties flowing down the plan and
*delivered* properties flowing up (Section 2.3 of the paper).  Two properties
matter in this reproduction, matching SCOPE:

* :class:`Partitioning` — how rows are distributed across machines; and
* :class:`SortOrder` — the intra-partition sort order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PartitionScheme(enum.Enum):
    """How rows are assigned to partitions."""

    ANY = "any"  # requirement only: caller does not care
    SINGLETON = "singleton"  # all rows in one partition
    HASH = "hash"  # hash-partitioned on a column set
    RANDOM = "random"  # round-robin / initial extract placement


@dataclass(frozen=True, slots=True)
class Partitioning:
    """A partitioning property (required or delivered).

    ``columns`` is meaningful only for HASH.  Column order is irrelevant for
    hash partitioning, so it is stored as a sorted tuple.
    """

    scheme: PartitionScheme
    columns: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.scheme is PartitionScheme.HASH and not self.columns:
            raise ValueError("HASH partitioning requires at least one column")
        if self.scheme is not PartitionScheme.HASH and self.columns:
            raise ValueError(f"{self.scheme} partitioning must not name columns")
        object.__setattr__(self, "columns", tuple(sorted(self.columns)))

    @classmethod
    def any(cls) -> "Partitioning":
        return cls(PartitionScheme.ANY)

    @classmethod
    def singleton(cls) -> "Partitioning":
        return cls(PartitionScheme.SINGLETON)

    @classmethod
    def hash(cls, *columns: str) -> "Partitioning":
        return cls(PartitionScheme.HASH, tuple(columns))

    @classmethod
    def random(cls) -> "Partitioning":
        return cls(PartitionScheme.RANDOM)

    def satisfies(self, required: "Partitioning") -> bool:
        """True when data delivered with ``self`` meets ``required``.

        HASH on a subset of the required columns does *not* satisfy the
        requirement (rows for one required group could land in different
        partitions); HASH on exactly the required columns does.  SINGLETON
        satisfies every requirement because all rows are co-located.
        """
        if required.scheme is PartitionScheme.ANY:
            return True
        if self.scheme is PartitionScheme.SINGLETON:
            return True
        if required.scheme is PartitionScheme.SINGLETON:
            return False
        if required.scheme is PartitionScheme.HASH:
            return self.scheme is PartitionScheme.HASH and set(self.columns) == set(
                required.columns
            )
        if required.scheme is PartitionScheme.RANDOM:
            return self.scheme in (PartitionScheme.RANDOM, PartitionScheme.HASH)
        return False

    def describe(self) -> str:
        if self.scheme is PartitionScheme.HASH:
            return f"hash({','.join(self.columns)})"
        return self.scheme.value


@dataclass(frozen=True, slots=True)
class SortOrder:
    """Intra-partition sort order over a column list (all ascending).

    An empty column list means "no order required / delivered".
    """

    columns: tuple[str, ...] = ()

    @classmethod
    def none(cls) -> "SortOrder":
        return cls(())

    @classmethod
    def on(cls, *columns: str) -> "SortOrder":
        return cls(tuple(columns))

    @property
    def is_sorted(self) -> bool:
        return bool(self.columns)

    def satisfies(self, required: "SortOrder") -> bool:
        """Prefix semantics: sorted on (a, b) satisfies a requirement of (a)."""
        if not required.columns:
            return True
        return self.columns[: len(required.columns)] == required.columns

    def describe(self) -> str:
        return f"sort({','.join(self.columns)})" if self.columns else "unsorted"
