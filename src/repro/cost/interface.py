"""Cost model interface shared by heuristic and learned models.

A cost model prices the *exclusive* cost of a physical operator — its own
runtime contribution — given the optimizer's cardinality estimates; the total
plan cost combines exclusive costs bottom-up exactly like SCOPE's default
models do (Section 3.2).  Costs are in seconds of estimated latency.

Every cost model exposes the same three-method surface so consumers (the
planner, the serving layer, the applications) never special-case the model
family:

* :meth:`CostModel.operator_cost` — exclusive cost of one operator;
* :meth:`CostModel.plan_cost` — total cost of a plan tree;
* :meth:`CostModel.explain` — where a cost came from: which model kind and
  signature answered, or why a fallback tier was used instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.cardinality.estimator import CardinalityEstimator
from repro.plan.physical import PhysicalOp


@dataclass(frozen=True)
class CostExplanation:
    """Provenance of one operator cost.

    Attributes:
        source: which predictor produced the number — ``"combined"``, an
            individual model kind value (``"op_subgraph"``, ...),
            ``"heuristic"`` for the hand-crafted models, or ``"fallback"``
            for the trained global mean.
        model_kind: the most specific individual model kind covering the
            operator (``None`` when nothing covers it, or for heuristics).
        signature: the signature keying that model in the store (``None``
            when no model covers the operator, or for heuristics).
        cost: the predicted exclusive cost, in seconds.
        fallback_reason: why a more specific tier did not answer (``None``
            when the most specific tier covered the operator).
    """

    source: str
    model_kind: str | None
    signature: int | None
    cost: float
    fallback_reason: str | None = None

    def describe(self) -> str:
        parts = [f"{self.source}: {self.cost:.6g}s"]
        if self.model_kind is not None:
            parts.append(f"kind={self.model_kind}")
        if self.signature is not None:
            parts.append(f"signature={self.signature}")
        if self.fallback_reason is not None:
            parts.append(f"({self.fallback_reason})")
        return " ".join(parts)


@runtime_checkable
class CostModel(Protocol):
    """Anything that can price an operator, a plan, and explain itself."""

    def operator_cost(
        self,
        op: PhysicalOp,
        estimator: CardinalityEstimator,
        partition_override: int | None = None,
    ) -> float:
        """Exclusive cost of ``op``; ``partition_override`` re-prices the
        operator as if it ran with a different partition count (used by
        partition exploration) without rebuilding the plan."""
        ...

    def plan_cost(self, root: PhysicalOp, estimator: CardinalityEstimator) -> float:
        """Total plan cost: the sum of exclusive operator costs."""
        ...

    def explain(
        self, op: PhysicalOp, estimator: CardinalityEstimator
    ) -> CostExplanation:
        """Cost of ``op`` plus the provenance of that number."""
        ...


class CostModelBase:
    """Default ``plan_cost``/``explain`` for simple (heuristic) models.

    Subclasses only implement :meth:`operator_cost`; learned models override
    :meth:`explain` with real provenance.
    """

    @property
    def supports_replay_costing(self) -> bool:
        """Whether the skeleton replay fast path can price for this model.

        The template-skeleton replay (``repro.optimizer.skeleton``) never
        builds :class:`PhysicalOp` trees during search, so it can only serve
        models whose pricing it can reproduce exactly from cached replay
        statistics — either through ``operator_cost_from_stats`` (heuristic
        models) or through the packed pricing hooks
        (:class:`~repro.core.cost_model.CleoCostModel`).  Models that
        override the pricing formula itself opt out by returning ``False``
        here, which routes planning back to the full scalar search.
        """
        return False

    def operator_cost(
        self,
        op: PhysicalOp,
        estimator: CardinalityEstimator,
        partition_override: int | None = None,
    ) -> float:
        raise NotImplementedError

    def plan_cost(self, root: PhysicalOp, estimator: CardinalityEstimator) -> float:
        return float(sum(self.operator_cost(op, estimator) for op in root.walk()))

    def explain(
        self, op: PhysicalOp, estimator: CardinalityEstimator
    ) -> CostExplanation:
        return CostExplanation(
            source="heuristic",
            model_kind=None,
            signature=None,
            cost=self.operator_cost(op, estimator),
            fallback_reason=None,
        )


def plan_cost(
    model: CostModel, root: PhysicalOp, estimator: CardinalityEstimator
) -> float:
    """Total plan cost: sum of exclusive operator costs over the tree.

    Prefers the model's own :meth:`~CostModel.plan_cost` (learned models
    batch it); falls back to a plain sum for minimal duck-typed models.
    """
    method = getattr(model, "plan_cost", None)
    if callable(method):
        return float(method(root, estimator))
    return float(sum(model.operator_cost(op, estimator) for op in root.walk()))
