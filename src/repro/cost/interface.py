"""Cost model interface shared by heuristic and learned models.

A cost model prices the *exclusive* cost of a physical operator — its own
runtime contribution — given the optimizer's cardinality estimates; the total
plan cost combines exclusive costs bottom-up exactly like SCOPE's default
models do (Section 3.2).  Costs are in seconds of estimated latency.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.cardinality.estimator import CardinalityEstimator
from repro.plan.physical import PhysicalOp


@runtime_checkable
class CostModel(Protocol):
    """Anything that can price an operator."""

    def operator_cost(
        self,
        op: PhysicalOp,
        estimator: CardinalityEstimator,
        partition_override: int | None = None,
    ) -> float:
        """Exclusive cost of ``op``; ``partition_override`` re-prices the
        operator as if it ran with a different partition count (used by
        partition exploration) without rebuilding the plan."""
        ...


def plan_cost(
    model: CostModel, root: PhysicalOp, estimator: CardinalityEstimator
) -> float:
    """Total plan cost: sum of exclusive operator costs over the tree."""
    return float(sum(model.operator_cost(op, estimator) for op in root.walk()))
