"""The default (hand-crafted) cost model.

Structurally similar to the ground truth — per-row CPU and per-byte IO terms
combined with estimated statistics — but wrong in all the ways the paper
documents for SCOPE's default model (Section 2.4):

* it consumes *estimated* cardinalities whose errors compound up the plan;
* it knows nothing about the hidden per-template multipliers (data skew,
  pipelining interactions, input-specific behaviour);
* user-defined Process operators are priced as ordinary compute ("custom
  user code ends up as black boxes in the cost models");
* its constants were "tuned" for an older regime: CPU is over-weighted by
  roughly 5x and network exchange under-weighted, so estimates skew toward
  over-estimation (the solid red curve of Figure 1 sits right of 1);
* it ignores per-partition scheduling overheads and straggler skew, so its
  costs keep improving with more partitions — the over-partitioning habit
  the paper observes in SCOPE jobs.
"""

from __future__ import annotations

import math

from repro.cardinality.estimator import CardinalityEstimator
from repro.cost.interface import CostModelBase
from repro.plan.physical import PhysOpType, PhysicalOp

#: (cpu_per_row, io_per_byte, out_per_row, nlogn) — deliberately generic and
#: mis-calibrated relative to the simulator's ground truth: CPU-heavy
#: operators are over-priced by 5-10x (legacy hardware calibration), while
#: UDFs and network exchange are badly under-priced.
DEFAULT_COEFFICIENTS: dict[PhysOpType, tuple[float, float, float, bool]] = {
    PhysOpType.EXTRACT: (8.0e-7, 4.0e-9, 0.0, False),
    PhysOpType.FILTER: (3.0e-6, 0.0, 0.0, False),
    PhysOpType.COMPUTE: (1.2e-6, 0.0, 0.0, False),
    PhysOpType.PROCESS: (1.2e-6, 0.0, 0.0, False),  # UDF priced as compute
    PhysOpType.HASH_JOIN: (2.5e-5, 0.0, 2.0e-6, False),
    PhysOpType.MERGE_JOIN: (2.0e-6, 0.0, 2.0e-6, False),
    PhysOpType.HASH_AGGREGATE: (2.2e-5, 0.0, 3.0e-6, False),
    PhysOpType.STREAM_AGGREGATE: (1.5e-6, 0.0, 3.0e-6, False),
    PhysOpType.LOCAL_AGGREGATE: (1.0e-5, 0.0, 3.0e-6, False),
    PhysOpType.SORT: (1.5e-6, 0.0, 0.0, True),
    PhysOpType.TOP_K: (8.0e-6, 0.0, 0.0, False),
    PhysOpType.EXCHANGE: (3.0e-7, 9.0e-9, 0.0, False),  # network under-priced
    PhysOpType.UNION_ALL: (8.0e-7, 0.0, 0.0, False),
    PhysOpType.OUTPUT: (1.5e-6, 2.4e-8, 0.0, False),
}


class DefaultCostModel(CostModelBase):
    """SCOPE's default hand-crafted cost model (reproduction)."""

    #: Global inflation factor: legacy calibration against older hardware.
    inflation = 8.0

    #: "Robustness" saturation: row estimates are clamped to a magic constant
    #: so that a single mis-estimated operator cannot blow up a plan's cost.  A classic hand-tuned-cost-model hack — and the reason
    #: such models flat-line on exactly the operators that matter most.
    row_cap = 2.0e6

    def __init__(self, coefficients: dict[PhysOpType, tuple[float, float, float, bool]] | None = None) -> None:
        self.coefficients = coefficients or DEFAULT_COEFFICIENTS

    @property
    def supports_replay_costing(self) -> bool:
        """Replay-safe unless the pricing formula itself was overridden.

        Subclasses that merely retune ``inflation`` / ``row_cap`` /
        ``coefficients`` still price exactly through
        :meth:`operator_cost_from_stats`, so the skeleton replay stays
        engaged for them; overriding either costing method opts out.
        """
        cls = type(self)
        return (
            cls.operator_cost is DefaultCostModel.operator_cost
            and cls.operator_cost_from_stats is DefaultCostModel.operator_cost_from_stats
        )

    def operator_cost(
        self,
        op: PhysicalOp,
        estimator: CardinalityEstimator,
        partition_override: int | None = None,
    ) -> float:
        return self.operator_cost_from_stats(
            op.op_type,
            estimator.estimate_input(op),
            estimator.estimate(op),
            op.children[0].row_bytes if op.children else op.row_bytes,
            partition_override or op.partition_count,
        )

    def operator_cost_from_stats(
        self,
        op_type: PhysOpType,
        estimated_input: float,
        estimated_output: float,
        input_row_bytes: float,
        partition_count: int,
    ) -> float:
        """The cost formula on raw statistics.

        Backs :meth:`operator_cost`.  The skeleton planner's replay search
        (``repro.optimizer.skeleton.SkeletonPlanner._cost``) inlines a copy
        of this exact expression for speed — keep the two in sync; the
        parity suite (``tests/workload/test_batched_parity.py``) pins the
        equivalence.
        """
        cpu, io, out, nlogn = self.coefficients[op_type]
        partitions = float(partition_count)
        rows_in = min(estimated_input, self.row_cap) / partitions
        rows_out = min(estimated_output, self.row_cap) / partitions
        cost = io * rows_in * input_row_bytes + out * rows_out
        if nlogn:
            cost += cpu * rows_in * math.log2(rows_in + 2.0)
        else:
            cost += cpu * rows_in
        return self.inflation * cost + 1e-4
