"""Heuristic cost models: the baselines Cleo replaces.

``DefaultCostModel`` reproduces the paper's default SCOPE cost model — a
hand-crafted combination of statistics whose estimates are "usually way off"
(Section 2.4) — and ``TunedCostModel`` the manually-improved variant that is
"available for SCOPE queries under a flag" and only marginally better.
"""

from repro.cost.default_model import DefaultCostModel
from repro.cost.interface import CostExplanation, CostModel, CostModelBase, plan_cost
from repro.cost.tuned_model import TunedCostModel

__all__ = [
    "CostExplanation",
    "CostModel",
    "CostModelBase",
    "DefaultCostModel",
    "TunedCostModel",
    "plan_cost",
]
