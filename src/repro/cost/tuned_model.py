"""The manually-tuned cost model (the paper's "alternate model under a flag").

The SCOPE team "put in significant efforts to improve their default cost
model" by accounting for newer hardware and operator implementations; the
result improves correlation from 0.04 to only 0.10 (Section 2.4).  We model
that outcome: the tuned model starts from the true coefficient *structure*
(the part careful engineering can get right) but its per-operator
calibration remains off by factors of 0.4-3 — recalibrating a fleet-wide
constant per operator cannot capture behaviour that actually varies per
template — it still prices UDFs with a flat factor, and it still consumes
the same estimated cardinalities.
"""

from __future__ import annotations

import math

from repro.cardinality.estimator import CardinalityEstimator
from repro.cost.interface import CostModelBase
from repro.execution.ground_truth import GROUND_TRUTH_COEFFICIENTS
from repro.plan.physical import PhysOpType, PhysicalOp


class TunedCostModel(CostModelBase):
    """Manually-improved heuristic model: better structure, same blindness."""

    #: Residual per-operator mis-calibration: the tuned constants were fitted
    #: on a handful of canary jobs whose template multipliers leaked into the
    #: per-operator constants, leaving family-level errors of up to ~3x.
    _FUDGE: dict[PhysOpType, float] = {
        PhysOpType.EXTRACT: 0.45,
        PhysOpType.FILTER: 2.8,
        PhysOpType.COMPUTE: 0.6,
        PhysOpType.PROCESS: 3.2,  # flat "UDFs are slow" penalty
        PhysOpType.HASH_JOIN: 0.5,
        PhysOpType.MERGE_JOIN: 2.4,
        PhysOpType.HASH_AGGREGATE: 2.6,
        PhysOpType.STREAM_AGGREGATE: 0.4,
        PhysOpType.LOCAL_AGGREGATE: 1.8,
        PhysOpType.SORT: 0.5,
        PhysOpType.TOP_K: 2.2,
        PhysOpType.EXCHANGE: 0.4,
        PhysOpType.UNION_ALL: 1.6,
        PhysOpType.OUTPUT: 2.0,
    }

    #: Operators whose per-partition scheduling overhead the tuning captured.
    _SETUP_AWARE = frozenset({PhysOpType.EXCHANGE, PhysOpType.EXTRACT})

    #: The tuned model raised the default model's saturation cap by 10x but
    #: kept the idea — production jobs still exceed it routinely.
    row_cap = 2.0e7

    @property
    def supports_replay_costing(self) -> bool:
        """Replay-safe unless the pricing formula itself was overridden."""
        cls = type(self)
        return (
            cls.operator_cost is TunedCostModel.operator_cost
            and cls.operator_cost_from_stats is TunedCostModel.operator_cost_from_stats
        )

    def operator_cost(
        self,
        op: PhysicalOp,
        estimator: CardinalityEstimator,
        partition_override: int | None = None,
    ) -> float:
        return self.operator_cost_from_stats(
            op.op_type,
            estimator.estimate_input(op),
            estimator.estimate(op),
            op.children[0].row_bytes if op.children else op.row_bytes,
            partition_override or op.partition_count,
        )

    def operator_cost_from_stats(
        self,
        op_type: PhysOpType,
        estimated_input: float,
        estimated_output: float,
        input_row_bytes: float,
        partition_count: int,
    ) -> float:
        """The tuned formula on raw statistics.

        Backs :meth:`operator_cost` and the skeleton replay's stats-backed
        costing hook (the replay feeds it the same estimates it would have
        pulled from the estimator, so costs are bitwise identical).
        """
        coef = GROUND_TRUTH_COEFFICIENTS[op_type]
        fudge = self._FUDGE[op_type]
        partitions = float(partition_count)
        rows_in = min(estimated_input, self.row_cap) / partitions
        rows_out = min(estimated_output, self.row_cap) / partitions

        cost = coef.io * rows_in * input_row_bytes + coef.out * rows_out
        if coef.nlogn:
            cost += coef.cpu * rows_in * math.log2(rows_in + 2.0)
        else:
            cost += coef.cpu * rows_in
        if op_type in self._SETUP_AWARE:
            cost += coef.setup * partitions
        return fudge * cost + 1e-4
