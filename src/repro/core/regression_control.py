"""Regression-avoidance techniques from Section 6.7.

The paper lists several practical ways to keep learned cost models from
regressing production jobs; two are implemented here:

* **Dual planning** ("optimize a query twice, with and without Cleo, and
  select the plan with the better overall latency as predicted by the
  learned models, since they are highly accurate and correlated"):
  :class:`DualPlanner`.
* **Model quarantine** ("monitor the performance of jobs ... isolate models
  that lead to performance regression and discard them from the feedback"):
  :class:`ModelQuarantine` compares predictions against observed runtimes
  and removes persistently wrong templates from the store, letting them
  self-correct on the next training cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.cardinality.estimator import CardinalityEstimator
from repro.core.config import ModelKind
from repro.core.model_store import ModelStore, signature_for
from repro.core.predictor import CleoPredictor
from repro.cost.interface import CostModel, plan_cost
from repro.execution.runtime_log import RunLog
from repro.plan.logical import LogicalOp

if TYPE_CHECKING:  # the optimizer imports core; avoid the import cycle
    from repro.optimizer.planner import PlannedJob, QueryPlanner


@dataclass
class DualPlanOutcome:
    """Result of planning a query under both optimizers."""

    chosen: PlannedJob
    default_plan: PlannedJob
    cleo_plan: PlannedJob
    used_cleo: bool


class DualPlanner:
    """Optimize twice and keep the plan the learned models prefer.

    Both optimizations take only milliseconds-scale planner time (the
    paper's point), and the learned models act as the judge because they are
    the accurate, runtime-correlated scorer.
    """

    def __init__(
        self,
        default_planner: QueryPlanner,
        cleo_planner: QueryPlanner,
        judge: CostModel,
        estimator: CardinalityEstimator,
    ) -> None:
        self.default_planner = default_planner
        self.cleo_planner = cleo_planner
        self.judge = judge
        self.estimator = estimator

    def plan(self, logical_root: LogicalOp) -> DualPlanOutcome:
        default_job = self.default_planner.plan(logical_root)
        cleo_job = self.cleo_planner.plan(logical_root)
        default_cost = plan_cost(self.judge, default_job.plan, self.estimator)
        cleo_cost = plan_cost(self.judge, cleo_job.plan, self.estimator)
        use_cleo = cleo_cost <= default_cost
        return DualPlanOutcome(
            chosen=cleo_job if use_cleo else default_job,
            default_plan=default_job,
            cleo_plan=cleo_job,
            used_cleo=use_cleo,
        )


@dataclass
class QuarantineReport:
    """What the quarantine pass removed."""

    removed: dict[ModelKind, int] = field(default_factory=dict)
    inspected: int = 0

    @property
    def total_removed(self) -> int:
        return sum(self.removed.values())


class ModelQuarantine:
    """Discard individual models whose predictions regress against reality.

    A model is quarantined when, over at least ``min_observations`` test
    records, its median |log prediction ratio| exceeds ``tolerance_factor``
    (e.g. 4.0 means "persistently off by more than 4x").  Removal is safe:
    the fallback chain and the combined model's coverage flags degrade
    gracefully, and the next training cycle can re-learn the template.

    Every removal is also recorded in an ordered **ledger** of
    ``(kind, signature)`` pairs, so quarantine decisions survive a process
    restart: persist the ledger (see :func:`repro.core.serialization.
    quarantine_to_dict`), then :meth:`replay` it over a freshly loaded
    store.  Replay is idempotent — already-absent signatures are no-ops —
    and a retrained model re-adding a ledgered signature is dropped again
    on the next replay, which is the conservative posture until
    :meth:`clear_ledger` forgives it.
    """

    def __init__(self, tolerance_factor: float = 4.0, min_observations: int = 5) -> None:
        if tolerance_factor <= 1.0:
            raise ValueError("tolerance_factor must exceed 1.0")
        self.tolerance_factor = tolerance_factor
        self.min_observations = min_observations
        #: Ordered set of quarantined (kind, signature) pairs.
        self._ledger: dict[tuple[ModelKind, int], None] = {}

    # ------------------------------------------------------------------ #
    # Durable ledger
    # ------------------------------------------------------------------ #

    def ledger(self) -> tuple[tuple[ModelKind, int], ...]:
        """Every quarantined (kind, signature), in quarantine order."""
        return tuple(self._ledger)

    def record(self, kind: ModelKind, signature: int) -> None:
        """Ledger one quarantine decision (idempotent)."""
        self._ledger[(kind, int(signature))] = None

    def restore_ledger(
        self, entries: "list[tuple[ModelKind, int]] | tuple[tuple[ModelKind, int], ...]"
    ) -> None:
        """Replace the ledger with persisted entries (restart path)."""
        self._ledger = {(kind, int(signature)): None for kind, signature in entries}

    def clear_ledger(self) -> None:
        """Forgive every ledgered signature (e.g. after a clean retrain)."""
        self._ledger = {}

    def replay(self, store: ModelStore) -> int:
        """Re-apply the ledger to a store; returns how many were removed.

        Safe to run on every restart: removals of absent signatures are
        idempotent no-ops (:meth:`ModelStore.remove` returns ``False``).
        """
        removed = 0
        for kind, signature in self._ledger:
            if store.remove(kind, signature):
                removed += 1
        return removed

    def audit(self, store: ModelStore, log: RunLog) -> QuarantineReport:
        """Remove persistently wrong models, returning what was dropped."""
        ratios: dict[tuple[ModelKind, int], list[float]] = {}
        inspected = 0
        for record in log.operator_records():
            inspected += 1
            for kind in ModelKind:
                signature = signature_for(kind, record.signatures)
                model = store.get(kind, signature)
                if model is None:
                    continue
                predicted = model.predict_one(record.features)
                ratio = abs(
                    np.log((predicted + 1e-3) / (record.actual_latency + 1e-3))
                )
                ratios.setdefault((kind, signature), []).append(float(ratio))

        report = QuarantineReport(inspected=inspected)
        threshold = float(np.log(self.tolerance_factor))
        for (kind, signature), values in ratios.items():
            if len(values) < self.min_observations:
                continue
            if float(np.median(values)) > threshold:
                store.remove(kind, signature)
                self.record(kind, signature)
                report.removed[kind] = report.removed.get(kind, 0) + 1
        return report

    def quarantine(self, store: ModelStore, kind: ModelKind, signature: int) -> bool:
        """Remove one model caught misbehaving at the serving boundary.

        The statistical :meth:`audit` needs a log of observations; the
        serving tier instead catches red-handed offenders (non-finite or
        negative predictions) and removes them directly.  Idempotent:
        returns ``False`` when the model is already gone, so repeated
        repair passes never double-count a removal.
        """
        if store.get(kind, signature) is None:
            return False
        store.remove(kind, signature)
        self.record(kind, signature)
        return True

    def audit_predictor(self, predictor: CleoPredictor, log: RunLog) -> QuarantineReport:
        return self.audit(predictor.store, log)
