"""Model store: the signature-keyed hash map loaded by the optimizer.

"All models relevant for a cluster are loaded upfront by the optimizer, into
a hash map with keys as signatures of models, to avoid expensive lookup calls
during optimization" (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SPECIFICITY_ORDER, ModelKind
from repro.core.learned_model import LearnedCostModel
from repro.plan.signatures import SignatureBundle


#: The SignatureBundle / FeatureTable signature column that keys each kind.
SIGNATURE_FIELDS: dict[ModelKind, str] = {
    ModelKind.OP_SUBGRAPH: "strict",
    ModelKind.OP_SUBGRAPH_APPROX: "approx",
    ModelKind.OP_INPUT: "input",
    ModelKind.OPERATOR: "operator",
}


def signature_for(kind: ModelKind, bundle: SignatureBundle) -> int:
    """The bundle component that keys models of ``kind``."""
    return getattr(bundle, SIGNATURE_FIELDS[kind])


@dataclass
class ModelStore:
    """All trained individual models for one cluster."""

    models: dict[ModelKind, dict[int, LearnedCostModel]] = field(
        default_factory=lambda: {kind: {} for kind in ModelKind}
    )

    def add(self, kind: ModelKind, signature: int, model: LearnedCostModel) -> None:
        self.models[kind][signature] = model

    def get(self, kind: ModelKind, signature: int) -> LearnedCostModel | None:
        return self.models[kind].get(signature)

    def lookup(self, kind: ModelKind, bundle: SignatureBundle) -> LearnedCostModel | None:
        return self.get(kind, signature_for(kind, bundle))

    def most_specific(
        self, bundle: SignatureBundle
    ) -> tuple[ModelKind, LearnedCostModel] | None:
        """The most specialized model covering this operator, if any."""
        for kind in SPECIFICITY_ORDER:
            model = self.lookup(kind, bundle)
            if model is not None:
                return kind, model
        return None

    def count(self, kind: ModelKind | None = None) -> int:
        if kind is not None:
            return len(self.models[kind])
        return sum(len(by_sig) for by_sig in self.models.values())

    def covers(self, kind: ModelKind, bundle: SignatureBundle) -> bool:
        return self.lookup(kind, bundle) is not None

    @property
    def memory_bytes(self) -> int:
        """Approximate in-memory footprint of all loaded models."""
        return sum(
            model.memory_bytes for by_sig in self.models.values() for model in by_sig.values()
        )

    def describe(self) -> str:
        parts = [f"{kind.value}: {len(by_sig)}" for kind, by_sig in self.models.items()]
        return f"ModelStore({', '.join(parts)})"
