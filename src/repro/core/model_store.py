"""Model store: the signature-keyed hash map loaded by the optimizer.

"All models relevant for a cluster are loaded upfront by the optimizer, into
a hash map with keys as signatures of models, to avoid expensive lookup calls
during optimization" (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.config import SPECIFICITY_ORDER, ModelKind
from repro.core.learned_model import LearnedCostModel
from repro.plan.signatures import SignatureBundle

if TYPE_CHECKING:  # pragma: no cover - typing only (import cycle guard)
    from repro.core.packed import PackedModelBank


#: The SignatureBundle / FeatureTable signature column that keys each kind.
SIGNATURE_FIELDS: dict[ModelKind, str] = {
    ModelKind.OP_SUBGRAPH: "strict",
    ModelKind.OP_SUBGRAPH_APPROX: "approx",
    ModelKind.OP_INPUT: "input",
    ModelKind.OPERATOR: "operator",
}


def signature_for(kind: ModelKind, bundle: SignatureBundle) -> int:
    """The bundle component that keys models of ``kind``."""
    return getattr(bundle, SIGNATURE_FIELDS[kind])


@dataclass
class ModelStore:
    """All trained individual models for one cluster.

    The store tracks a mutation ``version`` so derived artifacts — the
    packed inference bank and the memory-footprint total — can be cached
    lazily and recompiled only when :meth:`add`/:meth:`remove` actually
    changed the model set.
    """

    models: dict[ModelKind, dict[int, LearnedCostModel]] = field(
        default_factory=lambda: {kind: {} for kind in ModelKind}
    )
    #: Bumped on every add/remove; consumers key caches on it.  Excluded
    #: from equality: stores with the same models are the same store.
    version: int = field(default=0, repr=False, compare=False)
    _packed: "PackedModelBank | None" = field(default=None, repr=False, compare=False)
    _packed_version: int = field(default=-1, repr=False, compare=False)
    _memory_bytes: int | None = field(default=None, repr=False, compare=False)

    def add(self, kind: ModelKind, signature: int, model: LearnedCostModel) -> None:
        self.models[kind][signature] = model
        self._invalidate()

    def remove(self, kind: ModelKind, signature: int) -> bool:
        """Drop one model (quarantine path); derived caches recompile.

        Removing a signature that was never added — or was already removed
        — is an idempotent no-op returning ``False``: replaying a persisted
        quarantine ledger over a freshly loaded store must never raise,
        and a no-op removal leaves the compiled bank valid.
        """
        if signature not in self.models[kind]:
            return False
        del self.models[kind][signature]
        self._invalidate()
        return True

    def _invalidate(self) -> None:
        self.version += 1
        self._memory_bytes = None

    def packed_bank(self) -> "PackedModelBank":
        """The packed inference bank, compiled lazily and version-checked.

        Recompiles automatically after any :meth:`add`/:meth:`remove`, so a
        feedback-loop retrain or a quarantine sweep can never serve stale
        coefficients.
        """
        if self._packed is None or self._packed_version != self.version:
            from repro.core.packed import PackedModelBank  # deferred: cycle

            self._packed = PackedModelBank.compile(self)
            self._packed_version = self.version
        return self._packed

    def get(self, kind: ModelKind, signature: int) -> LearnedCostModel | None:
        return self.models[kind].get(signature)

    def lookup(self, kind: ModelKind, bundle: SignatureBundle) -> LearnedCostModel | None:
        return self.get(kind, signature_for(kind, bundle))

    def most_specific(
        self, bundle: SignatureBundle
    ) -> tuple[ModelKind, LearnedCostModel] | None:
        """The most specialized model covering this operator, if any."""
        for kind in SPECIFICITY_ORDER:
            model = self.lookup(kind, bundle)
            if model is not None:
                return kind, model
        return None

    def count(self, kind: ModelKind | None = None) -> int:
        if kind is not None:
            return len(self.models[kind])
        return sum(len(by_sig) for by_sig in self.models.values())

    def covers(self, kind: ModelKind, bundle: SignatureBundle) -> bool:
        return self.lookup(kind, bundle) is not None

    @property
    def memory_bytes(self) -> int:
        """Approximate in-memory footprint of all loaded models.

        Cached (the serving layer's ``describe``/stats hit this per call)
        and recomputed only after :meth:`add`/:meth:`remove`.
        """
        if self._memory_bytes is None:
            self._memory_bytes = sum(
                model.memory_bytes
                for by_sig in self.models.values()
                for model in by_sig.values()
            )
        return self._memory_bytes

    def describe(self) -> str:
        parts = [f"{kind.value}: {len(by_sig)}" for kind, by_sig in self.models.items()]
        return f"ModelStore({', '.join(parts)})"
