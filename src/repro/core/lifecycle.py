"""Model lifecycle: versioned registry, retraining cadence, drift control.

Section 5.1 of the paper fixes the feedback loop's cadence empirically:
"a training window of two days and a training frequency of every ten days
results in acceptable accuracy and coverage".  Section 6.7 adds the
operational safeguards used in production: monitor models in
pre-production, discard the ones that regress, and rely on the continuous
feedback loop to self-correct.

This module packages those mechanics:

* :class:`RetrainPolicy` — the knobs (window, frequency, drift trigger);
* :class:`ModelRegistry` — versioned predictor snapshots with rollback,
  the stand-in for the paper's model store "backed by a SQL database";
* :class:`LifecycleManager` — replays a multi-day run log through the
  policy: trains on schedule, publishes versions, scores each day with the
  active version, triggers early retrains on drift, and rolls back
  versions that regress against their predecessor (the Section 6.7
  pre-production check).

The per-day quality series it produces is what the training-window
ablation benchmark sweeps.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from statistics import median
from typing import TYPE_CHECKING

from repro.common.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.common.chaos import PipelineChaos
from repro.core.config import CleoConfig
from repro.core.predictor import CleoPredictor
from repro.core.robustness import ModelQuality, evaluate_predictor_on_log
from repro.core.trainer import CleoTrainer
from repro.execution.runtime_log import RunLog


@dataclass(frozen=True)
class RetrainPolicy:
    """When and on how much data to retrain.

    Attributes:
        window_days: how many trailing days feed the individual models
            (the paper's choice: 2).
        frequency_days: scheduled days between retrains (the paper: 10).
        drift_threshold_pct: optional early-retrain trigger — retrain the
            next morning whenever a day's median error exceeds this.
        drift_window_days: how many trailing scored days feed the rolling
            drift detector.
        drift_degradation_factor: optional *relative* early-retrain
            trigger — retrain when the rolling median of the last
            ``drift_window_days`` daily median errors exceeds the active
            version's baseline (its first scored day) by this factor.
            Unlike ``drift_threshold_pct`` it needs no absolute error
            budget, so it fires on degradation even for workloads whose
            healthy error level is unknown up front.
        regression_factor: a freshly published version whose first-day
            median error exceeds the previous version's by more than this
            factor is rolled back (Section 6.7's pre-production gate).
    """

    window_days: int = 2
    frequency_days: int = 10
    drift_threshold_pct: float | None = None
    drift_window_days: int = 3
    drift_degradation_factor: float | None = None
    regression_factor: float | None = 2.0

    def __post_init__(self) -> None:
        if self.window_days < 1:
            raise ValidationError("window_days must be >= 1")
        if self.frequency_days < 1:
            raise ValidationError("frequency_days must be >= 1")
        if self.drift_threshold_pct is not None and self.drift_threshold_pct <= 0:
            raise ValidationError("drift_threshold_pct must be positive")
        if self.drift_window_days < 1:
            raise ValidationError("drift_window_days must be >= 1")
        if (
            self.drift_degradation_factor is not None
            and self.drift_degradation_factor <= 1.0
        ):
            raise ValidationError("drift_degradation_factor must exceed 1.0")
        if self.regression_factor is not None and self.regression_factor <= 1.0:
            raise ValidationError("regression_factor must exceed 1.0")


@dataclass(frozen=True)
class ModelVersion:
    """One published predictor snapshot."""

    version: int
    trained_on_day: int
    window: tuple[int, ...]
    predictor: CleoPredictor

    def describe(self) -> str:
        days = ", ".join(str(d) for d in self.window)
        return (
            f"v{self.version} (published day {self.trained_on_day}, "
            f"window [{days}], {self.predictor.model_count} models)"
        )


class ModelRegistry:
    """Versioned predictor snapshots with activation and rollback.

    The paper serves models "either from a text file ... or using a web
    service that is backed by a SQL database"; operationally the registry
    is that store's control plane — every published version is retained so
    a regressing one can be discarded without retraining.
    """

    def __init__(self) -> None:
        self._versions: list[ModelVersion] = []
        self._active: int | None = None

    # ------------------------------------------------------------------ #
    # Publishing and activation
    # ------------------------------------------------------------------ #

    def publish(
        self, predictor: CleoPredictor, day: int, window: tuple[int, ...]
    ) -> ModelVersion:
        """Store a new version and make it active."""
        version = ModelVersion(
            version=len(self._versions) + 1,
            trained_on_day=day,
            window=window,
            predictor=predictor,
        )
        self._versions.append(version)
        self._active = len(self._versions) - 1
        return version

    def active(self) -> ModelVersion:
        if self._active is None:
            raise ValidationError("registry has no published version")
        return self._versions[self._active]

    def rollback(self) -> ModelVersion:
        """Reactivate the version preceding the active one."""
        if self._active is None or self._active == 0:
            raise ValidationError("no earlier version to roll back to")
        self._active -= 1
        return self._versions[self._active]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def version_count(self) -> int:
        return len(self._versions)

    @property
    def has_active(self) -> bool:
        return self._active is not None

    def get(self, version: int) -> ModelVersion:
        for candidate in self._versions:
            if candidate.version == version:
                return candidate
        raise ValidationError(f"unknown version {version}")

    def history(self) -> tuple[ModelVersion, ...]:
        return tuple(self._versions)


@dataclass(frozen=True)
class DayOutcome:
    """One day of the lifecycle replay."""

    day: int
    active_version: int
    quality: ModelQuality
    retrained: bool
    rolled_back: bool

    @property
    def median_error_pct(self) -> float:
        return self.quality.median_error_pct

    @property
    def pearson(self) -> float:
        return self.quality.pearson


@dataclass
class LifecycleManager:
    """Replays a run log through a retraining policy, day by day.

    Each simulated morning the manager decides whether to retrain (by
    schedule or by yesterday's drift), publishes and gates the resulting
    version, and then scores the active version on the day's fresh jobs.
    Day scoring is strictly out-of-sample: the active version never saw
    the day it is scored on.

    With ``state_path`` set, the manager is **durable**: after every
    completed step the full lifecycle state (registry versions + active
    pointer, last train day, armed drift trigger, rolling error window,
    baseline) is committed with an atomic temp-file-then-rename write.
    A crash at *any* point mid-step — including between the in-memory
    publish and the gate — leaves the previous step's state on disk, so a
    restarted manager (:meth:`resume`) never observes a half-published
    version: it simply retries the whole day, and the retry's retrain is
    the only one the durable registry ever records.  ``chaos`` injects
    deterministic crashes at named step points to prove exactly that.
    """

    policy: RetrainPolicy = field(default_factory=RetrainPolicy)
    config: CleoConfig | None = None
    registry: ModelRegistry = field(default_factory=ModelRegistry)
    state_path: str | Path | None = None
    chaos: "PipelineChaos | None" = None

    def __post_init__(self) -> None:
        self._trainer = CleoTrainer(self.config)
        self._last_train_day: int | None = None
        self._drift_pending = False
        self._error_window: deque[float] = deque(maxlen=self.policy.drift_window_days)
        self._baseline_error: float | None = None
        if self.state_path is not None:
            self.state_path = Path(self.state_path)

    @classmethod
    def resume(
        cls,
        state_path: str | Path,
        policy: RetrainPolicy | None = None,
        config: CleoConfig | None = None,
        chaos: "PipelineChaos | None" = None,
    ) -> "LifecycleManager":
        """A manager resumed from durable state (fresh when none exists).

        The restart half of the crash-recovery contract: whatever the dead
        process had durably committed — published versions, the active
        pointer (including a gate rollback), an armed drift trigger, the
        rolling error window — is exactly what the resumed manager serves
        and decides from.
        """
        manager = cls(
            policy=policy or RetrainPolicy(),
            config=config,
            state_path=state_path,
            chaos=chaos,
        )
        path = Path(state_path)
        if path.exists():
            from repro.core.serialization import lifecycle_state_apply

            lifecycle_state_apply(manager, json.loads(path.read_text()), config)
        return manager

    @property
    def trainer(self) -> CleoTrainer:
        """The manager's trainer (exposes the data-quality audit trail)."""
        return self._trainer

    @property
    def drift_pending(self) -> bool:
        """Whether a drift trigger has armed an early retrain."""
        return self._drift_pending

    @property
    def rolling_median_error(self) -> float | None:
        """Median of the last ``drift_window_days`` daily median errors."""
        if not self._error_window:
            return None
        return float(median(self._error_window))

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #

    def run(self, log: RunLog, days: list[int] | None = None) -> list[DayOutcome]:
        """Replay ``days`` (default: all days after the first window).

        The first ``window_days`` days are history used for the initial
        training; outcomes start on the following day.
        """
        all_days = log.days
        if len(all_days) <= self.policy.window_days:
            raise ValidationError(
                f"log must span more than window_days={self.policy.window_days} days"
            )
        score_days = days if days is not None else all_days[self.policy.window_days:]
        outcomes: list[DayOutcome] = []
        for day in score_days:
            outcomes.append(self.step(log, day))
        return outcomes

    def step(self, log: RunLog, day: int) -> DayOutcome:
        """One simulated day: maybe retrain, then score the active version."""
        day_log = log.filter(days=[day])
        if not len(day_log):
            raise ValidationError(f"log has no jobs on day {day}")

        retrained = False
        rolled_back = False
        if self._should_retrain(day):
            self._crash_check("retrain_start", day)
            window = self._window_for(log, day)
            predictor = self._trainer.train(
                log.filter(days=list(window)),
                individual_days=list(window),
                combined_days=[window[-1]],
            )
            self._crash_check("pre_publish", day)
            previous = self.registry.active() if self.registry.has_active else None
            self.registry.publish(predictor, day, window)
            self._last_train_day = day
            self._drift_pending = False
            retrained = True
            rolled_back = self._gate_new_version(previous, day_log)
            if not rolled_back:
                # A fresh version serves: its error level defines a new
                # drift baseline, so yesterday's degraded days must not
                # keep re-triggering retrains.
                self._error_window.clear()
                self._baseline_error = None
            if rolled_back:
                # The fresh version was discarded, so the stale predecessor
                # keeps serving.  Leave the early-retrain trigger armed:
                # without this the rollback also cleared the drift flag and
                # stamped today as the last training day, silencing the
                # trigger that caused the retrain and letting the stale
                # model serve for up to frequency_days — the opposite of
                # the "self-correct on the next cycle" contract.
                self._drift_pending = True
            self._crash_check("post_publish", day)

        quality = evaluate_predictor_on_log(
            self.registry.active().predictor, day_log, name=f"day{day}"
        )
        if (
            self.policy.drift_threshold_pct is not None
            and quality.median_error_pct > self.policy.drift_threshold_pct
        ):
            self._drift_pending = True
        self._track_drift(quality.median_error_pct)
        self._persist()
        return DayOutcome(
            day=day,
            active_version=self.registry.active().version,
            quality=quality,
            retrained=retrained,
            rolled_back=rolled_back,
        )

    # ------------------------------------------------------------------ #
    # Durability and chaos hooks
    # ------------------------------------------------------------------ #

    def _crash_check(self, point: str, day: int) -> None:
        """Raise an injected crash at a named step point, if armed.

        The hooks deliberately run *before* any durable write for their
        point, so a crash can never leave a torn commit — the worst case is
        redoing a day's work, never observing half of it.
        """
        if self.chaos is not None:
            self.chaos.check(point, day)

    def _persist(self) -> None:
        """Commit the full lifecycle state atomically (end of step only)."""
        if self.state_path is None:
            return
        from repro.core.serialization import (
            lifecycle_state_to_dict,
            save_json_atomic,
        )

        save_json_atomic(lifecycle_state_to_dict(self), Path(self.state_path))

    # ------------------------------------------------------------------ #
    # Policy internals
    # ------------------------------------------------------------------ #

    def _track_drift(self, median_error_pct: float) -> None:
        """Feed the rolling drift detector with one scored day.

        The first scored day of an active version sets the baseline (floored
        away from zero so a perfect first day cannot make every later error
        look like drift); once the window is full, a rolling median beyond
        ``baseline * drift_degradation_factor`` arms an early retrain.
        """
        if self._baseline_error is None:
            self._baseline_error = max(float(median_error_pct), 1e-6)
        self._error_window.append(float(median_error_pct))
        factor = self.policy.drift_degradation_factor
        if factor is None:
            return
        if len(self._error_window) < self.policy.drift_window_days:
            return
        if float(median(self._error_window)) > self._baseline_error * factor:
            self._drift_pending = True

    def _should_retrain(self, day: int) -> bool:
        if not self.registry.has_active or self._last_train_day is None:
            return True
        if self._drift_pending:
            return True
        return day - self._last_train_day >= self.policy.frequency_days

    def _window_for(self, log: RunLog, day: int) -> tuple[int, ...]:
        """The trailing ``window_days`` days of data strictly before ``day``."""
        history = [d for d in log.days if d < day]
        if not history:
            raise ValidationError(f"no history before day {day} to train on")
        return tuple(history[-self.policy.window_days:])

    def _gate_new_version(
        self, previous: ModelVersion | None, day_log: RunLog
    ) -> bool:
        """Section 6.7 pre-production gate; returns True when rolled back."""
        if previous is None or self.policy.regression_factor is None:
            return False
        fresh = evaluate_predictor_on_log(
            self.registry.active().predictor, day_log, name="fresh"
        )
        old = evaluate_predictor_on_log(previous.predictor, day_log, name="previous")
        if fresh.median_error_pct > old.median_error_pct * self.policy.regression_factor:
            self.registry.rollback()
            # The rolled-back version stays published (hence inspectable)
            # but inactive; the next scheduled retrain tries again.
            return True
        return False
