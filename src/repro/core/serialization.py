"""Model serialization: the feedback-loop transport format.

"Once trained, we serialize the models and feed them back to the optimizer.
The models can be served either from a text file, using an additional
compiler flag, or using a web service" (Section 5.1).  This module is that
text-file path: a JSON format that round-trips a full
:class:`~repro.core.model_store.ModelStore` and the combined model's
metadata, so a trained Cleo can be persisted by the trainer and loaded by an
optimizer process.

The individual models are linear, so their serialized form is exact (weights
+ scaler + target scale).  The combined FastTree model serializes its full
tree ensemble.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.combined import CombinedModel
from repro.core.config import CleoConfig, ModelKind
from repro.core.learned_model import LearnedCostModel
from repro.core.model_store import ModelStore
from repro.core.predictor import CleoPredictor
from repro.ml.gbm import FastTreeRegressor

FORMAT_VERSION = 1


def save_json_atomic(payload: dict[str, Any], path: str | Path) -> Path:
    """Write JSON durably: a temp file in the target directory, fsynced,
    then ``os.replace``d over the destination.

    The write-ahead primitive behind every piece of durable reliability
    state: a crash at any instant leaves either the old file or the new
    one on disk, never a torn half-write — the invariant the lifecycle
    manager's "no half-published version" recovery contract rests on.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent or Path("."), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(json.dumps(payload))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def _check_format(payload: dict[str, Any]) -> dict[str, Any]:
    if payload.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {payload.get('format_version')!r}"
        )
    return payload


# --------------------------------------------------------------------- #
# Individual models
# --------------------------------------------------------------------- #


def _learned_model_to_dict(model: LearnedCostModel) -> dict[str, Any]:
    net = model._net
    scaler = net._scaler
    if net.coef_ is None or scaler.mean_ is None or scaler.scale_ is None:
        raise ValueError("cannot serialize an unfitted model")
    return {
        "include_context": model.include_context,
        "n_samples": model.n_samples,
        "coef": net.coef_.tolist(),
        "intercept": net.intercept_,
        "y_scale": net._y_scale,
        "scaler_mean": scaler.mean_.tolist(),
        "scaler_scale": scaler.scale_.tolist(),
        "nonneg_indices": list(net.nonneg_indices),
    }


def _learned_model_from_dict(payload: dict[str, Any], config: CleoConfig) -> LearnedCostModel:
    model = LearnedCostModel(include_context=payload["include_context"], config=config)
    net = model._net
    net.coef_ = np.asarray(payload["coef"], dtype=float)
    net.intercept_ = float(payload["intercept"])
    net._y_scale = float(payload["y_scale"])
    net.nonneg_indices = tuple(payload["nonneg_indices"])
    net._scaler.mean_ = np.asarray(payload["scaler_mean"], dtype=float)
    net._scaler.scale_ = np.asarray(payload["scaler_scale"], dtype=float)
    model.n_samples = int(payload["n_samples"])
    model._fitted = True
    return model


# --------------------------------------------------------------------- #
# FastTree (combined model)
# --------------------------------------------------------------------- #


def _fasttree_to_dict(model: FastTreeRegressor) -> dict[str, Any]:
    trees = []
    for tree in model.trees_:
        assert tree._arrays is not None
        feature, threshold, left, right, value = tree._arrays
        trees.append(
            {
                "feature": feature.tolist(),
                "threshold": threshold.tolist(),
                "left": left.tolist(),
                "right": right.tolist(),
                "value": value.tolist(),
                "max_depth": tree.max_depth,
            }
        )
    return {
        "base_prediction": model.base_prediction_,
        "learning_rate": model.learning_rate,
        "log_target": model.log_target,
        "trees": trees,
    }


def _fasttree_from_dict(payload: dict[str, Any]) -> FastTreeRegressor:
    from repro.ml.tree import DecisionTreeRegressor

    model = FastTreeRegressor(
        n_estimators=max(1, len(payload["trees"])),
        learning_rate=float(payload["learning_rate"]),
        log_target=bool(payload["log_target"]),
    )
    model.base_prediction_ = float(payload["base_prediction"])
    model.trees_ = []
    for tree_payload in payload["trees"]:
        tree = DecisionTreeRegressor(max_depth=int(tree_payload["max_depth"]))
        tree._arrays = (
            np.asarray(tree_payload["feature"], dtype=np.int64),
            np.asarray(tree_payload["threshold"], dtype=float),
            np.asarray(tree_payload["left"], dtype=np.int64),
            np.asarray(tree_payload["right"], dtype=np.int64),
            np.asarray(tree_payload["value"], dtype=float),
        )
        model.trees_.append(tree)
    return model


# --------------------------------------------------------------------- #
# Store / predictor
# --------------------------------------------------------------------- #


def store_to_dict(store: ModelStore) -> dict[str, Any]:
    return {
        "format_version": FORMAT_VERSION,
        "models": {
            kind.value: {
                str(signature): _learned_model_to_dict(model)
                for signature, model in by_sig.items()
            }
            for kind, by_sig in store.models.items()
        },
    }


def store_from_dict(payload: dict[str, Any], config: CleoConfig | None = None) -> ModelStore:
    if payload.get("format_version") != FORMAT_VERSION:
        raise ValueError(f"unsupported format version {payload.get('format_version')!r}")
    config = config or CleoConfig()
    store = ModelStore()
    for kind_name, by_sig in payload["models"].items():
        kind = ModelKind(kind_name)
        for signature, model_payload in by_sig.items():
            store.add(kind, int(signature), _learned_model_from_dict(model_payload, config))
    return store


def predictor_to_dict(predictor: CleoPredictor) -> dict[str, Any]:
    """Serializable form of a trained predictor (store + combined model)."""
    payload: dict[str, Any] = store_to_dict(predictor.store)
    if predictor.combined is not None and predictor.combined.is_fitted:
        regressor = predictor.combined.regressor
        if not isinstance(regressor, FastTreeRegressor):
            raise ValueError("only FastTree combined models are serializable")
        payload["combined"] = _fasttree_to_dict(regressor)
    return payload


def predictor_from_dict(
    payload: dict[str, Any], config: CleoConfig | None = None
) -> CleoPredictor:
    """Inverse of :func:`predictor_to_dict`."""
    config = config or CleoConfig()
    store = store_from_dict(payload, config)
    combined = None
    if "combined" in payload:
        combined = CombinedModel(store, config=config, regressor=_fasttree_from_dict(payload["combined"]))
        combined._fitted = True
    return CleoPredictor(store=store, combined=combined)


def save_predictor(predictor: CleoPredictor, path: str | Path) -> None:
    """Serialize a trained predictor (store + combined model) to JSON."""
    Path(path).write_text(json.dumps(predictor_to_dict(predictor)))


def load_predictor(path: str | Path, config: CleoConfig | None = None) -> CleoPredictor:
    """Load a predictor previously written by :func:`save_predictor`."""
    return predictor_from_dict(json.loads(Path(path).read_text()), config)


# --------------------------------------------------------------------- #
# Model registry (lifecycle)
# --------------------------------------------------------------------- #


def registry_to_dict(registry: "ModelRegistry") -> dict[str, Any]:
    """Serializable form of a versioned model registry."""
    from repro.core.lifecycle import ModelRegistry  # local: avoid cycle

    assert isinstance(registry, ModelRegistry)
    return {
        "format_version": FORMAT_VERSION,
        "active_version": registry.active().version if registry.has_active else None,
        "versions": [
            {
                "version": version.version,
                "trained_on_day": version.trained_on_day,
                "window": list(version.window),
                "predictor": predictor_to_dict(version.predictor),
            }
            for version in registry.history()
        ],
    }


def registry_from_dict(
    payload: dict[str, Any], config: CleoConfig | None = None
) -> "ModelRegistry":
    """Inverse of :func:`registry_to_dict` (active version restored)."""
    from repro.core.lifecycle import ModelRegistry

    if payload.get("format_version") != FORMAT_VERSION:
        raise ValueError(f"unsupported format version {payload.get('format_version')!r}")
    registry = ModelRegistry()
    for entry in payload["versions"]:
        registry.publish(
            predictor_from_dict(entry["predictor"], config),
            day=entry["trained_on_day"],
            window=tuple(entry["window"]),
        )
    active = payload.get("active_version")
    if active is not None:
        while registry.active().version != active:
            registry.rollback()
    return registry


def save_registry(registry: "ModelRegistry", path: str | Path) -> None:
    """Persist a model registry (all versions + the active pointer)."""
    Path(path).write_text(json.dumps(registry_to_dict(registry)))


def load_registry(path: str | Path, config: CleoConfig | None = None) -> "ModelRegistry":
    """Load a registry previously written by :func:`save_registry`."""
    return registry_from_dict(json.loads(Path(path).read_text()), config)


# --------------------------------------------------------------------- #
# Reliability state: quarantine ledger, breaker snapshots, lifecycle
# --------------------------------------------------------------------- #


def quarantine_to_dict(quarantine: "ModelQuarantine") -> dict[str, Any]:
    """Serializable form of a quarantine policy plus its removal ledger."""
    return {
        "format_version": FORMAT_VERSION,
        "tolerance_factor": quarantine.tolerance_factor,
        "min_observations": quarantine.min_observations,
        "ledger": [
            [kind.value, str(signature)] for kind, signature in quarantine.ledger()
        ],
    }


def quarantine_from_dict(payload: dict[str, Any]) -> "ModelQuarantine":
    """Inverse of :func:`quarantine_to_dict`; replay the ledger with
    :meth:`~repro.core.regression_control.ModelQuarantine.replay`."""
    from repro.core.regression_control import ModelQuarantine  # local: cycle

    _check_format(payload)
    quarantine = ModelQuarantine(
        tolerance_factor=float(payload["tolerance_factor"]),
        min_observations=int(payload["min_observations"]),
    )
    quarantine.restore_ledger(
        [(ModelKind(kind), int(signature)) for kind, signature in payload["ledger"]]
    )
    return quarantine


def health_state_to_dict(snapshots: "list[dict[str, Any]]") -> dict[str, Any]:
    """Versioned envelope over per-shard breaker snapshots
    (:meth:`~repro.serving.shard.health.ShardHealth.snapshot`)."""
    return {
        "format_version": FORMAT_VERSION,
        "n_shards": len(snapshots),
        "shards": list(snapshots),
    }


def health_state_from_dict(payload: dict[str, Any]) -> "list[dict[str, Any]]":
    """The per-shard snapshots a router restores breakers from."""
    _check_format(payload)
    shards = list(payload["shards"])
    if len(shards) != int(payload["n_shards"]):
        raise ValueError("health state is torn: shard count mismatch")
    return shards


def lifecycle_state_to_dict(manager: "LifecycleManager") -> dict[str, Any]:
    """Full durable state of a lifecycle manager: the versioned registry
    plus the retrain/drift control state (last train day, armed drift
    trigger, rolling error window, baseline)."""
    return {
        "format_version": FORMAT_VERSION,
        "registry": registry_to_dict(manager.registry),
        "last_train_day": manager._last_train_day,
        "drift_pending": manager._drift_pending,
        "error_window": [float(e) for e in manager._error_window],
        "baseline_error": manager._baseline_error,
    }


def lifecycle_state_apply(
    manager: "LifecycleManager",
    payload: dict[str, Any],
    config: CleoConfig | None = None,
) -> "LifecycleManager":
    """Restore persisted lifecycle state into a fresh manager.

    The registry is rebuilt version by version (active pointer included),
    and the drift machinery resumes exactly where the dead process left
    it: an armed early-retrain trigger or a gate rollback survives the
    restart instead of silently disarming.
    """
    _check_format(payload)
    manager.registry = registry_from_dict(payload["registry"], config)
    manager._last_train_day = payload["last_train_day"]
    manager._drift_pending = bool(payload["drift_pending"])
    manager._error_window.clear()
    manager._error_window.extend(float(e) for e in payload["error_window"])
    baseline = payload["baseline_error"]
    manager._baseline_error = None if baseline is None else float(baseline)
    return manager
