"""Cleo's prediction front-end with the specificity fallback chain.

The combined model is the primary predictor (it covers every operator since
the operator model always contributes a meta-feature).  When the combined
model is absent — e.g. when experimenting with individual models only — the
most specific covering individual model answers, and a trained global mean
is the final fallback, so the predictor is total over any workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.combined import (
    CombinedModel,
    build_meta_matrix,
    build_meta_matrix_reference,
)
from repro.core.config import ModelKind
from repro.core.learned_model import ResourceProfile
from repro.core.model_store import ModelStore
from repro.core.packed import predict_most_specific
from repro.execution.runtime_log import OperatorRecord
from repro.features.featurizer import FeatureInput
from repro.features.table import FeatureTable
from repro.plan.signatures import SignatureBundle


@dataclass
class CleoPredictor:
    """Trained Cleo: the model store plus the combined meta-model."""

    store: ModelStore
    combined: CombinedModel | None = None
    fallback_cost: float = 1.0
    lookup_count: int = field(default=0, repr=False)

    #: Individual model kinds consulted per prediction (4) plus the combined
    #: model (1) — the paper's "each sample leads to five learned cost model
    #: predictions" accounting (Section 6.5).
    LOOKUPS_PER_PREDICTION = 5

    def predict(self, features: FeatureInput, signatures: SignatureBundle) -> float:
        """Predicted exclusive cost (seconds) of one operator instance."""
        self.lookup_count += self.LOOKUPS_PER_PREDICTION
        if self.combined is not None and self.combined.is_fitted:
            return self.combined.predict_one(features, signatures)
        best = self.store.most_specific(signatures)
        if best is not None:
            return best[1].predict_one(features)
        return self.fallback_cost

    def predict_record(self, record: OperatorRecord) -> float:
        return self.predict(record.features, record.signatures)

    def predict_with_kind(
        self, kind: ModelKind, features: FeatureInput, signatures: SignatureBundle
    ) -> float | None:
        """Prediction from one individual model, or None when uncovered."""
        model = self.store.lookup(kind, signatures)
        if model is None:
            return None
        self.lookup_count += 1
        return model.predict_one(features)

    # ------------------------------------------------------------------ #
    # Resource profiles (Section 5.3)
    # ------------------------------------------------------------------ #

    def resource_profile(
        self, features: FeatureInput, signatures: SignatureBundle
    ) -> ResourceProfile | None:
        """The most specific covering model's (theta_p, theta_c, theta_0)."""
        best = self.store.most_specific(signatures)
        if best is None:
            return None
        self.lookup_count += self.LOOKUPS_PER_PREDICTION
        return best[1].resource_profile(features)

    # ------------------------------------------------------------------ #
    # Coverage
    # ------------------------------------------------------------------ #

    def covers(self, kind: ModelKind, signatures: SignatureBundle) -> bool:
        return self.store.covers(kind, signatures)

    def coverage_fraction(self, kind: ModelKind, records: list[OperatorRecord]) -> float:
        """Fraction of records whose signature has a model of ``kind``."""
        if not records:
            return float("nan")
        covered = sum(1 for r in records if self.store.covers(kind, r.signatures))
        return covered / len(records)

    def reset_lookup_count(self) -> None:
        self.lookup_count = 0

    @property
    def model_count(self) -> int:
        return self.store.count()

    @property
    def memory_bytes(self) -> int:
        return self.store.memory_bytes

    def predict_records(
        self, records: list[OperatorRecord], table: FeatureTable | None = None
    ) -> np.ndarray:
        """Batched predictions for logged operators, in record order.

        Both branches run on the packed inference bank: the combined path
        through the packed meta-row builder + flat tree ensemble, the
        store-only path through the packed fallback chain
        (:func:`~repro.core.packed.predict_most_specific`) — each bitwise
        identical to per-record :meth:`predict_record`, with the same
        lookup accounting.  Callers that already materialized the records'
        columns (``log.to_table()``) can pass ``table`` to skip re-packing
        them.
        """
        records = list(records)
        if not records:
            return np.empty(0, dtype=float)
        if table is None:
            table = FeatureTable.from_records(records)
        elif len(table) != len(records):
            raise ValueError("table and records must align")
        self.lookup_count += len(records) * self.LOOKUPS_PER_PREDICTION
        if self.combined is not None and self.combined.is_fitted:
            return self.combined.predict_rows(build_meta_matrix(self.store, table))
        values, _, _ = predict_most_specific(self.store, table, self.fallback_cost)
        return values

    def predict_records_reference(
        self, records: list[OperatorRecord], table: FeatureTable | None = None
    ) -> np.ndarray:
        """The retained pre-packed serving path (benchmark/parity baseline).

        Combined: grouped object-graph meta rows + tree-at-a-time ensemble
        traversal.  Store-only: the per-record scalar fallback chain.  The
        packed :meth:`predict_records` must match this bit for bit.
        """
        records = list(records)
        if not records:
            return np.empty(0, dtype=float)
        if self.combined is not None and self.combined.is_fitted:
            self.lookup_count += len(records) * self.LOOKUPS_PER_PREDICTION
            if table is None:
                table = FeatureTable.from_records(records)
            elif len(table) != len(records):
                raise ValueError("table and records must align")
            return self.combined.predict_rows_reference(
                build_meta_matrix_reference(self.store, table)
            )
        return np.array([self.predict_record(r) for r in records], dtype=float)
