"""The training pipeline: from run logs to a ready predictor.

Mirrors Section 5.1's feedback loop: individual models are trained
independently per template signature (in SCOPE, in parallel on SCOPE
itself), then the combined model is trained on a *later* slice of the
workload so that the meta-features reflect the individual models'
generalization rather than their training fit.

The hot path is **columnar**: the run log is materialized once into a
:class:`~repro.features.table.FeatureTable`, the full derived feature
matrix is expanded with one vectorized pass per feature expression, groups
are formed with ``argsort``/``unique`` over the signature columns, all of a
kind's per-signature elastic nets are fitted in one batched Adam loop, and
the combined model's meta rows are built through the same grouped
vectorized prediction that the serving layer uses.  The per-record
reference implementations (``train_individual_reference`` /
``train_combined_reference``) are kept as the pinned scalar baseline: they
produce bitwise-identical models and feed the training-throughput
benchmark's before/after comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import DataQualityError
from repro.core.combined import CombinedModel, build_meta_matrix, build_meta_row
from repro.core.config import CleoConfig, ModelKind
from repro.core.learned_model import LearnedCostModel, fit_models_batched
from repro.core.model_store import SIGNATURE_FIELDS, ModelStore, signature_for
from repro.core.predictor import CleoPredictor
from repro.execution.runtime_log import RunLog
from repro.features.featurizer import FeatureInput, feature_names
from repro.features.table import FeatureTable
from repro.ml.base import Regressor


@dataclass(frozen=True)
class TrainingAudit:
    """What the trainer's data-quality gate saw and excised.

    One audit accumulates across the sanitization passes of a full
    :meth:`CleoTrainer.train` run (individual + combined slices); counts
    are raw per-rule tallies, so a row failing several rules appears in
    each of its rules but only once in ``rows_dropped``.
    """

    rows_seen: int = 0
    rows_kept: int = 0
    nonfinite_features: int = 0
    invalid_latency: int = 0
    duplicate_rows: int = 0

    @property
    def rows_dropped(self) -> int:
        return self.rows_seen - self.rows_kept

    @property
    def is_clean(self) -> bool:
        return self.rows_dropped == 0

    def merge(self, other: "TrainingAudit") -> "TrainingAudit":
        return TrainingAudit(
            rows_seen=self.rows_seen + other.rows_seen,
            rows_kept=self.rows_kept + other.rows_kept,
            nonfinite_features=self.nonfinite_features + other.nonfinite_features,
            invalid_latency=self.invalid_latency + other.invalid_latency,
            duplicate_rows=self.duplicate_rows + other.duplicate_rows,
        )

    def describe(self) -> str:
        return (
            f"TrainingAudit({self.rows_kept}/{self.rows_seen} rows kept; "
            f"{self.nonfinite_features} non-finite features, "
            f"{self.invalid_latency} invalid latencies, "
            f"{self.duplicate_rows} duplicates)"
        )


class CleoTrainer:
    """Trains the model store and the combined meta-model from run logs.

    ``sanitize`` (default on) runs every training table through the
    data-quality gate (:meth:`~repro.features.table.FeatureTable.
    sanitize_mask`): rows with non-finite features, NaN / negative / absurd
    latencies, or double-appended adjacency duplicates are excised before
    fitting, with per-rule counts accumulated in :attr:`last_audit`.  Clean
    tables short-circuit to the original object, so sanitized training is
    bitwise-identical to unsanitized training on healthy data.  A table
    that sanitizes to *zero* rows raises :class:`~repro.common.errors.
    DataQualityError` — the typed signal that an ingestion day is rotten,
    never a silent fit to garbage.  The scalar reference paths stay
    unsanitized: they are the pinned pre-gate baseline.
    """

    def __init__(self, config: CleoConfig | None = None, sanitize: bool = True) -> None:
        self.config = config or CleoConfig()
        self.sanitize = sanitize
        #: Merged audit of every sanitization pass since ``reset_audit``
        #: (``train`` / ``train_reference`` reset it on entry).
        self.last_audit: TrainingAudit | None = None

    # ------------------------------------------------------------------ #
    # Data-quality gate
    # ------------------------------------------------------------------ #

    def reset_audit(self) -> None:
        self.last_audit = None

    def _record_audit(self, audit: TrainingAudit) -> None:
        self.last_audit = (
            audit if self.last_audit is None else self.last_audit.merge(audit)
        )

    def _sanitized(self, table: FeatureTable) -> FeatureTable:
        """The gated view of a training table (the table itself when clean)."""
        if not self.sanitize or len(table) == 0 or not len(table.latency):
            return table
        keep, counts = table.sanitize_mask()
        kept = int(keep.sum())
        self._record_audit(
            TrainingAudit(
                rows_seen=len(table),
                rows_kept=kept,
                nonfinite_features=counts["nonfinite_features"],
                invalid_latency=counts["invalid_latency"],
                duplicate_rows=counts["duplicate_rows"],
            )
        )
        if kept == len(table):
            return table
        if kept == 0:
            raise DataQualityError(
                f"all {len(table)} training rows failed sanitization "
                f"({counts['nonfinite_features']} non-finite features, "
                f"{counts['invalid_latency']} invalid latencies, "
                f"{counts['duplicate_rows']} duplicates)"
            )
        return table.take(np.flatnonzero(keep))

    # ------------------------------------------------------------------ #
    # Individual models
    # ------------------------------------------------------------------ #

    def train_individual(self, log: RunLog) -> ModelStore:
        """One elastic net per (model kind, template signature).

        Only templates with at least ``config.min_samples`` occurrences get a
        model (the paper requires 5 occurrences per subgraph).  Groups are
        formed with array ops over the log's feature table and each kind's
        models are fitted in one batched optimization pass — bitwise
        identical to :meth:`train_individual_reference`.
        """
        table = self._sanitized(log.to_table())
        store = ModelStore()
        if len(table) == 0:
            return store
        full_matrix = table.feature_matrix(include_context=True)
        latencies = table.latency

        for kind in ModelKind:
            uniques, order, starts, counts = table.group_by_signature(
                SIGNATURE_FIELDS[kind]
            )
            keep = counts >= self.config.min_samples
            if not keep.any():
                continue
            # Compact the kept groups into one contiguous stack (original
            # record order preserved within each group by the stable sort).
            kept_rows = order[np.repeat(keep, counts)]
            kept_counts = counts[keep]
            kept_starts = np.concatenate(([0], np.cumsum(kept_counts)[:-1]))
            width = len(feature_names(kind.uses_context_features))

            models = [
                LearnedCostModel(
                    include_context=kind.uses_context_features, config=self.config
                )
                for _ in range(int(keep.sum()))
            ]
            fit_models_batched(
                models,
                full_matrix[kept_rows, :width],
                latencies[kept_rows],
                kept_starts,
                kept_counts,
            )
            for signature, model in zip(uniques[keep], models):
                store.add(kind, int(signature), model)
        return store

    def train_individual_reference(self, log: RunLog) -> ModelStore:
        """Per-record scalar reference for :meth:`train_individual`.

        Groups with dict appends and fits one model at a time; kept as the
        pinned baseline for the columnar path (parity tests, the training-
        throughput benchmark).
        """
        groups: dict[tuple[ModelKind, int], tuple[list[FeatureInput], list[float]]] = {}
        for record in log.operator_records():
            for kind in ModelKind:
                key = (kind, signature_for(kind, record.signatures))
                bucket = groups.get(key)
                if bucket is None:
                    bucket = ([], [])
                    groups[key] = bucket
                bucket[0].append(record.features)
                bucket[1].append(record.actual_latency)

        store = ModelStore()
        for (kind, signature), (inputs, latencies) in groups.items():
            if len(inputs) < self.config.min_samples:
                continue
            model = LearnedCostModel(
                include_context=kind.uses_context_features, config=self.config
            )
            model.fit(inputs, np.asarray(latencies))
            store.add(kind, signature, model)
        return store

    # ------------------------------------------------------------------ #
    # Combined model
    # ------------------------------------------------------------------ #

    def train_combined(
        self,
        store: ModelStore,
        log: RunLog,
        regressor: Regressor | None = None,
    ) -> CombinedModel:
        """Fit the meta-ensemble on the individual models' predictions.

        Meta rows are built in bulk through the serving layer's grouped
        vectorized prediction (:func:`~repro.core.combined.build_meta_matrix`)
        instead of one scalar ``build_meta_row`` call per record.
        """
        table = self._sanitized(log.to_table())
        if len(table) == 0:
            raise ValueError("no operator records to train the combined model on")
        combined = CombinedModel(store, config=self.config, regressor=regressor)
        matrix = build_meta_matrix(store, table)
        target_arr = np.asarray(table.latency)
        if len(matrix) > self.config.max_meta_samples:
            # repro: allow(wallclock-rng) -- raw config seed is intentional: the batched and scalar-reference trainers must draw the *identical* meta subsample, which sharing the explicit int seed guarantees (derive_rng would salt the two call sites apart)
            rng = np.random.default_rng(self.config.seed)
            take = rng.choice(
                len(matrix), size=self.config.max_meta_samples, replace=False
            )
            matrix, target_arr = matrix[take], target_arr[take]
        combined.fit_rows(matrix, target_arr)
        return combined

    def train_combined_reference(
        self,
        store: ModelStore,
        log: RunLog,
        regressor: Regressor | None = None,
    ) -> CombinedModel:
        """Per-record scalar reference for :meth:`train_combined`."""
        combined = CombinedModel(store, config=self.config, regressor=regressor)
        rows: list[np.ndarray] = []
        targets: list[float] = []
        for record in log.operator_records():
            rows.append(build_meta_row(store, record.features, record.signatures))
            targets.append(record.actual_latency)
        if not rows:
            raise ValueError("no operator records to train the combined model on")
        matrix = np.vstack(rows)
        target_arr = np.asarray(targets)
        if len(rows) > self.config.max_meta_samples:
            # repro: allow(wallclock-rng) -- mirrors train_combined exactly: both paths replay the same raw-seed stream so the subsample (and therefore the fitted combined model) stays bitwise-identical
            rng = np.random.default_rng(self.config.seed)
            take = rng.choice(len(rows), size=self.config.max_meta_samples, replace=False)
            matrix, target_arr = matrix[take], target_arr[take]
        combined.fit_rows(matrix, target_arr)
        return combined

    # ------------------------------------------------------------------ #
    # End-to-end
    # ------------------------------------------------------------------ #

    def _day_split(
        self,
        log: RunLog,
        individual_days: list[int] | None,
        combined_days: list[int] | None,
    ) -> tuple[list[int], list[int]]:
        """Default day split: "all but last / last".

        The paper's cadence: two days of training data for the individual
        models, the following day for the combined model.
        """
        days = log.days
        if individual_days is None or combined_days is None:
            if len(days) >= 2:
                individual_days = individual_days or days[:-1]
                combined_days = combined_days or [days[-1]]
            else:
                individual_days = individual_days or days
                combined_days = combined_days or days
        return individual_days, combined_days

    def train(
        self,
        log: RunLog,
        individual_days: list[int] | None = None,
        combined_days: list[int] | None = None,
    ) -> CleoPredictor:
        """Full pipeline over the columnar path."""
        self.reset_audit()
        individual_days, combined_days = self._day_split(
            log, individual_days, combined_days
        )
        store = self.train_individual(log.filter(days=individual_days))
        combined = self.train_combined(store, log.filter(days=combined_days))
        return CleoPredictor(store=store, combined=combined)

    def train_reference(
        self,
        log: RunLog,
        individual_days: list[int] | None = None,
        combined_days: list[int] | None = None,
    ) -> CleoPredictor:
        """Full pipeline over the scalar reference path (for benchmarks)."""
        self.reset_audit()
        individual_days, combined_days = self._day_split(
            log, individual_days, combined_days
        )
        store = self.train_individual_reference(log.filter(days=individual_days))
        combined = self.train_combined_reference(store, log.filter(days=combined_days))
        return CleoPredictor(store=store, combined=combined)
