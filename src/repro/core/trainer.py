"""The training pipeline: from run logs to a ready predictor.

Mirrors Section 5.1's feedback loop: individual models are trained
independently per template signature (in SCOPE, in parallel on SCOPE
itself), then the combined model is trained on a *later* slice of the
workload so that the meta-features reflect the individual models'
generalization rather than their training fit.
"""

from __future__ import annotations

import numpy as np

from repro.core.combined import CombinedModel, build_meta_row
from repro.core.config import CleoConfig, ModelKind
from repro.core.learned_model import LearnedCostModel
from repro.core.model_store import ModelStore, signature_for
from repro.core.predictor import CleoPredictor
from repro.execution.runtime_log import RunLog
from repro.features.featurizer import FeatureInput
from repro.ml.base import Regressor


class CleoTrainer:
    """Trains the model store and the combined meta-model from run logs."""

    def __init__(self, config: CleoConfig | None = None) -> None:
        self.config = config or CleoConfig()

    # ------------------------------------------------------------------ #
    # Individual models
    # ------------------------------------------------------------------ #

    def train_individual(self, log: RunLog) -> ModelStore:
        """One elastic net per (model kind, template signature).

        Only templates with at least ``config.min_samples`` occurrences get a
        model (the paper requires 5 occurrences per subgraph).
        """
        groups: dict[tuple[ModelKind, int], tuple[list[FeatureInput], list[float]]] = {}
        for record in log.operator_records():
            for kind in ModelKind:
                key = (kind, signature_for(kind, record.signatures))
                bucket = groups.get(key)
                if bucket is None:
                    bucket = ([], [])
                    groups[key] = bucket
                bucket[0].append(record.features)
                bucket[1].append(record.actual_latency)

        store = ModelStore()
        for (kind, signature), (inputs, latencies) in groups.items():
            if len(inputs) < self.config.min_samples:
                continue
            model = LearnedCostModel(
                include_context=kind.uses_context_features, config=self.config
            )
            model.fit(inputs, np.asarray(latencies))
            store.add(kind, signature, model)
        return store

    # ------------------------------------------------------------------ #
    # Combined model
    # ------------------------------------------------------------------ #

    def train_combined(
        self,
        store: ModelStore,
        log: RunLog,
        regressor: Regressor | None = None,
    ) -> CombinedModel:
        """Fit the meta-ensemble on the individual models' predictions."""
        combined = CombinedModel(store, config=self.config, regressor=regressor)
        rows: list[np.ndarray] = []
        targets: list[float] = []
        for record in log.operator_records():
            rows.append(build_meta_row(store, record.features, record.signatures))
            targets.append(record.actual_latency)
        if not rows:
            raise ValueError("no operator records to train the combined model on")
        matrix = np.vstack(rows)
        target_arr = np.asarray(targets)
        if len(rows) > self.config.max_meta_samples:
            rng = np.random.default_rng(self.config.seed)
            take = rng.choice(len(rows), size=self.config.max_meta_samples, replace=False)
            matrix, target_arr = matrix[take], target_arr[take]
        combined.fit_rows(matrix, target_arr)
        return combined

    # ------------------------------------------------------------------ #
    # End-to-end
    # ------------------------------------------------------------------ #

    def train(
        self,
        log: RunLog,
        individual_days: list[int] | None = None,
        combined_days: list[int] | None = None,
    ) -> CleoPredictor:
        """Full pipeline; day splits default to "all but last / last".

        The paper's cadence: two days of training data for the individual
        models, the following day for the combined model.
        """
        days = log.days
        if individual_days is None or combined_days is None:
            if len(days) >= 2:
                individual_days = individual_days or days[:-1]
                combined_days = combined_days or [days[-1]]
            else:
                individual_days = individual_days or days
                combined_days = combined_days or days
        store = self.train_individual(log.filter(days=individual_days))
        combined = self.train_combined(store, log.filter(days=combined_days))
        return CleoPredictor(store=store, combined=combined)
