"""Cleo as an optimizer-facing cost model.

Implements the same protocol as the default cost model, so retrofitting it
into the planner is a drop-in replacement of the cost call in Optimize
Inputs (step 10 of Figure 8a) — the paper's "minimally invasive" goal.
"""

from __future__ import annotations

from repro.cardinality.estimator import CardinalityEstimator
from repro.core.learned_model import ResourceProfile
from repro.core.predictor import CleoPredictor
from repro.features.extract import feature_input_for
from repro.plan.physical import PhysicalOp
from repro.plan.signatures import SignatureBundle


class CleoCostModel:
    """Prices operators with the learned models.

    Signature bundles are cached per operator object (they are partition-
    independent), so partition exploration — which re-prices the same
    operator at many candidate counts — only pays for featurization.
    """

    def __init__(self, predictor: CleoPredictor) -> None:
        self.predictor = predictor
        # id -> (op, bundle); holding the op reference keeps ids stable.
        self._bundles: dict[int, tuple[PhysicalOp, SignatureBundle]] = {}

    def _bundle(self, op: PhysicalOp) -> SignatureBundle:
        entry = self._bundles.get(id(op))
        if entry is not None and entry[0] is op:
            return entry[1]
        bundle = SignatureBundle.of(op)
        self._bundles[id(op)] = (op, bundle)
        return bundle

    def operator_cost(
        self,
        op: PhysicalOp,
        estimator: CardinalityEstimator,
        partition_override: int | None = None,
    ) -> float:
        features = feature_input_for(op, estimator, partition_override)
        return self.predictor.predict(features, self._bundle(op))

    def resource_profile(
        self, op: PhysicalOp, estimator: CardinalityEstimator
    ) -> ResourceProfile | None:
        """(theta_p, theta_c, theta_0) for the partition-exploration step."""
        features = feature_input_for(op, estimator)
        return self.predictor.resource_profile(features, self._bundle(op))

    @property
    def lookup_count(self) -> int:
        return self.predictor.lookup_count

    def reset_lookup_count(self) -> None:
        self.predictor.reset_lookup_count()

    def clear_cache(self) -> None:
        self._bundles.clear()
