"""Cleo as an optimizer-facing cost model.

Implements the same protocol as the default cost model, so retrofitting it
into the planner is a drop-in replacement of the cost call in Optimize
Inputs (step 10 of Figure 8a) — the paper's "minimally invasive" goal.

The heavy lifting lives in :class:`~repro.serving.service.CleoService`:
this class is the thin :class:`~repro.cost.interface.CostModel` adapter the
planner holds.  Signature bundles are memoized in the service's *bounded*
LRU (the earlier per-``id()`` dict grew without bound and could alias
recycled ids across plans), and whole-plan pricing goes through the
service's batched path.
"""

from __future__ import annotations

from repro.cardinality.estimator import CardinalityEstimator
from repro.core.learned_model import ResourceProfile
from repro.core.predictor import CleoPredictor
from repro.cost.interface import CostExplanation
from repro.features.extract import feature_input_for
from repro.plan.physical import PhysicalOp


class CleoCostModel:
    """Prices operators with the learned models, through the serving layer.

    Args:
        predictor: a trained :class:`CleoPredictor`, or a
            :class:`~repro.serving.service.CleoService` to adopt.
        service: explicit service to serve through (overrides the wrapping
            behaviour; used by :meth:`CleoService.cost_model`).

    A bare predictor is wrapped in a service with the prediction cache
    *disabled*, so optimizer experiments keep their exact per-prediction
    model-lookup accounting; pass a service to share its caches instead.
    """

    def __init__(self, predictor, service=None) -> None:
        from repro.serving.service import CleoService  # deferred: import cycle

        if service is None:
            if isinstance(predictor, CleoService):
                service = predictor
            else:
                service = CleoService(predictor, prediction_cache_size=0)
        self.service = service

    @property
    def predictor(self) -> CleoPredictor:
        """The currently served predictor (tracks service rollbacks)."""
        return self.service.predictor

    def operator_cost(
        self,
        op: PhysicalOp,
        estimator: CardinalityEstimator,
        partition_override: int | None = None,
    ) -> float:
        return self.service.predict_operator(op, estimator, partition_override)

    def plan_cost(self, root: PhysicalOp, estimator: CardinalityEstimator) -> float:
        """Total plan cost through the service's batched path."""
        return self.service.predict_plan(root, estimator)

    def explain(
        self, op: PhysicalOp, estimator: CardinalityEstimator
    ) -> CostExplanation:
        return self.service.explain_operator(op, estimator)

    def resource_profile(
        self, op: PhysicalOp, estimator: CardinalityEstimator
    ) -> ResourceProfile | None:
        """(theta_p, theta_c, theta_0) for the partition-exploration step."""
        features = feature_input_for(op, estimator)
        return self.predictor.resource_profile(features, self.service.bundle_for(op))

    @property
    def lookup_count(self) -> int:
        return self.predictor.lookup_count

    def reset_lookup_count(self) -> None:
        self.predictor.reset_lookup_count()

    def clear_cache(self) -> None:
        self.service.clear_caches()
