"""Cleo as an optimizer-facing cost model.

Implements the same protocol as the default cost model, so retrofitting it
into the planner is a drop-in replacement of the cost call in Optimize
Inputs (step 10 of Figure 8a) — the paper's "minimally invasive" goal.

The heavy lifting lives in :class:`~repro.serving.service.CleoService`:
this class is the thin :class:`~repro.cost.interface.CostModel` adapter the
planner holds.  Signature bundles are memoized in the service's *bounded*
LRU (the earlier per-``id()`` dict grew without bound and could alias
recycled ids across plans), and whole-plan pricing goes through the
service's batched path.

Beyond the scalar :class:`~repro.cost.interface.CostModel` protocol, this
adapter advertises **batched planning pricing** (``supports_batched_pricing``
plus :meth:`CleoCostModel.price_operators` /
:meth:`CleoCostModel.price_stage_sweep`): the planner prices whole candidate
frontiers, and partition exploration prices whole per-stage partition
sweeps, through the packed serving runtime in a constant number of numpy
passes — bitwise identical values and per-prediction lookup accounting to
the scalar ``operator_cost`` loop.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cardinality.estimator import CardinalityEstimator
from repro.core.learned_model import ResourceProfile
from repro.core.predictor import CleoPredictor
from repro.cost.interface import CostExplanation
from repro.features.extract import feature_input_for
from repro.plan.physical import PhysicalOp


class CleoCostModel:
    """Prices operators with the learned models, through the serving layer.

    Args:
        predictor: a trained :class:`CleoPredictor`, or a
            :class:`~repro.serving.service.CleoService` to adopt.
        service: explicit service to serve through (overrides the wrapping
            behaviour; used by :meth:`CleoService.cost_model`).

    A bare predictor is wrapped in a service with the prediction cache
    *disabled*, so optimizer experiments keep their exact per-prediction
    model-lookup accounting; pass a service to share its caches instead.

    ``batched=False`` retains the scalar pricing path everywhere (one
    ``predict_operator`` round-trip per costed candidate) — the baseline
    the plan-throughput benchmark and the parity suite compare against.
    """

    def __init__(self, predictor, service=None, batched: bool = True) -> None:
        from repro.serving.service import CleoService  # deferred: import cycle

        if service is None:
            if isinstance(predictor, CleoService):
                service = predictor
            else:
                service = CleoService(predictor, prediction_cache_size=0)
        self.service = service
        self.batched = bool(batched)

    @property
    def supports_batched_pricing(self) -> bool:
        """Capability flag the planner and partition strategies duck-type on."""
        return self.batched

    @property
    def supports_replay_costing(self) -> bool:
        """The skeleton replay can price for this model (learned hook surface).

        The replay featurizes straight from its cached per-node statistics
        (``repro.optimizer.skeleton``) and prices through
        :meth:`price_input` / :meth:`price_inputs` / :meth:`price_plans`,
        so both the scalar (``batched=False``) and the deferred-ledger
        replay stay bitwise identical to the full ``QueryPlanner`` search.
        """
        return True

    @property
    def predictor(self) -> CleoPredictor:
        """The currently served predictor (tracks service rollbacks)."""
        return self.service.predictor

    def operator_cost(
        self,
        op: PhysicalOp,
        estimator: CardinalityEstimator,
        partition_override: int | None = None,
    ) -> float:
        return self.service.predict_operator(op, estimator, partition_override)

    def plan_cost(self, root: PhysicalOp, estimator: CardinalityEstimator) -> float:
        """Total plan cost through the service's batched path."""
        return self.service.predict_plan(root, estimator)

    def price_operators(
        self, ops: Sequence[PhysicalOp], estimator: CardinalityEstimator
    ) -> np.ndarray:
        """Exclusive costs of several live operators, one batched call.

        The planner's frontier-pricing entry: bitwise identical values to a
        per-op :meth:`operator_cost` loop, with the same per-prediction
        lookup and fallback accounting (see
        :meth:`~repro.serving.service.CleoService.predict_inputs`).
        """
        service = self.service
        inputs = [feature_input_for(op, estimator) for op in ops]
        bundles = [service.bundle_for(op) for op in ops]
        return service.predict_inputs(inputs, bundles)

    def price_input(self, features, bundle) -> float:
        """Exclusive cost of one already-featurized operator.

        The skeleton replay's scalar costing hook (``batched=False``): the
        replay computes the features and signature bundle itself, so this is
        one service round-trip with the same accounting as
        :meth:`operator_cost`.
        """
        return self.service.predict(features, bundle)

    def price_inputs(self, inputs, bundles) -> np.ndarray:
        """Exclusive costs of already-featurized operators, one batched call.

        The skeleton replay's frontier-flush hook: same values and
        per-prediction lookup accounting as :meth:`price_operators`, minus
        the :class:`PhysicalOp` featurization (the replay derives features
        from its cached per-node statistics).
        """
        return self.service.predict_inputs(inputs, bundles)

    def price_plans(self, inputs, bundles, lengths: Sequence[int]) -> list[float]:
        """Total costs of several plans, one packed pass.

        ``inputs``/``bundles`` concatenate every plan's operators in walk
        order; ``lengths`` delimits the plans.  Each total is reduced with
        the exact left-fold order :meth:`plan_cost` uses, so fleet replanning
        reports costs bitwise identical to a per-plan loop.
        """
        return self.service.predict_plan_batch(inputs, bundles, lengths)

    def price_stage_sweep(
        self,
        stage_ops: Sequence[PhysicalOp],
        estimator: CardinalityEstimator,
        partitions: Sequence[int],
    ) -> list[float]:
        """Stage-total cost at every candidate partition count, one pass.

        Replaces partition exploration's per-candidate
        ``sum(operator_cost(op, partition_override=p) for op in stage)``
        loops: all ``len(partitions) * len(stage_ops)`` predictions run as
        one batched call, then each candidate's stage total is reduced with
        the exact left-fold order the scalar ``sum`` uses, so totals (and
        therefore every argmin/guard decision) are bitwise identical.
        """
        service = self.service
        bundles = [service.bundle_for(op) for op in stage_ops]
        inputs = [
            feature_input_for(op, estimator, int(p))
            for p in partitions
            for op in stage_ops
        ]
        values = service.predict_inputs(inputs, bundles * len(partitions))
        n = len(stage_ops)
        totals: list[float] = []
        offset = 0
        for _ in partitions:
            total = 0  # int start, exactly like the scalar sum()
            for value in values[offset : offset + n]:
                total = total + float(value)
            totals.append(total)
            offset += n
        return totals

    def explain(
        self, op: PhysicalOp, estimator: CardinalityEstimator
    ) -> CostExplanation:
        return self.service.explain_operator(op, estimator)

    def resource_profile(
        self, op: PhysicalOp, estimator: CardinalityEstimator
    ) -> ResourceProfile | None:
        """(theta_p, theta_c, theta_0) for the partition-exploration step."""
        features = feature_input_for(op, estimator)
        return self.predictor.resource_profile(features, self.service.bundle_for(op))

    def resource_profiles(
        self, ops: Sequence[PhysicalOp], estimator: CardinalityEstimator
    ) -> list[ResourceProfile | None]:
        """Profiles for a whole stage in one packed pass.

        The analytical partition strategy's batched entry: bitwise identical
        thetas and lookup accounting to a per-op :meth:`resource_profile`
        loop.  ``batched=False`` retains that scalar loop (the parity
        baseline).
        """
        if not self.batched:
            return [self.resource_profile(op, estimator) for op in ops]
        service = self.service
        inputs = [feature_input_for(op, estimator) for op in ops]
        bundles = [service.bundle_for(op) for op in ops]
        return service.resource_profiles(inputs, bundles)

    @property
    def lookup_count(self) -> int:
        return self.predictor.lookup_count

    def reset_lookup_count(self) -> None:
        self.predictor.reset_lookup_count()

    def clear_cache(self) -> None:
        self.service.clear_caches()
