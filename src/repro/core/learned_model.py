"""One learned cost model: an elastic net over the derived features.

Each template (subgraph / approx / input / operator) gets an instance.  The
underlying model is the paper's configuration exactly: a linear model over
the derived features (Tables 2-3) trained with mean-squared log error
(Section 3.2) and L1+L2 regularization (Section 3.4).  Because the model is
linear in *raw* feature space, the resource-exploration coefficients
``(theta_p, theta_c, theta_0)`` of Section 5.3 are direct reads of the
fitted weights — the same model serves both cost prediction and analytical
partition optimization, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import CleoConfig
from repro.features.featurizer import (
    INVERSE_P_FEATURES,
    FeatureInput,
    feature_matrix,
    feature_names,
    feature_vector,
)
from repro.ml.proximal import ElasticNetMSLE, fit_elastic_nets

_MAX_PREDICT_SECONDS = 1e7  # clamp: a single operator below ~116 days


@dataclass(frozen=True)
class ResourceProfile:
    """Operator cost as a function of its stage's partition count.

    ``cost(P) = theta_p / P + theta_c * P + theta_0``.
    """

    theta_p: float
    theta_c: float
    theta_0: float

    def cost_at(self, partitions: float) -> float:
        if partitions < 1:
            raise ValueError("partitions must be >= 1")
        return self.theta_p / partitions + self.theta_c * partitions + self.theta_0

    def optimal_partitions(self, max_partitions: int) -> int:
        """Minimize over [1, max_partitions], the paper's three sign cases.

        (i) theta_p > 0, theta_c < 0: more partitions always help -> max.
        (ii) theta_p < 0, theta_c > 0: partitions only hurt -> min.
        (iii) same sign: interior stationary point sqrt(theta_p/theta_c);
        for the negative-negative case that point is a cost *maximum*, so
        the better boundary wins.  All candidates are evaluated and the
        cheapest taken, which subsumes the case analysis safely.
        """
        candidates = {1, max_partitions}
        if self.theta_c != 0 and self.theta_p / self.theta_c > 0:
            ratio = self.theta_p / self.theta_c
            if np.isfinite(ratio):
                stationary = int(round(float(np.sqrt(ratio))))
            else:  # degenerate near-zero theta_c: stationary point beyond range
                stationary = max_partitions
            candidates.add(min(max(stationary, 1), max_partitions))
        return min(sorted(candidates), key=self.cost_at)


class LearnedCostModel:
    """Elastic-net (MSLE) cost model for a single template."""

    def __init__(self, include_context: bool, config: CleoConfig | None = None) -> None:
        self.include_context = include_context
        self.config = config or CleoConfig()
        # Partition-dependent features are physically monotone cost
        # contributors (parallel work shrinks with P, scheduling overhead
        # grows with P); constraining their weights non-negative keeps the
        # model sane when partition exploration extrapolates far outside the
        # logged range of P.
        names = feature_names(include_context)
        if self.config.constrain_partition_weights:
            nonneg = tuple(
                j
                for j, name in enumerate(names)
                if name in INVERSE_P_FEATURES or name == "P"
            )
        else:
            nonneg = ()
        self._net = ElasticNetMSLE(
            alpha=self.config.elastic_alpha,
            l1_ratio=self.config.elastic_l1_ratio,
            max_iter=self.config.elastic_max_iter,
            tol=self.config.elastic_tol,
            nonneg_indices=nonneg,
        )
        self.n_samples = 0
        self._fitted = False

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #

    def fit(self, inputs: list[FeatureInput], latencies: np.ndarray) -> "LearnedCostModel":
        latencies = np.asarray(latencies, dtype=float).ravel()
        if len(inputs) != len(latencies):
            raise ValueError("inputs and latencies must align")
        matrix = feature_matrix(inputs, include_context=self.include_context)
        return self.fit_matrix(matrix, latencies)

    def fit_matrix(self, matrix: np.ndarray, latencies: np.ndarray) -> "LearnedCostModel":
        """Fit directly on a pre-built feature matrix (column slice).

        The columnar trainer expands the full feature table once and hands
        each model its rows — same values as per-record featurization.
        """
        latencies = np.asarray(latencies, dtype=float).ravel()
        if matrix.shape[0] != len(latencies):
            raise ValueError("matrix rows and latencies must align")
        self._check_width(matrix)
        self._net.fit(matrix, np.clip(latencies, 0.0, None))
        self.n_samples = matrix.shape[0]
        self._fitted = True
        return self

    def _check_width(self, matrix: np.ndarray) -> None:
        expected = len(feature_names(self.include_context))
        if matrix.ndim != 2 or matrix.shape[1] != expected:
            raise ValueError(
                f"expected a (n, {expected}) feature matrix, got {matrix.shape}"
            )

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #

    def predict_one(self, features: FeatureInput) -> float:
        vec = feature_vector(features, include_context=self.include_context)
        raw = float(self._net.predict(vec.reshape(1, -1))[0])
        return float(min(raw, _MAX_PREDICT_SECONDS))

    def predict_many(self, inputs: list[FeatureInput]) -> np.ndarray:
        matrix = feature_matrix(inputs, include_context=self.include_context)
        return self.predict_matrix(matrix)

    def predict_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Predict directly from pre-built feature rows (bitwise identical
        to :meth:`predict_many` — the regressor is batch-size-invariant)."""
        self._check_width(matrix)
        return np.minimum(self._net.predict(matrix), _MAX_PREDICT_SECONDS)

    def packed_parameters(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, float, float]:
        """The fitted net's parameters for the packed inference bank.

        ``(scaler mean, scaler scale, standardized coef, intercept,
        y_scale)`` — see :meth:`~repro.ml.proximal.ElasticNetMSLE.
        packed_parameters`.
        """
        if not self._fitted:
            raise RuntimeError("packed_parameters() before fit()")
        return self._net.packed_parameters()

    # ------------------------------------------------------------------ #
    # Resource profile (Section 5.3)
    # ------------------------------------------------------------------ #

    def resource_profile(self, features: FeatureInput) -> ResourceProfile:
        """Extract (theta_p, theta_c, theta_0) from the fitted weights.

        Only partition-dependent features move with P; evaluating every
        feature at P=1 turns each 1/P-family feature into its numerator, so
        the thetas are exact linear-algebra reads of the fit.
        """
        weights, intercept = self._net.coefficients_raw()
        names = feature_names(self.include_context)
        at_one = feature_vector(
            features.with_partition_count(1.0), include_context=self.include_context
        )
        theta_p = 0.0
        theta_c = 0.0
        theta_0 = intercept
        for j, name in enumerate(names):
            if name in INVERSE_P_FEATURES:
                theta_p += weights[j] * at_one[j]
            elif name == "P":
                theta_c += weights[j]
            else:
                theta_0 += weights[j] * at_one[j]
        return ResourceProfile(theta_p=theta_p, theta_c=theta_c, theta_0=theta_0)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def feature_weights(self) -> dict[str, float]:
        """Standardized weights per feature name (Figures 5-6, 16)."""
        if not self._fitted:
            raise RuntimeError("feature_weights before fit()")
        assert self._net.coef_ is not None
        names = feature_names(self.include_context)
        return {name: float(w) for name, w in zip(names, self._net.coef_)}

    @property
    def memory_bytes(self) -> int:
        """Approximate serialized size (the paper's ~600 MB footprint note)."""
        width = len(feature_names(self.include_context))
        return (width + 1) * 8 + 64


def fit_models_batched(
    models: list[LearnedCostModel],
    matrix: np.ndarray,
    latencies: np.ndarray,
    starts: np.ndarray,
    lengths: np.ndarray,
) -> None:
    """Fit many per-signature models of one kind in a single Adam loop.

    ``matrix`` stacks every model's feature rows contiguously (model ``g``
    owns rows ``starts[g] : starts[g]+lengths[g]``); all models must share
    ``include_context`` (one model kind).  Coefficients are bitwise
    identical to fitting each model alone on its slice — see
    :func:`repro.ml.proximal.fit_elastic_nets`.
    """
    if not models:
        return
    include_context = models[0].include_context
    for model in models[1:]:
        if model.include_context != include_context:
            raise ValueError("batched models must share include_context")
    models[0]._check_width(matrix)
    latencies = np.clip(np.asarray(latencies, dtype=float).ravel(), 0.0, None)
    fit_elastic_nets([m._net for m in models], matrix, latencies, starts, lengths)
    for model, length in zip(models, lengths):
        model.n_samples = int(length)
        model._fitted = True
