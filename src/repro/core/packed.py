"""Packed inference runtime: the model bank compiled into contiguous arrays.

The paper's serving story is that "all models relevant for a cluster are
loaded upfront by the optimizer, into a hash map" and consulted millions of
times per optimization pass (Section 5.1), five learned lookups per costed
operator (Section 6.5).  The object graph behind that hash map —
one :class:`~repro.core.learned_model.LearnedCostModel` per ``(kind,
signature)``, each wrapping its own scaler and elastic net — prices a batch
with one tiny vectorized call *per covering group*, which leaves the hot
path dominated by Python/numpy dispatch (hundreds of micro-calls per batch).

This module compiles that object graph **once** into flat arrays so a whole
batch is priced in a constant number of numpy passes:

* per model kind, the signatures of every trained model in one **sorted
  array** and their elastic-net parameters (scaler mean/scale, standardized
  coefficients, intercept, target scale) stacked into **contiguous
  matrices**;
* signature resolution becomes one ``np.searchsorted`` over the sorted
  array instead of one dict lookup per row;
* pricing becomes one gather of each covered row's model parameters plus a
  batch-invariant row multiply-sum — bitwise identical to routing every row
  through its model's ``predict_matrix``, because the per-row reduction
  depends only on the row's own feature width.

Compilation is **lazy** and owned by :meth:`~repro.core.model_store.
ModelStore.packed_bank`: the store bumps a version counter on every
``add``/``remove`` and the bank recompiles on next use, so serving never
reads stale coefficients.  Kinds containing an unfitted model are left
unpacked and transparently served by the retained object-graph reference
path (which raises on actual use of the unfitted model, exactly like the
scalar chain).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.config import SPECIFICITY_ORDER, ModelKind
from repro.core.learned_model import _MAX_PREDICT_SECONDS
from repro.core.model_store import SIGNATURE_FIELDS, ModelStore
from repro.features.featurizer import feature_names

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.features.table import FeatureTable


def match_sorted(
    signatures: np.ndarray, column: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Resolve a signature column against one sorted signature array.

    Returns ``(mask, position)``: ``mask[i]`` is True where some signature
    equals ``column[i]`` and ``position[i]`` is its index in ``signatures``
    (clamped, meaningless where ``mask`` is False).  The single resolution
    primitive shared by model matching and coverage checks.
    """
    if signatures.size == 0:
        zeros = np.zeros(len(column), dtype=np.int64)
        return np.zeros(len(column), dtype=bool), zeros
    position = np.searchsorted(signatures, column)
    position = np.minimum(position, signatures.size - 1)
    return signatures[position] == column, position


@dataclass(frozen=True)
class PackedKindModels:
    """One kind's trained elastic nets as contiguous parameter arrays.

    Model ``g`` (the ``g``-th smallest signature) owns row ``g`` of every
    array.  ``predict_rows`` replays :meth:`~repro.ml.proximal.
    ElasticNetMSLE.predict` exactly — standardize, row multiply-sum, target
    rescale, clamp — with the parameters gathered per row, so mixed-model
    batches price bitwise identically to per-model calls.
    """

    kind: ModelKind
    signatures: np.ndarray  # (m,) uint64, sorted ascending
    #: (m, 3, d) stack of (scaler mean, scaler scale, standardized coef) so
    #: the hot path gathers each row's parameters with ONE fancy index.
    fused: np.ndarray
    intercept: np.ndarray  # (m,)
    y_scale: np.ndarray  # (m,) target scales
    width: int  # d: the kind's feature width

    def __len__(self) -> int:
        return int(self.signatures.size)

    def match(self, column: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(mask, parameter row)`` for each entry of a signature column."""
        return match_sorted(self.signatures, column)

    def predict_rows(self, rows: np.ndarray, model_idx: np.ndarray) -> np.ndarray:
        """Price feature rows, row ``i`` through model ``model_idx[i]``.

        ``rows`` must already be sliced to this kind's feature width.  The
        op sequence replays :meth:`~repro.ml.proximal.ElasticNetMSLE.
        predict` exactly — standardize, multiply by the coefficients, row
        pairwise-sum (length ``d``, so batch-size invariant), intercept,
        target rescale, clamp — for bitwise parity with per-model calls.
        """
        params = self.fused[model_idx]  # (k, 3, d): one gather for all three
        buf = rows - params[:, 0, :]
        buf /= params[:, 1, :]
        buf *= params[:, 2, :]
        raw = (buf.sum(axis=1) + self.intercept[model_idx]) * self.y_scale[model_idx]
        return np.minimum(np.maximum(raw, 0.0), _MAX_PREDICT_SECONDS)

    def group_count(self, model_idx: np.ndarray) -> int:
        """Distinct models among ``model_idx`` (vectorized-call accounting)."""
        hit = np.zeros(len(self), dtype=bool)
        hit[model_idx] = True
        return int(hit.sum())


@dataclass(frozen=True)
class PackedModelBank:
    """Every kind's packed parameters plus signature coverage arrays.

    ``coverage[kind]`` always holds the sorted signatures of *all* models of
    the kind (the store's covering set); ``kinds[kind]`` is the packed
    parameter block, or ``None`` when the kind could not be packed (an
    unfitted or mis-shaped model) and must be served by the reference path.
    """

    coverage: dict[ModelKind, np.ndarray]
    kinds: dict[ModelKind, "PackedKindModels | None"]

    @classmethod
    def compile(cls, store: ModelStore) -> "PackedModelBank":
        """Extract every model's parameters into contiguous arrays."""
        coverage: dict[ModelKind, np.ndarray] = {}
        kinds: dict[ModelKind, PackedKindModels | None] = {}
        for kind in ModelKind:
            by_sig = store.models[kind]
            signatures = np.sort(
                np.fromiter(by_sig.keys(), dtype=np.uint64, count=len(by_sig))
            )
            coverage[kind] = signatures
            width = len(feature_names(kind.uses_context_features))
            models = [by_sig[int(s)] for s in signatures]
            if any(
                not m.is_fitted or m.include_context != kind.uses_context_features
                for m in models
            ):
                kinds[kind] = None  # served by the object-graph reference path
                continue
            params = [m.packed_parameters() for m in models]
            m = len(models)
            fused = np.empty((m, 3, width), dtype=float)
            for g, (mean, scale, coef, _, _) in enumerate(params):
                fused[g, 0] = mean
                fused[g, 1] = scale
                fused[g, 2] = coef
            kinds[kind] = PackedKindModels(
                kind=kind,
                signatures=signatures,
                fused=fused,
                intercept=np.array([p[3] for p in params], dtype=float),
                y_scale=np.array([p[4] for p in params], dtype=float),
                width=width,
            )
        return cls(coverage=coverage, kinds=kinds)

    def covered(self, kind: ModelKind, column: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Coverage ``(mask, position)`` for a signature column of ``kind``.

        Works for unpacked kinds too — coverage only needs the signature
        array, not the parameters.
        """
        return match_sorted(self.coverage[kind], column)


def predict_most_specific(
    store: ModelStore,
    table: "FeatureTable",
    fallback_cost: float,
    full_matrix: np.ndarray | None = None,
) -> tuple[np.ndarray, int, int]:
    """Fallback-chain predictions for every table row, via the packed bank.

    Each row is priced by its most specific covering individual model
    (:data:`~repro.core.config.SPECIFICITY_ORDER`), or ``fallback_cost``
    when nothing covers it — bitwise identical to the scalar
    ``store.most_specific(bundle) -> predict_one(features)`` chain, but each
    row is priced exactly once with gathered packed parameters.

    Returns ``(values, n_model_groups, n_fallbacks)`` where
    ``n_model_groups`` counts the distinct ``(kind, signature)`` models that
    answered (the serving layer's ``individual_model_calls`` accounting) and
    ``n_fallbacks`` the rows served the global fallback.
    """
    bank = store.packed_bank()
    n = len(table)
    if full_matrix is None:
        full_matrix = table.feature_matrix(include_context=True)
    values = np.full(n, float(fallback_cost), dtype=float)
    remaining = np.ones(n, dtype=bool)
    n_groups = 0
    for kind in SPECIFICITY_ORDER:
        if not remaining.any():
            break
        if bank.coverage[kind].size == 0:
            continue
        column = table.signature_column(SIGNATURE_FIELDS[kind])
        mask, position = bank.covered(kind, column)
        mask &= remaining
        if not mask.any():
            continue
        idx = np.flatnonzero(mask)
        packed = bank.kinds[kind]
        if packed is not None:
            model_idx = position[idx]
            values[idx] = packed.predict_rows(full_matrix[idx, : packed.width], model_idx)
            n_groups += packed.group_count(model_idx)
        else:
            # Reference pricing for an unpackable kind: grouped object-graph
            # calls (an unfitted model raises here, as the scalar path would).
            width = len(feature_names(kind.uses_context_features))
            sigs = column[idx]
            order = np.argsort(sigs, kind="stable")
            ordered = idx[order]
            uniques, starts, counts = np.unique(
                sigs[order], return_index=True, return_counts=True
            )
            for signature, start, count in zip(uniques, starts, counts):
                rows = ordered[start : start + count]
                model = store.get(kind, int(signature))
                assert model is not None
                values[rows] = model.predict_matrix(full_matrix[rows, :width])
                n_groups += 1
        remaining[idx] = False
    return values, n_groups, int(remaining.sum())
