"""Packed inference runtime: the model bank compiled into contiguous arrays.

The paper's serving story is that "all models relevant for a cluster are
loaded upfront by the optimizer, into a hash map" and consulted millions of
times per optimization pass (Section 5.1), five learned lookups per costed
operator (Section 6.5).  The object graph behind that hash map —
one :class:`~repro.core.learned_model.LearnedCostModel` per ``(kind,
signature)``, each wrapping its own scaler and elastic net — prices a batch
with one tiny vectorized call *per covering group*, which leaves the hot
path dominated by Python/numpy dispatch (hundreds of micro-calls per batch).

This module compiles that object graph **once** into flat arrays so a whole
batch is priced in a constant number of numpy passes:

* per model kind, the signatures of every trained model in one **sorted
  array** and their elastic-net parameters (scaler mean/scale, standardized
  coefficients, intercept, target scale) stacked into **contiguous
  matrices**;
* signature resolution becomes one ``np.searchsorted`` over the sorted
  array instead of one dict lookup per row;
* pricing becomes one gather of each covered row's model parameters plus a
  batch-invariant row multiply-sum — bitwise identical to routing every row
  through its model's ``predict_matrix``, because the per-row reduction
  depends only on the row's own feature width.

Compilation is **lazy** and owned by :meth:`~repro.core.model_store.
ModelStore.packed_bank`: the store bumps a version counter on every
``add``/``remove`` and the bank recompiles on next use, so serving never
reads stale coefficients.  Kinds containing an unfitted model are left
unpacked and transparently served by the retained object-graph reference
path (which raises on actual use of the unfitted model, exactly like the
scalar chain).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.config import SPECIFICITY_ORDER, ModelKind
from repro.core.learned_model import _MAX_PREDICT_SECONDS, ResourceProfile
from repro.core.model_store import SIGNATURE_FIELDS, ModelStore
from repro.features.featurizer import INVERSE_P_FEATURES, feature_names

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.features.featurizer import FeatureInput
    from repro.features.table import FeatureTable
    from repro.plan.signatures import SignatureBundle


def match_sorted(
    signatures: np.ndarray, column: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Resolve a signature column against one sorted signature array.

    Returns ``(mask, position)``: ``mask[i]`` is True where some signature
    equals ``column[i]`` and ``position[i]`` is its index in ``signatures``
    (clamped, meaningless where ``mask`` is False).  The single resolution
    primitive shared by model matching and coverage checks.
    """
    if signatures.size == 0:
        zeros = np.zeros(len(column), dtype=np.int64)
        return np.zeros(len(column), dtype=bool), zeros
    position = np.searchsorted(signatures, column)
    position = np.minimum(position, signatures.size - 1)
    return signatures[position] == column, position


@dataclass(frozen=True)
class PackedKindModels:
    """One kind's trained elastic nets as contiguous parameter arrays.

    Model ``g`` (the ``g``-th smallest signature) owns row ``g`` of every
    array.  ``predict_rows`` replays :meth:`~repro.ml.proximal.
    ElasticNetMSLE.predict` exactly — standardize, row multiply-sum, target
    rescale, clamp — with the parameters gathered per row, so mixed-model
    batches price bitwise identically to per-model calls.
    """

    kind: ModelKind
    signatures: np.ndarray  # (m,) uint64, sorted ascending
    #: (m, 3, d) stack of (scaler mean, scaler scale, standardized coef) so
    #: the hot path gathers each row's parameters with ONE fancy index.
    fused: np.ndarray
    intercept: np.ndarray  # (m,)
    y_scale: np.ndarray  # (m,) target scales
    width: int  # d: the kind's feature width
    #: Raw-space weights/intercepts (`coefficients_raw` replayed at compile
    #: time), backing the batched resource-profile extraction of Section 5.3.
    raw_coef: np.ndarray  # (m, d)
    raw_intercept: np.ndarray  # (m,)
    #: Feature-column split for theta extraction: ascending indices of the
    #: 1/P-family features (-> theta_p), the bare "P" feature (-> theta_c),
    #: and everything else (-> theta_0).
    inverse_p_columns: tuple[int, ...]
    partition_columns: tuple[int, ...]
    other_columns: tuple[int, ...]

    def __len__(self) -> int:
        return int(self.signatures.size)

    def match(self, column: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(mask, parameter row)`` for each entry of a signature column."""
        return match_sorted(self.signatures, column)

    def predict_rows(self, rows: np.ndarray, model_idx: np.ndarray) -> np.ndarray:
        """Price feature rows, row ``i`` through model ``model_idx[i]``.

        ``rows`` must already be sliced to this kind's feature width.  The
        op sequence replays :meth:`~repro.ml.proximal.ElasticNetMSLE.
        predict` exactly — standardize, multiply by the coefficients, row
        pairwise-sum (length ``d``, so batch-size invariant), intercept,
        target rescale, clamp — for bitwise parity with per-model calls.
        """
        params = self.fused[model_idx]  # (k, 3, d): one gather for all three
        buf = rows - params[:, 0, :]
        buf /= params[:, 1, :]
        buf *= params[:, 2, :]
        raw = (buf.sum(axis=1) + self.intercept[model_idx]) * self.y_scale[model_idx]
        return np.minimum(np.maximum(raw, 0.0), _MAX_PREDICT_SECONDS)

    def group_count(self, model_idx: np.ndarray) -> int:
        """Distinct models among ``model_idx`` (vectorized-call accounting)."""
        hit = np.zeros(len(self), dtype=bool)
        hit[model_idx] = True
        return int(hit.sum())

    def resource_rows(
        self, at_one_rows: np.ndarray, model_idx: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(theta_p, theta_c, theta_0)`` per row, from the raw-space fit.

        ``at_one_rows`` are the rows' feature vectors evaluated at P=1
        (sliced to this kind's width); row ``i`` reads model
        ``model_idx[i]``.  The accumulation replays
        :meth:`~repro.core.learned_model.LearnedCostModel.resource_profile`
        exactly — per accumulator, terms fold in ascending feature-column
        order — so every theta is bitwise identical to the scalar loop.
        """
        raw = self.raw_coef[model_idx]  # (k, d): one gather
        k = len(model_idx)
        theta_p = np.zeros(k, dtype=float)
        theta_c = np.zeros(k, dtype=float)
        theta_0 = self.raw_intercept[model_idx].copy()
        for j in self.inverse_p_columns:
            theta_p += raw[:, j] * at_one_rows[:, j]
        for j in self.partition_columns:
            theta_c += raw[:, j]
        for j in self.other_columns:
            theta_0 += raw[:, j] * at_one_rows[:, j]
        return theta_p, theta_c, theta_0


@dataclass(frozen=True)
class PackedModelBank:
    """Every kind's packed parameters plus signature coverage arrays.

    ``coverage[kind]`` always holds the sorted signatures of *all* models of
    the kind (the store's covering set); ``kinds[kind]`` is the packed
    parameter block, or ``None`` when the kind could not be packed (an
    unfitted or mis-shaped model) and must be served by the reference path.
    """

    coverage: dict[ModelKind, np.ndarray]
    kinds: dict[ModelKind, "PackedKindModels | None"]

    @classmethod
    def compile(cls, store: ModelStore) -> "PackedModelBank":
        """Extract every model's parameters into contiguous arrays."""
        coverage: dict[ModelKind, np.ndarray] = {}
        kinds: dict[ModelKind, PackedKindModels | None] = {}
        for kind in ModelKind:
            by_sig = store.models[kind]
            signatures = np.sort(
                np.fromiter(by_sig.keys(), dtype=np.uint64, count=len(by_sig))
            )
            coverage[kind] = signatures
            width = len(feature_names(kind.uses_context_features))
            models = [by_sig[int(s)] for s in signatures]
            if any(
                not m.is_fitted or m.include_context != kind.uses_context_features
                for m in models
            ):
                kinds[kind] = None  # served by the object-graph reference path
                continue
            params = [m.packed_parameters() for m in models]
            m = len(models)
            fused = np.empty((m, 3, width), dtype=float)
            for g, (mean, scale, coef, _, _) in enumerate(params):
                fused[g, 0] = mean
                fused[g, 1] = scale
                fused[g, 2] = coef
            intercept = np.array([p[3] for p in params], dtype=float)
            y_scale = np.array([p[4] for p in params], dtype=float)
            # Raw-space parameters, replaying ElasticNetMSLE.coefficients_raw
            # op for op (divide then rescale; inner multiply-divide-sum) so
            # batched resource profiles match the scalar reads bitwise.  The
            # axis-1 sum over a (m, d) product uses the same pairwise
            # reduction as each model's own length-d sum.
            raw_coef = fused[:, 2, :] / fused[:, 1, :] * y_scale[:, None]
            raw_intercept = (
                intercept - (fused[:, 2, :] * fused[:, 0, :] / fused[:, 1, :]).sum(axis=1)
            ) * y_scale
            names = feature_names(kind.uses_context_features)
            kinds[kind] = PackedKindModels(
                kind=kind,
                signatures=signatures,
                fused=fused,
                intercept=intercept,
                y_scale=y_scale,
                width=width,
                raw_coef=raw_coef,
                raw_intercept=raw_intercept,
                inverse_p_columns=tuple(
                    j for j, name in enumerate(names) if name in INVERSE_P_FEATURES
                ),
                partition_columns=tuple(
                    j for j, name in enumerate(names) if name == "P"
                ),
                other_columns=tuple(
                    j
                    for j, name in enumerate(names)
                    if name not in INVERSE_P_FEATURES and name != "P"
                ),
            )
        return cls(coverage=coverage, kinds=kinds)

    def covered(self, kind: ModelKind, column: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Coverage ``(mask, position)`` for a signature column of ``kind``.

        Works for unpacked kinds too — coverage only needs the signature
        array, not the parameters.
        """
        return match_sorted(self.coverage[kind], column)


def predict_most_specific(
    store: ModelStore,
    table: "FeatureTable",
    fallback_cost: float,
    full_matrix: np.ndarray | None = None,
) -> tuple[np.ndarray, int, int]:
    """Fallback-chain predictions for every table row, via the packed bank.

    Each row is priced by its most specific covering individual model
    (:data:`~repro.core.config.SPECIFICITY_ORDER`), or ``fallback_cost``
    when nothing covers it — bitwise identical to the scalar
    ``store.most_specific(bundle) -> predict_one(features)`` chain, but each
    row is priced exactly once with gathered packed parameters.

    Returns ``(values, n_model_groups, n_fallbacks)`` where
    ``n_model_groups`` counts the distinct ``(kind, signature)`` models that
    answered (the serving layer's ``individual_model_calls`` accounting) and
    ``n_fallbacks`` the rows served the global fallback.
    """
    bank = store.packed_bank()
    n = len(table)
    if full_matrix is None:
        full_matrix = table.feature_matrix(include_context=True)
    values = np.full(n, float(fallback_cost), dtype=float)
    remaining = np.ones(n, dtype=bool)
    n_groups = 0
    for kind in SPECIFICITY_ORDER:
        if not remaining.any():
            break
        if bank.coverage[kind].size == 0:
            continue
        column = table.signature_column(SIGNATURE_FIELDS[kind])
        mask, position = bank.covered(kind, column)
        mask &= remaining
        if not mask.any():
            continue
        idx = np.flatnonzero(mask)
        packed = bank.kinds[kind]
        if packed is not None:
            model_idx = position[idx]
            values[idx] = packed.predict_rows(full_matrix[idx, : packed.width], model_idx)
            n_groups += packed.group_count(model_idx)
        else:
            # Reference pricing for an unpackable kind: grouped object-graph
            # calls (an unfitted model raises here, as the scalar path would).
            width = len(feature_names(kind.uses_context_features))
            sigs = column[idx]
            order = np.argsort(sigs, kind="stable")
            ordered = idx[order]
            uniques, starts, counts = np.unique(
                sigs[order], return_index=True, return_counts=True
            )
            for signature, start, count in zip(uniques, starts, counts):
                rows = ordered[start : start + count]
                model = store.get(kind, int(signature))
                assert model is not None
                values[rows] = model.predict_matrix(full_matrix[rows, :width])
                n_groups += 1
        remaining[idx] = False
    return values, n_groups, int(remaining.sum())


def resource_profiles_most_specific(
    store: ModelStore,
    inputs: "Sequence[FeatureInput]",
    bundles: "Sequence[SignatureBundle]",
) -> tuple[list[ResourceProfile | None], int]:
    """Batched Section-5.3 resource profiles via the packed bank.

    For every operator, the most specific covering individual model's
    ``(theta_p, theta_c, theta_0)`` — or ``None`` where nothing covers it —
    bitwise identical to the scalar ``store.most_specific(bundle) ->
    model.resource_profile(features)`` chain, but with the raw-space
    coefficient reads vectorized over all rows of a kind (the last per-op
    Python loop the analytical partition strategy used to run).

    Returns ``(profiles, n_covered)``; callers charge ``n_covered`` rows of
    lookup accounting (the scalar path charges five lookups per *covered*
    profile and none for uncovered operators).
    """
    from repro.features.table import FeatureTable

    if len(inputs) != len(bundles):
        raise ValueError("inputs and bundles must align")
    bank = store.packed_bank()
    n = len(inputs)
    profiles: list[ResourceProfile | None] = [None] * n
    if n == 0:
        return profiles, 0
    # Every theta read evaluates the features at P=1 (the scalar path's
    # `with_partition_count(1.0)`); feature_vector is a 1-row expand_columns,
    # so these matrix rows are bitwise identical to the scalar vectors.
    table = FeatureTable.from_inputs(
        [features.with_partition_count(1.0) for features in inputs], bundles
    )
    full_matrix = table.feature_matrix(include_context=True)
    remaining = np.ones(n, dtype=bool)
    n_covered = 0
    for kind in SPECIFICITY_ORDER:
        if not remaining.any():
            break
        if bank.coverage[kind].size == 0:
            continue
        column = table.signature_column(SIGNATURE_FIELDS[kind])
        mask, position = bank.covered(kind, column)
        mask &= remaining
        if not mask.any():
            continue
        idx = np.flatnonzero(mask)
        packed = bank.kinds[kind]
        if packed is not None:
            theta_p, theta_c, theta_0 = packed.resource_rows(
                full_matrix[idx, : packed.width], position[idx]
            )
            for r, row in enumerate(idx):
                profiles[row] = ResourceProfile(
                    theta_p=float(theta_p[r]),
                    theta_c=float(theta_c[r]),
                    theta_0=float(theta_0[r]),
                )
        else:
            # Unpackable kind: per-row object-graph reads (an unfitted model
            # raises here, exactly like the scalar chain).
            for row in idx:
                model = store.get(kind, int(column[row]))
                assert model is not None
                profiles[row] = model.resource_profile(inputs[row])
        n_covered += len(idx)
        remaining[idx] = False
    return profiles, n_covered
