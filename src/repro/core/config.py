"""Configuration for Cleo's learning pipeline."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ModelKind(enum.Enum):
    """The four individual model granularities (Sections 3-4), ordered from
    most specialized (most accurate, least coverage) to most general."""

    OP_SUBGRAPH = "op_subgraph"
    OP_SUBGRAPH_APPROX = "op_subgraph_approx"
    OP_INPUT = "op_input"
    OPERATOR = "operator"

    @property
    def uses_context_features(self) -> bool:
        """CL and D features are added by the generalized models (Sec. 4.2)."""
        return self is not ModelKind.OP_SUBGRAPH


#: Specificity order used by fallback chains (most specific first).
SPECIFICITY_ORDER: tuple[ModelKind, ...] = (
    ModelKind.OP_SUBGRAPH,
    ModelKind.OP_SUBGRAPH_APPROX,
    ModelKind.OP_INPUT,
    ModelKind.OPERATOR,
)


@dataclass(frozen=True)
class CleoConfig:
    """Hyperparameters of the training pipeline.

    Defaults follow the paper where stated: at least 5 occurrences before a
    subgraph gets a model, elastic net with l1_ratio 0.5, FastTree with 20
    trees of depth 5 and 0.9 subsampling.  The elastic-net alpha is smaller
    than sklearn's 1.0 default because our features are standardized against
    log-scale targets; the paper's alpha applies to its internal scaling.
    """

    min_samples: int = 5
    elastic_alpha: float = 0.01
    elastic_l1_ratio: float = 0.5
    elastic_max_iter: int = 120
    elastic_tol: float = 1e-5
    #: Project partition-dependent feature weights to >= 0 (see DESIGN.md
    #: deviation 2).  Disable only for the ablation study.
    constrain_partition_weights: bool = True
    meta_trees: int = 20
    meta_depth: int = 5
    meta_subsample: float = 0.9
    meta_learning_rate: float = 0.3
    max_meta_samples: int = 200_000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.min_samples < 2:
            raise ValueError("min_samples must be >= 2")
        if self.elastic_alpha < 0:
            raise ValueError("elastic_alpha must be >= 0")
