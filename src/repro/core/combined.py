"""The combined model: a meta-ensemble over the individual predictions.

Section 4.3: a FastTree (gradient-boosted trees) regressor consumes the
predictions of the four individual models as meta-features, together with
cardinalities, per-partition cardinalities, and the partition count, and
outputs a corrected cost.  It characterizes where each individual model is
reliable, covers every operator (the operator model always predicts), and
degrades gracefully where specialized models are missing.

Meta rows are built **columnar**: :func:`build_meta_matrix` fills the
prediction columns with one vectorized model call per covering
``(kind, signature)`` group over a :class:`~repro.features.table.
FeatureTable`, then imputes and appends the extras with array ops.  The
scalar :func:`build_meta_row` is a one-row call into the same code, so the
two can never drift.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.config import CleoConfig, ModelKind
from repro.core.model_store import SIGNATURE_FIELDS, ModelStore
from repro.features.featurizer import FeatureInput, feature_names
from repro.features.table import FeatureTable
from repro.ml.base import Regressor
from repro.ml.gbm import FastTreeRegressor
from repro.plan.signatures import SignatureBundle

#: Meta-feature layout: 4 predictions, 4 coverage flags, then the extra
#: features of Section 4.3 — cardinalities (I, B, C), per-partition
#: cardinalities (I/P, B/P, C/P), and the partition count P.
META_FEATURE_NAMES: tuple[str, ...] = (
    "pred_op_subgraph",
    "pred_op_subgraph_approx",
    "pred_op_input",
    "pred_operator",
    "has_op_subgraph",
    "has_op_subgraph_approx",
    "has_op_input",
    "has_operator",
    "I",
    "B",
    "C",
    "I/P",
    "B/P",
    "C/P",
    "P",
)

_KIND_ORDER: tuple[ModelKind, ...] = (
    ModelKind.OP_SUBGRAPH,
    ModelKind.OP_SUBGRAPH_APPROX,
    ModelKind.OP_INPUT,
    ModelKind.OPERATOR,
)


def predict_covered(
    store: ModelStore,
    table: FeatureTable,
    kind: ModelKind,
    full_matrix: np.ndarray | None = None,
    on_model_call: Callable[[], None] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """One kind's vectorized predictions over a table's covered rows.

    Served by the store's **packed inference bank** (:mod:`repro.core.
    packed`): signatures resolve against one sorted array with
    ``np.searchsorted`` and every covered row is priced in a single gather +
    row multiply-sum pass — bitwise identical to the retained
    :func:`predict_covered_reference` grouped object-graph loop, which
    transparently takes over for kinds the bank could not pack (an unfitted
    model).  Returns ``(mask, predictions)`` in row order;
    ``predictions[i]`` is 0.0 (and meaningless) where ``mask[i]`` is False.
    This is the one covered-prediction primitive shared by meta-row
    construction, the robustness evaluators, and the serving layer — keep
    it that way.

    ``full_matrix`` may pass a precomputed ``table.feature_matrix(
    include_context=True)`` to avoid a second expansion; ``on_model_call``
    is invoked once per answering ``(kind, signature)`` model (the serving
    layer's vectorized-call accounting, preserved by the packed path).
    """
    packed = store.packed_bank().kinds[kind]
    if packed is None:
        return predict_covered_reference(store, table, kind, full_matrix, on_model_call)
    if full_matrix is None:
        full_matrix = table.feature_matrix(include_context=True)
    column = table.signature_column(SIGNATURE_FIELDS[kind])
    mask, position = packed.match(column)
    if mask.all() and len(table):
        # Fully covered (the operator kind, usually): price in place with no
        # row gather or scatter at all.
        values = packed.predict_rows(full_matrix[:, : packed.width], position)
        model_idx = position
    elif mask.any():
        indices = np.flatnonzero(mask)
        model_idx = position[indices]
        values = np.zeros(len(table), dtype=float)
        values[indices] = packed.predict_rows(
            full_matrix[indices, : packed.width], model_idx
        )
    else:
        return mask, np.zeros(len(table), dtype=float)
    if on_model_call is not None:
        for _ in range(packed.group_count(model_idx)):
            on_model_call()
    return mask, values


def predict_covered_reference(
    store: ModelStore,
    table: FeatureTable,
    kind: ModelKind,
    full_matrix: np.ndarray | None = None,
    on_model_call: Callable[[], None] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """The retained object-graph path: one ``predict_matrix`` per group.

    Groups rows by the kind's signature column and prices each covered
    ``(kind, signature)`` group with a single model call.  The packed
    :func:`predict_covered` must match this bit for bit — it is the
    benchmark baseline and the parity-test reference.
    """
    if full_matrix is None:
        full_matrix = table.feature_matrix(include_context=True)
    width = len(feature_names(kind.uses_context_features))
    mask = np.zeros(len(table), dtype=bool)
    values = np.zeros(len(table), dtype=float)
    uniques, order, starts, counts = table.group_by_signature(SIGNATURE_FIELDS[kind])
    for signature, start, count in zip(uniques, starts, counts):
        model = store.get(kind, int(signature))
        if model is None:
            continue
        indices = order[start : start + count]
        if on_model_call is not None:
            on_model_call()
        values[indices] = model.predict_matrix(full_matrix[indices, :width])
        mask[indices] = True
    return mask, values


def build_meta_matrix(
    store: ModelStore,
    table: FeatureTable,
    full_matrix: np.ndarray | None = None,
    on_model_call: Callable[[], None] | None = None,
) -> np.ndarray:
    """Meta-feature rows for every table row, built with grouped model calls.

    ``full_matrix`` may pass a precomputed ``table.feature_matrix(
    include_context=True)`` so callers that already expanded the table
    (the trainer) avoid a second pass.  ``on_model_call`` is invoked once
    per vectorized individual-model call — the serving layer counts these.

    Missing individual predictions are imputed with the most general
    available prediction; the coverage flags let the trees learn where each
    model's prediction is real versus imputed.
    """
    return _meta_matrix_via(predict_covered, store, table, full_matrix, on_model_call)


def build_meta_matrix_reference(
    store: ModelStore,
    table: FeatureTable,
    full_matrix: np.ndarray | None = None,
    on_model_call: Callable[[], None] | None = None,
) -> np.ndarray:
    """:func:`build_meta_matrix` through the retained object-graph path
    (one model call per covering group) — the benchmark/parity baseline.

    Faithful to the pre-packed pipeline including its per-batch feature
    expansion: when no ``full_matrix`` is supplied the derived matrix is
    recomputed here rather than read from the table's memo.
    """
    if full_matrix is None:
        from repro.features.featurizer import expand_columns

        full_matrix = expand_columns(table, include_context=True)
    return _meta_matrix_via(
        predict_covered_reference, store, table, full_matrix, on_model_call
    )


def _meta_matrix_via(
    covered_fn: Callable[..., tuple[np.ndarray, np.ndarray]],
    store: ModelStore,
    table: FeatureTable,
    full_matrix: np.ndarray | None,
    on_model_call: Callable[[], None] | None,
) -> np.ndarray:
    """Shared meta-row assembly over either covered-prediction primitive.

    Columns are written straight into one preallocated ``(n, 15)`` output —
    the copies move exact values, so assembly order cannot affect bits.
    """
    n = len(table)
    if full_matrix is None:
        full_matrix = table.feature_matrix(include_context=True)
    kinds = len(_KIND_ORDER)
    out = np.empty((n, len(META_FEATURE_NAMES)), dtype=float)
    predictions = out[:, :kinds]
    flags = out[:, kinds : 2 * kinds]

    for k, kind in enumerate(_KIND_ORDER):
        mask, values = covered_fn(store, table, kind, full_matrix, on_model_call)
        predictions[:, k] = values
        flags[:, k] = mask

    # Impute missing predictions with the most general available one —
    # the last covered kind in specificity order, 0.0 when none covers.
    impute = np.zeros(n, dtype=float)
    for k in range(kinds):
        impute = np.where(flags[:, k] == 1.0, predictions[:, k], impute)
    uncovered = flags != 1.0
    if uncovered.any():
        np.copyto(predictions, impute[:, None], where=uncovered)

    extras = out[:, 2 * kinds :]
    extras[:, 0] = table.input_card
    extras[:, 1] = table.base_card
    extras[:, 2] = table.output_card
    np.divide(table.input_card, table.partition_count, out=extras[:, 3])
    np.divide(table.base_card, table.partition_count, out=extras[:, 4])
    np.divide(table.output_card, table.partition_count, out=extras[:, 5])
    extras[:, 6] = table.partition_count
    return out


def build_meta_row(
    store: ModelStore, features: FeatureInput, bundle: SignatureBundle
) -> np.ndarray:
    """One meta-feature row: a single-row :func:`build_meta_matrix` call,
    so scalar and batched meta-row construction share one implementation."""
    return build_meta_matrix(store, FeatureTable.from_inputs([features], [bundle]))[0]


class CombinedModel:
    """The trained meta-ensemble (FastTree by default, pluggable for Table 6)."""

    def __init__(
        self, store: ModelStore, config: CleoConfig | None = None, regressor: Regressor | None = None
    ) -> None:
        self.store = store
        self.config = config or CleoConfig()
        if regressor is None:
            regressor = FastTreeRegressor(
                n_estimators=self.config.meta_trees,
                max_depth=self.config.meta_depth,
                subsample=self.config.meta_subsample,
                learning_rate=self.config.meta_learning_rate,
                log_target=True,
                seed=self.config.seed,
            )
        self.regressor = regressor
        self._fitted = False

    def fit_rows(self, rows: np.ndarray, latencies: np.ndarray) -> "CombinedModel":
        """Fit on pre-built meta rows (the trainer builds them in bulk)."""
        self.regressor.fit(rows, np.asarray(latencies, dtype=float))
        self._fitted = True
        return self

    def predict_one(self, features: FeatureInput, bundle: SignatureBundle) -> float:
        row = build_meta_row(self.store, features, bundle)
        return self.predict_rows(row.reshape(1, -1))[0]

    def predict_rows(self, rows: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("combined model used before fit")
        return np.clip(np.asarray(self.regressor.predict(rows), dtype=float), 0.0, None)

    def predict_rows_reference(self, rows: np.ndarray) -> np.ndarray:
        """:meth:`predict_rows` through the regressor's retained reference
        path (tree-at-a-time for FastTree) — the benchmark baseline."""
        if not self._fitted:
            raise RuntimeError("combined model used before fit")
        predict = getattr(self.regressor, "predict_reference", self.regressor.predict)
        return np.clip(np.asarray(predict(rows), dtype=float), 0.0, None)

    @property
    def is_fitted(self) -> bool:
        return self._fitted
