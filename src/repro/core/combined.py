"""The combined model: a meta-ensemble over the individual predictions.

Section 4.3: a FastTree (gradient-boosted trees) regressor consumes the
predictions of the four individual models as meta-features, together with
cardinalities, per-partition cardinalities, and the partition count, and
outputs a corrected cost.  It characterizes where each individual model is
reliable, covers every operator (the operator model always predicts), and
degrades gracefully where specialized models are missing.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import CleoConfig, ModelKind
from repro.core.model_store import ModelStore
from repro.features.featurizer import FeatureInput
from repro.ml.base import Regressor
from repro.ml.gbm import FastTreeRegressor
from repro.plan.signatures import SignatureBundle

#: Meta-feature layout: 4 predictions, 4 coverage flags, then the extra
#: features of Section 4.3 — cardinalities (I, B, C), per-partition
#: cardinalities (I/P, B/P, C/P), and the partition count P.
META_FEATURE_NAMES: tuple[str, ...] = (
    "pred_op_subgraph",
    "pred_op_subgraph_approx",
    "pred_op_input",
    "pred_operator",
    "has_op_subgraph",
    "has_op_subgraph_approx",
    "has_op_input",
    "has_operator",
    "I",
    "B",
    "C",
    "I/P",
    "B/P",
    "C/P",
    "P",
)

_KIND_ORDER: tuple[ModelKind, ...] = (
    ModelKind.OP_SUBGRAPH,
    ModelKind.OP_SUBGRAPH_APPROX,
    ModelKind.OP_INPUT,
    ModelKind.OPERATOR,
)


def build_meta_row(
    store: ModelStore, features: FeatureInput, bundle: SignatureBundle
) -> np.ndarray:
    """One meta-feature row: individual predictions + coverage + extras.

    Missing individual predictions are imputed with the most general
    available prediction; the coverage flags let the trees learn where each
    model's prediction is real versus imputed.

    KEEP IN LOCKSTEP with the batched twin,
    :meth:`repro.serving.service.CleoService._meta_rows`, which must mirror
    this layout (column order, imputation, extras) bit for bit.
    """
    predictions: list[float | None] = []
    for kind in _KIND_ORDER:
        model = store.lookup(kind, bundle)
        predictions.append(model.predict_one(features) if model is not None else None)

    available = [p for p in predictions if p is not None]
    impute = available[-1] if available else 0.0  # most general available
    filled = [p if p is not None else impute for p in predictions]
    flags = [1.0 if p is not None else 0.0 for p in predictions]

    f = features
    extras = [
        f.input_card,
        f.base_card,
        f.output_card,
        f.input_card / f.partition_count,
        f.base_card / f.partition_count,
        f.output_card / f.partition_count,
        f.partition_count,
    ]
    return np.array(filled + flags + extras, dtype=float)


class CombinedModel:
    """The trained meta-ensemble (FastTree by default, pluggable for Table 6)."""

    def __init__(
        self, store: ModelStore, config: CleoConfig | None = None, regressor: Regressor | None = None
    ) -> None:
        self.store = store
        self.config = config or CleoConfig()
        if regressor is None:
            regressor = FastTreeRegressor(
                n_estimators=self.config.meta_trees,
                max_depth=self.config.meta_depth,
                subsample=self.config.meta_subsample,
                learning_rate=self.config.meta_learning_rate,
                log_target=True,
                seed=self.config.seed,
            )
        self.regressor = regressor
        self._fitted = False

    def fit_rows(self, rows: np.ndarray, latencies: np.ndarray) -> "CombinedModel":
        """Fit on pre-built meta rows (the trainer builds them in bulk)."""
        self.regressor.fit(rows, np.asarray(latencies, dtype=float))
        self._fitted = True
        return self

    def predict_one(self, features: FeatureInput, bundle: SignatureBundle) -> float:
        row = build_meta_row(self.store, features, bundle)
        return self.predict_rows(row.reshape(1, -1))[0]

    def predict_rows(self, rows: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("combined model used before fit")
        return np.clip(np.asarray(self.regressor.predict(rows), dtype=float), 0.0, None)

    @property
    def is_fitted(self) -> bool:
        return self._fitted
