"""Robustness evaluation: accuracy, coverage, and retention metrics.

The paper defines a robust cost model by three properties (Section 1): high
accuracy, high coverage, and high retention (stable accuracy long after
training).  These helpers compute the per-model metrics behind Tables 5/7/8
and the retention curves of Figure 14.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.stats import median_error_pct, pearson, percentile_error_pct
from repro.core.combined import predict_covered
from repro.core.config import ModelKind
from repro.core.model_store import ModelStore
from repro.core.predictor import CleoPredictor
from repro.execution.runtime_log import OperatorRecord, RunLog


@dataclass(frozen=True)
class ModelQuality:
    """The paper's metric bundle for one model on one test set."""

    name: str
    n_total: int
    n_covered: int
    pearson: float
    median_error_pct: float
    p95_error_pct: float

    @property
    def coverage_pct(self) -> float:
        if self.n_total == 0:
            return float("nan")
        return 100.0 * self.n_covered / self.n_total

    def row(self) -> dict[str, float | str | int]:
        return {
            "model": self.name,
            "correlation": round(self.pearson, 3),
            "median_error_pct": round(self.median_error_pct, 1),
            "p95_error_pct": round(self.p95_error_pct, 1),
            "coverage_pct": round(self.coverage_pct, 1),
            "n": self.n_total,
        }


def _quality(
    name: str, predicted: list[float], actual: list[float], n_total: int
) -> ModelQuality:
    pred = np.asarray(predicted)
    act = np.asarray(actual)
    return ModelQuality(
        name=name,
        n_total=n_total,
        n_covered=len(pred),
        pearson=pearson(pred, act) if len(pred) > 1 else float("nan"),
        median_error_pct=median_error_pct(pred, act),
        p95_error_pct=percentile_error_pct(pred, act, 95.0),
    )


def store_predictions_by_kind(
    store: ModelStore, log: RunLog, kinds: tuple[ModelKind, ...] = tuple(ModelKind)
) -> dict[ModelKind, tuple[np.ndarray, np.ndarray]]:
    """Per-kind ``(covered mask, predictions)`` aligned with record order.

    Predictions are computed columnar: groups are formed with array ops over
    the log's feature table and each covering ``(kind, signature)`` group is
    priced with one vectorized model call.  ``predictions[i]`` is only
    meaningful where ``mask[i]`` is True.
    """
    table = log.to_table()
    full_matrix = table.feature_matrix(include_context=True)
    return {
        kind: predict_covered(store, table, kind, full_matrix) for kind in kinds
    }


def evaluate_store_on_log(
    store: ModelStore, log: RunLog, kinds: tuple[ModelKind, ...] = tuple(ModelKind)
) -> dict[ModelKind, ModelQuality]:
    """Per-kind accuracy over *covered* records plus coverage fraction."""
    table = log.to_table()
    by_kind = store_predictions_by_kind(store, log, kinds)
    out: dict[ModelKind, ModelQuality] = {}
    for kind in kinds:
        mask, predictions = by_kind[kind]
        out[kind] = _quality(
            kind.value,
            predictions[mask],
            table.latency[mask],
            len(table),
        )
    return out


def evaluate_predictor_on_log(
    predictor: CleoPredictor, log: RunLog, name: str = "combined"
) -> ModelQuality:
    """Combined-model accuracy over every record (always 100% coverage)."""
    table = log.to_table()
    predict_table = getattr(predictor, "predict_table", None)
    if predict_table is not None:  # a CleoService: table-native packed path
        predicted = predict_table(table)
    elif isinstance(predictor, CleoPredictor):
        predicted = predictor.predict_records(list(log.operator_records()), table=table)
    else:  # duck-typed record-level predictors
        predicted = predictor.predict_records(list(log.operator_records()))
    return _quality(name, predicted, table.latency, len(table))


def evaluate_baseline_on_records(
    records: list[OperatorRecord], costs: list[float], name: str = "default"
) -> ModelQuality:
    """Quality of an arbitrary cost series (e.g. the default cost model)."""
    actual = [r.actual_latency for r in records]
    return _quality(name, costs, actual, len(records))
