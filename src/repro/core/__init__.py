"""Cleo core: the paper's contribution — robust learned cost models.

The package implements the full Section 3-5 pipeline:

* :class:`~repro.core.learned_model.LearnedCostModel` — one elastic-net cost
  model per template (log-space for accuracy, raw-space twin for the
  analytical resource profile);
* :class:`~repro.core.model_store.ModelStore` — the signature-keyed hash map
  the optimizer loads at startup;
* :class:`~repro.core.combined.CombinedModel` — the FastTree meta-ensemble
  that corrects and combines the individual predictions;
* :class:`~repro.core.trainer.CleoTrainer` — the periodic training pipeline
  over run logs (the feedback loop);
* :class:`~repro.core.predictor.CleoPredictor` — prediction with the
  specificity-ordered fallback chain;
* :class:`~repro.core.cost_model.CleoCostModel` — the optimizer-facing cost
  model (implements the same protocol as the default model).

Consumers should reach these through :class:`~repro.serving.service.
CleoService`, the serving façade that owns batching, caching, persistence,
and versioned deployment.
"""

from repro.core.combined import CombinedModel
from repro.core.config import CleoConfig, ModelKind
from repro.core.cost_model import CleoCostModel
from repro.core.learned_model import LearnedCostModel, ResourceProfile
from repro.core.lifecycle import (
    DayOutcome,
    LifecycleManager,
    ModelRegistry,
    ModelVersion,
    RetrainPolicy,
)
from repro.core.model_store import ModelStore
from repro.core.predictor import CleoPredictor
from repro.core.regression_control import DualPlanner, ModelQuarantine
from repro.core.robustness import ModelQuality, evaluate_predictor_on_log, evaluate_store_on_log
from repro.core.trainer import CleoTrainer

__all__ = [
    "CleoConfig",
    "CleoCostModel",
    "CleoPredictor",
    "CleoTrainer",
    "CombinedModel",
    "DayOutcome",
    "DualPlanner",
    "LearnedCostModel",
    "LifecycleManager",
    "ModelKind",
    "ModelQuality",
    "ModelQuarantine",
    "ModelRegistry",
    "ModelStore",
    "ModelVersion",
    "ResourceProfile",
    "RetrainPolicy",
    "evaluate_predictor_on_log",
    "evaluate_store_on_log",
]
