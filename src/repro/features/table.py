"""Columnar feature storage: the struct-of-arrays behind the fast paths.

A :class:`FeatureTable` holds one column per :class:`FeatureInput` attribute
(I/B/C/L/P/IN/PM/CL/D) plus, when built from a run log, the four model
signatures, actual latencies, day, cluster, and ad-hoc flags — everything
the training and evaluation pipelines consume, materialized in one pass
over the records.

Downstream layers operate on whole columns:

* :meth:`FeatureTable.feature_matrix` expands the derived feature matrix
  with one vectorized pass per registry expression (bitwise identical to
  per-row :func:`~repro.features.featurizer.feature_vector` expansion);
* :meth:`FeatureTable.signature_column` exposes the signature arrays that
  the trainer groups with ``argsort``/``unique`` instead of per-record
  dict appends;
* ``latency`` / ``day`` / ``is_adhoc`` feed training targets and splits.

Tables are immutable by convention: :class:`~repro.execution.runtime_log.
RunLog` caches one per materialization and invalidates on mutation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.features.featurizer import COLUMN_NAMES, FeatureInput, expand_columns

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.execution.runtime_log import OperatorRecord
    from repro.plan.signatures import SignatureBundle

#: Signature column names, mirroring SignatureBundle's fields.
SIGNATURE_NAMES: tuple[str, ...] = ("strict", "approx", "input", "operator")

#: The longest latency a single operator row can legitimately report,
#: mirroring the serving layer's prediction clamp (``_MAX_PREDICT_SECONDS``
#: in :mod:`repro.core.learned_model`, ~116 days).  Anything beyond it is
#: telemetry corruption (a unit bug, a stuck clock), not a slow operator.
MAX_SANE_LATENCY_S = 1e7


def _empty_f8() -> np.ndarray:
    return np.empty(0, dtype=float)


@dataclass(frozen=True)
class FeatureTable:
    """Struct-of-arrays over operator instances.

    Feature columns are always present (possibly empty); signature and
    outcome columns are empty when the table was built from bare
    :class:`FeatureInput` objects rather than logged records.
    """

    input_card: np.ndarray
    base_card: np.ndarray
    output_card: np.ndarray
    avg_row_bytes: np.ndarray
    partition_count: np.ndarray
    input_enc: np.ndarray
    params_enc: np.ndarray
    logical_count: np.ndarray
    depth: np.ndarray
    #: Signature columns keyed by SIGNATURE_NAMES (uint64), empty when absent.
    signatures: dict[str, np.ndarray]
    #: Actual exclusive latencies (the learning target), empty when absent.
    latency: np.ndarray
    day: np.ndarray
    cluster: tuple[str, ...]
    is_adhoc: np.ndarray

    def __len__(self) -> int:
        return len(self.input_card)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_inputs(
        cls,
        inputs: Sequence[FeatureInput],
        bundles: "Sequence[SignatureBundle] | None" = None,
    ) -> "FeatureTable":
        """Pack feature inputs (and optionally their signatures) into columns."""
        inputs = list(inputs)
        columns = {
            name: np.array([getattr(f, name) for f in inputs], dtype=float)
            for name in COLUMN_NAMES
        }
        signatures: dict[str, np.ndarray] = {}
        if bundles is not None:
            bundles = list(bundles)
            if len(bundles) != len(inputs):
                raise ValueError("inputs and bundles must align")
            for name in SIGNATURE_NAMES:
                signatures[name] = np.array(
                    [getattr(b, name) for b in bundles], dtype=np.uint64
                )
        return cls(
            **columns,
            signatures=signatures,
            latency=_empty_f8(),
            day=np.empty(0, dtype=np.int64),
            cluster=(),
            is_adhoc=np.empty(0, dtype=bool),
        )

    @classmethod
    def from_records(cls, records: "Sequence[OperatorRecord]") -> "FeatureTable":
        """Materialize every column from operator records in one pass."""
        records = list(records)
        n = len(records)
        feature_cols = {name: np.empty(n, dtype=float) for name in COLUMN_NAMES}
        signatures = {name: np.empty(n, dtype=np.uint64) for name in SIGNATURE_NAMES}
        latency = np.empty(n, dtype=float)
        day = np.empty(n, dtype=np.int64)
        is_adhoc = np.empty(n, dtype=bool)
        cluster: list[str] = []
        for i, record in enumerate(records):
            f = record.features
            feature_cols["input_card"][i] = f.input_card
            feature_cols["base_card"][i] = f.base_card
            feature_cols["output_card"][i] = f.output_card
            feature_cols["avg_row_bytes"][i] = f.avg_row_bytes
            feature_cols["partition_count"][i] = f.partition_count
            feature_cols["input_enc"][i] = f.input_enc
            feature_cols["params_enc"][i] = f.params_enc
            feature_cols["logical_count"][i] = f.logical_count
            feature_cols["depth"][i] = f.depth
            s = record.signatures
            signatures["strict"][i] = s.strict
            signatures["approx"][i] = s.approx
            signatures["input"][i] = s.input
            signatures["operator"][i] = s.operator
            latency[i] = record.actual_latency
            day[i] = record.day
            is_adhoc[i] = record.is_adhoc
            cluster.append(record.cluster)
        return cls(
            **feature_cols,
            signatures=signatures,
            latency=latency,
            day=day,
            cluster=tuple(cluster),
            is_adhoc=is_adhoc,
        )

    def take(self, indices: np.ndarray) -> "FeatureTable":
        """A new table holding the given rows, in the given order.

        Used by the sharded serving tier to split one request table into
        per-shard sub-tables: every column (features, signatures, outcomes)
        is gathered with one fancy index, so sub-table rows are the exact
        arrays of the parent rows.  Matrix memoization is per table, so the
        sub-table expands its own feature matrix on first use.
        """
        indices = np.asarray(indices, dtype=np.int64)
        feature_cols = {
            name: getattr(self, name)[indices] for name in COLUMN_NAMES
        }
        return FeatureTable(
            **feature_cols,
            signatures={
                name: column[indices] for name, column in self.signatures.items()
            },
            latency=self.latency[indices] if len(self.latency) else self.latency,
            day=self.day[indices] if len(self.day) else self.day,
            cluster=tuple(self.cluster[i] for i in indices) if self.cluster else (),
            is_adhoc=self.is_adhoc[indices] if len(self.is_adhoc) else self.is_adhoc,
        )

    # ------------------------------------------------------------------ #
    # Columnar views
    # ------------------------------------------------------------------ #

    def feature_matrix(self, include_context: bool = False) -> np.ndarray:
        """The (n, d) derived feature matrix for this table's rows.

        Memoized per table (tables are immutable by convention, and the
        serving hot path expands the same table once per batch otherwise);
        treat the returned array as read-only.
        """
        key = "_matrix_context" if include_context else "_matrix_basic"
        cached = self.__dict__.get(key)
        if cached is None:
            cached = expand_columns(self, include_context)
            self.__dict__[key] = cached
        return cached

    def signature_column(self, name: str) -> np.ndarray:
        """One signature column ("strict"/"approx"/"input"/"operator")."""
        if name not in self.signatures:
            raise KeyError(
                f"table has no {name!r} signature column (built from bare inputs?)"
            )
        return self.signatures[name]

    @property
    def has_signatures(self) -> bool:
        return bool(self.signatures)

    def group_by_signature(
        self, name: str
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Group rows by one signature column with array ops.

        Returns ``(signatures, order, starts, counts)``: the unique signature
        values, a stable row permutation that makes each group contiguous
        (original record order preserved within groups), and each group's
        start offset / size within ``order``.
        """
        column = self.signature_column(name)
        order = np.argsort(column, kind="stable")
        uniques, starts, counts = np.unique(
            column[order], return_index=True, return_counts=True
        )
        return uniques, order, starts, counts

    # ------------------------------------------------------------------ #
    # Data-quality gates (training-path sanitization)
    # ------------------------------------------------------------------ #

    def adjacent_duplicate_mask(self) -> np.ndarray:
        """True for rows bitwise-identical to their immediate predecessor.

        The shape an at-least-once telemetry writer produces when it
        retries an append: the copy lands right after the original.  The
        rule is deliberately *adjacency*-scoped — recurring workloads can
        legitimately contain identical rows far apart (the same template
        instance re-executed within a day), and those must survive so the
        clean-data path stays bitwise-identical to the unsanitized one.
        Float columns compare by bit pattern, so double-appended NaN rows
        are caught too.
        """
        n = len(self)
        duplicate = np.zeros(n, dtype=bool)
        if n < 2:
            return duplicate
        same = np.ones(n - 1, dtype=bool)
        for name in COLUMN_NAMES:
            bits = np.ascontiguousarray(
                getattr(self, name), dtype=np.float64
            ).view(np.uint64)
            same &= bits[1:] == bits[:-1]
        for column in self.signatures.values():
            same &= column[1:] == column[:-1]
        if len(self.latency):
            bits = np.ascontiguousarray(self.latency, dtype=np.float64).view(
                np.uint64
            )
            same &= bits[1:] == bits[:-1]
        if len(self.day):
            same &= self.day[1:] == self.day[:-1]
        if len(self.is_adhoc):
            same &= self.is_adhoc[1:] == self.is_adhoc[:-1]
        if self.cluster:
            names = np.asarray(self.cluster)
            same &= names[1:] == names[:-1]
        duplicate[1:] = same
        return duplicate

    def sanitize_mask(self) -> tuple[np.ndarray, dict[str, int]]:
        """Rows safe to train on, plus per-rule excision counts.

        A row is kept when every feature column is finite, its latency is
        finite, non-negative, and below :data:`MAX_SANE_LATENCY_S`, and it
        is not an adjacent duplicate.  On clean data the mask is all-True,
        so callers can short-circuit to the original table and keep the
        sanitized path bitwise-identical to the unsanitized one.
        """
        n = len(self)
        feature_ok = np.ones(n, dtype=bool)
        for name in COLUMN_NAMES:
            feature_ok &= np.isfinite(getattr(self, name))
        if len(self.latency):
            with np.errstate(invalid="ignore"):
                latency_ok = (
                    np.isfinite(self.latency)
                    & (self.latency >= 0.0)
                    & (self.latency <= MAX_SANE_LATENCY_S)
                )
        else:
            latency_ok = np.ones(n, dtype=bool)
        duplicate = self.adjacent_duplicate_mask()
        keep = feature_ok & latency_ok & ~duplicate
        counts = {
            "nonfinite_features": int((~feature_ok).sum()),
            "invalid_latency": int((~latency_ok).sum()),
            "duplicate_rows": int(duplicate.sum()),
            "rows_dropped": int((~keep).sum()),
        }
        return keep, counts

    def describe(self) -> str:
        parts = [f"{len(self)} rows"]
        if self.has_signatures:
            parts.append("signatures")
        if len(self.latency):
            parts.append("latencies")
        return f"FeatureTable({', '.join(parts)})"
