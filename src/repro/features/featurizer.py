"""Feature extraction for learned cost models.

Implements the paper's feature set:

* **Basic features** (Table 2): input cardinality ``I`` (from children),
  base cardinality ``B`` (leaf inputs), output cardinality ``C``, average
  row length ``L``, partition count ``P``, normalized inputs ``IN``, and
  job parameters ``PM``.
* **Derived features** (Table 3): square roots, logarithms, pairwise
  products, and per-partition variants, grouped as "input/output data",
  "input × output", and "per-partition".
* **Context features**: the number of logical operators ``CL`` and operator
  depth ``D``, added by the operator-input and coarser models (Section 4.2).

Cardinalities fed here are the *estimated* ones (the paper feeds learned
models the same statistics the default cost model sees), so per-template
estimation biases become learnable adjustments.

The registry is **columnar**: every named feature is an expression over
whole columns (`Callable[[columns], np.ndarray]`), evaluated once per
workload on a :class:`~repro.features.table.FeatureTable` instead of once
per operator.  Because an expression only uses elementwise numpy ufuncs, it
computes bit-for-bit the same values whether it is handed a million-row
column or the scalar attributes of a single :class:`FeatureInput` — the
scalar `feature_vector` / `feature_matrix` wrappers below are pinned
bitwise-identical to the columnar path by construction (regression net:
``tests/features/test_feature_table.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable

import numpy as np

from repro.common.hashing import stable_unit_float


@dataclass(frozen=True, slots=True)
class FeatureInput:
    """Raw statistics of one operator instance.

    Attributes mirror Table 2; ``input_enc`` and ``params_enc`` are numeric
    encodings of the normalized-input template and parameter values.
    """

    input_card: float  # I
    base_card: float  # B
    output_card: float  # C
    avg_row_bytes: float  # L
    partition_count: float  # P
    input_enc: float = 0.0  # IN
    params_enc: float = 0.0  # PM
    logical_count: float = 1.0  # CL
    depth: float = 1.0  # D

    def with_partition_count(self, partition_count: float) -> "FeatureInput":
        """Copy with a different ``P`` — used during partition exploration."""
        return replace(self, partition_count=float(partition_count))

    @staticmethod
    def encode_inputs(normalized_inputs: frozenset[str]) -> float:
        """Stable numeric encoding of a normalized input set, in [0, 1)."""
        key = frozenset(normalized_inputs)
        cached = _INPUT_ENC_CACHE.get(key)
        if cached is None:
            if len(_INPUT_ENC_CACHE) >= _INPUT_ENC_CACHE_LIMIT:
                _INPUT_ENC_CACHE.clear()
            cached = stable_unit_float("in-enc", key)
            _INPUT_ENC_CACHE[key] = cached
        return cached

    @staticmethod
    def encode_params(params: tuple[float, ...]) -> float:
        """Numeric encoding of job parameters (mean value; 0 when absent)."""
        # repro: allow(float-reduction) -- reduces one operator's fixed parameter tuple, computed once at featurization time by BOTH the scalar and columnar paths; batch size can never change its grouping
        return float(np.mean(params)) if params else 0.0


#: Input-set encodings recur across every operator instance of a template;
#: the cache skips re-hashing identical frozensets (values unchanged).  It
#: clears at the limit so long-running processes stay bounded (entries are
#: pure recomputations).
_INPUT_ENC_CACHE: dict[frozenset[str], float] = {}
_INPUT_ENC_CACHE_LIMIT = 1 << 18


#: Attribute names consumed by feature expressions, in FeatureInput order.
COLUMN_NAMES: tuple[str, ...] = (
    "input_card",
    "base_card",
    "output_card",
    "avg_row_bytes",
    "partition_count",
    "input_enc",
    "params_enc",
    "logical_count",
    "depth",
)


def _log(x):
    """Elementwise ``log1p(max(x, 0))`` — works on columns and scalars."""
    return np.log1p(np.maximum(x, 0.0))


def _sqrt(x):
    """Elementwise ``sqrt(max(x, 0))`` — works on columns and scalars."""
    return np.sqrt(np.maximum(x, 0.0))


#: A feature expression: any object exposing the COLUMN_NAMES attributes
#: (FeatureTable columns or a single FeatureInput's scalars) -> values.
#: Expressions must use only elementwise operations so that columnar and
#: scalar evaluation are bitwise identical.
FeatureExpr = Callable[[Any], Any]

_ExprSpec = list[tuple[str, FeatureExpr]]

_BASIC: _ExprSpec = [
    ("I", lambda t: t.input_card),
    ("B", lambda t: t.base_card),
    ("C", lambda t: t.output_card),
    ("L", lambda t: t.avg_row_bytes),
    ("P", lambda t: t.partition_count),
    ("IN", lambda t: t.input_enc),
    ("PM", lambda t: t.params_enc),
]

_DERIVED: _ExprSpec = [
    # Input or output data volume.
    ("sqrt(I)", lambda t: _sqrt(t.input_card)),
    ("sqrt(B)", lambda t: _sqrt(t.base_card)),
    ("sqrt(C)", lambda t: _sqrt(t.output_card)),
    ("L*I", lambda t: t.avg_row_bytes * t.input_card),
    ("L*B", lambda t: t.avg_row_bytes * t.base_card),
    ("L*log(B)", lambda t: t.avg_row_bytes * _log(t.base_card)),
    ("L*log(I)", lambda t: t.avg_row_bytes * _log(t.input_card)),
    ("L*log(C)", lambda t: t.avg_row_bytes * _log(t.output_card)),
    # Input x output (processing and network communication).
    ("B*C", lambda t: t.base_card * t.output_card),
    ("I*C", lambda t: t.input_card * t.output_card),
    ("log(B)*C", lambda t: _log(t.base_card) * t.output_card),
    ("B*log(C)", lambda t: t.base_card * _log(t.output_card)),
    ("I*log(C)", lambda t: t.input_card * _log(t.output_card)),
    ("log(I)*log(C)", lambda t: _log(t.input_card) * _log(t.output_card)),
    ("log(B)*log(C)", lambda t: _log(t.base_card) * _log(t.output_card)),
    # Per-partition (partition size seen by one machine).
    ("I/P", lambda t: t.input_card / t.partition_count),
    ("C/P", lambda t: t.output_card / t.partition_count),
    ("I*L/P", lambda t: t.input_card * t.avg_row_bytes / t.partition_count),
    ("C*L/P", lambda t: t.output_card * t.avg_row_bytes / t.partition_count),
    ("sqrt(I)/P", lambda t: _sqrt(t.input_card) / t.partition_count),
    ("sqrt(C)/P", lambda t: _sqrt(t.output_card) / t.partition_count),
    ("log(I)/P", lambda t: _log(t.input_card) / t.partition_count),
]

_CONTEXT: _ExprSpec = [
    ("CL", lambda t: t.logical_count),
    ("D", lambda t: t.depth),
]

#: Public columnar registry: feature name -> vectorized expression, for
#: experiments that build custom feature subsets (e.g. the Figure 18
#: cumulative-feature ablation) on whole tables at once.
FEATURE_EXPRESSIONS: dict[str, FeatureExpr] = {
    name: fn for name, fn in (_BASIC + _DERIVED + _CONTEXT)
}


def _scalarized(expr: FeatureExpr) -> Callable[[FeatureInput], float]:
    return lambda f: float(expr(f))


#: Scalar compatibility registry: feature name -> per-instance extractor.
#: Each entry evaluates the *same* columnar expression on one instance's
#: scalar attributes, so scalar and columnar values agree bitwise.
FEATURE_FUNCTIONS: dict[str, Callable[[FeatureInput], float]] = {
    name: _scalarized(fn) for name, fn in (_BASIC + _DERIVED + _CONTEXT)
}

BASIC_FEATURE_NAMES: tuple[str, ...] = tuple(name for name, _ in _BASIC)
DERIVED_FEATURE_NAMES: tuple[str, ...] = tuple(name for name, _ in _DERIVED)
CONTEXT_FEATURE_NAMES: tuple[str, ...] = tuple(name for name, _ in _CONTEXT)
ALL_FEATURE_NAMES: tuple[str, ...] = (
    BASIC_FEATURE_NAMES + DERIVED_FEATURE_NAMES + CONTEXT_FEATURE_NAMES
)

#: Features that involve the partition count: the only ones that vary during
#: partition exploration (Section 5.3's key insight).
PARTITION_DEPENDENT = frozenset(
    {"P", "I/P", "C/P", "I*L/P", "C*L/P", "sqrt(I)/P", "sqrt(C)/P", "log(I)/P"}
)

#: Features proportional to 1/P (the theta_P family) and to P (theta_C).
INVERSE_P_FEATURES = frozenset(
    {"I/P", "C/P", "I*L/P", "C*L/P", "sqrt(I)/P", "sqrt(C)/P", "log(I)/P"}
)
LINEAR_P_FEATURES = frozenset({"P"})


def feature_names(include_context: bool = False) -> tuple[str, ...]:
    """Feature-vector layout for the given model family."""
    if include_context:
        return ALL_FEATURE_NAMES
    return BASIC_FEATURE_NAMES + DERIVED_FEATURE_NAMES


def expand_columns(columns: Any, include_context: bool = False) -> np.ndarray:
    """Evaluate the feature registry over a column provider.

    ``columns`` is anything exposing the :data:`COLUMN_NAMES` attributes as
    equal-length float64 arrays (a :class:`~repro.features.table.FeatureTable`).
    Returns the ``(n, d)`` derived feature matrix.  The context features are
    a suffix of the full layout, so ``expand_columns(t, True)[:, :29]``
    equals ``expand_columns(t, False)``.
    """
    spec = _BASIC + _DERIVED + (_CONTEXT if include_context else [])
    n = len(columns.input_card)
    if n == 0:
        return np.empty((0, len(spec)))
    out = np.empty((n, len(spec)), dtype=float)
    for j, (_, expr) in enumerate(spec):
        out[:, j] = expr(columns)
    return out


class _InputColumns:
    """Column view over a list of FeatureInput (the scalar-API bridge)."""

    __slots__ = COLUMN_NAMES

    def __init__(self, inputs: list[FeatureInput]) -> None:
        for name in COLUMN_NAMES:
            setattr(
                self, name, np.array([getattr(f, name) for f in inputs], dtype=float)
            )


def feature_vector(f: FeatureInput, include_context: bool = False) -> np.ndarray:
    """Expand one :class:`FeatureInput` into the derived feature vector.

    Thin compatibility wrapper over the columnar registry (one-row table);
    bitwise identical to the corresponding :func:`expand_columns` row.
    """
    return expand_columns(_InputColumns([f]), include_context)[0]


def feature_matrix(inputs: list[FeatureInput], include_context: bool = False) -> np.ndarray:
    """Stack feature vectors for many instances into an (n, d) matrix.

    Thin compatibility wrapper over the columnar registry: inputs are packed
    into columns once and expanded with one vectorized pass per feature.
    """
    if not inputs:
        width = len(feature_names(include_context))
        return np.empty((0, width))
    return expand_columns(_InputColumns(list(inputs)), include_context)


def partition_feature_names(include_context: bool = False) -> tuple[tuple[int, str], ...]:
    """(index, name) of partition-dependent features, for resource profiles."""
    names = feature_names(include_context)
    return tuple((i, n) for i, n in enumerate(names) if n in PARTITION_DEPENDENT)
