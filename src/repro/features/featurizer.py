"""Feature extraction for learned cost models.

Implements the paper's feature set:

* **Basic features** (Table 2): input cardinality ``I`` (from children),
  base cardinality ``B`` (leaf inputs), output cardinality ``C``, average
  row length ``L``, partition count ``P``, normalized inputs ``IN``, and
  job parameters ``PM``.
* **Derived features** (Table 3): square roots, logarithms, pairwise
  products, and per-partition variants, grouped as "input/output data",
  "input × output", and "per-partition".
* **Context features**: the number of logical operators ``CL`` and operator
  depth ``D``, added by the operator-input and coarser models (Section 4.2).

Cardinalities fed here are the *estimated* ones (the paper feeds learned
models the same statistics the default cost model sees), so per-template
estimation biases become learnable adjustments.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.common.hashing import stable_unit_float


@dataclass(frozen=True)
class FeatureInput:
    """Raw statistics of one operator instance.

    Attributes mirror Table 2; ``input_enc`` and ``params_enc`` are numeric
    encodings of the normalized-input template and parameter values.
    """

    input_card: float  # I
    base_card: float  # B
    output_card: float  # C
    avg_row_bytes: float  # L
    partition_count: float  # P
    input_enc: float = 0.0  # IN
    params_enc: float = 0.0  # PM
    logical_count: float = 1.0  # CL
    depth: float = 1.0  # D

    def with_partition_count(self, partition_count: float) -> "FeatureInput":
        """Copy with a different ``P`` — used during partition exploration."""
        return replace(self, partition_count=float(partition_count))

    @staticmethod
    def encode_inputs(normalized_inputs: frozenset[str]) -> float:
        """Stable numeric encoding of a normalized input set, in [0, 1)."""
        return stable_unit_float("in-enc", frozenset(normalized_inputs))

    @staticmethod
    def encode_params(params: tuple[float, ...]) -> float:
        """Numeric encoding of job parameters (mean value; 0 when absent)."""
        return float(np.mean(params)) if params else 0.0


def _log(x: float) -> float:
    return float(np.log1p(max(x, 0.0)))


def _sqrt(x: float) -> float:
    return float(np.sqrt(max(x, 0.0)))


# Each feature is (name, function of FeatureInput).  Order defines the
# feature-vector layout and is part of the public API.
_BasicSpec = list[tuple[str, Callable[[FeatureInput], float]]]

_BASIC: _BasicSpec = [
    ("I", lambda f: f.input_card),
    ("B", lambda f: f.base_card),
    ("C", lambda f: f.output_card),
    ("L", lambda f: f.avg_row_bytes),
    ("P", lambda f: f.partition_count),
    ("IN", lambda f: f.input_enc),
    ("PM", lambda f: f.params_enc),
]

_DERIVED: _BasicSpec = [
    # Input or output data volume.
    ("sqrt(I)", lambda f: _sqrt(f.input_card)),
    ("sqrt(B)", lambda f: _sqrt(f.base_card)),
    ("sqrt(C)", lambda f: _sqrt(f.output_card)),
    ("L*I", lambda f: f.avg_row_bytes * f.input_card),
    ("L*B", lambda f: f.avg_row_bytes * f.base_card),
    ("L*log(B)", lambda f: f.avg_row_bytes * _log(f.base_card)),
    ("L*log(I)", lambda f: f.avg_row_bytes * _log(f.input_card)),
    ("L*log(C)", lambda f: f.avg_row_bytes * _log(f.output_card)),
    # Input x output (processing and network communication).
    ("B*C", lambda f: f.base_card * f.output_card),
    ("I*C", lambda f: f.input_card * f.output_card),
    ("log(B)*C", lambda f: _log(f.base_card) * f.output_card),
    ("B*log(C)", lambda f: f.base_card * _log(f.output_card)),
    ("I*log(C)", lambda f: f.input_card * _log(f.output_card)),
    ("log(I)*log(C)", lambda f: _log(f.input_card) * _log(f.output_card)),
    ("log(B)*log(C)", lambda f: _log(f.base_card) * _log(f.output_card)),
    # Per-partition (partition size seen by one machine).
    ("I/P", lambda f: f.input_card / f.partition_count),
    ("C/P", lambda f: f.output_card / f.partition_count),
    ("I*L/P", lambda f: f.input_card * f.avg_row_bytes / f.partition_count),
    ("C*L/P", lambda f: f.output_card * f.avg_row_bytes / f.partition_count),
    ("sqrt(I)/P", lambda f: _sqrt(f.input_card) / f.partition_count),
    ("sqrt(C)/P", lambda f: _sqrt(f.output_card) / f.partition_count),
    ("log(I)/P", lambda f: _log(f.input_card) / f.partition_count),
]

_CONTEXT: _BasicSpec = [
    ("CL", lambda f: f.logical_count),
    ("D", lambda f: f.depth),
]

#: Public registry: feature name -> extractor, for experiments that build
#: custom feature subsets (e.g. the Figure 18 cumulative-feature ablation).
FEATURE_FUNCTIONS: dict[str, Callable[[FeatureInput], float]] = {
    name: fn for name, fn in (_BASIC + _DERIVED + _CONTEXT)
}

BASIC_FEATURE_NAMES: tuple[str, ...] = tuple(name for name, _ in _BASIC)
DERIVED_FEATURE_NAMES: tuple[str, ...] = tuple(name for name, _ in _DERIVED)
CONTEXT_FEATURE_NAMES: tuple[str, ...] = tuple(name for name, _ in _CONTEXT)
ALL_FEATURE_NAMES: tuple[str, ...] = (
    BASIC_FEATURE_NAMES + DERIVED_FEATURE_NAMES + CONTEXT_FEATURE_NAMES
)

#: Features that involve the partition count: the only ones that vary during
#: partition exploration (Section 5.3's key insight).
PARTITION_DEPENDENT = frozenset(
    {"P", "I/P", "C/P", "I*L/P", "C*L/P", "sqrt(I)/P", "sqrt(C)/P", "log(I)/P"}
)

#: Features proportional to 1/P (the theta_P family) and to P (theta_C).
INVERSE_P_FEATURES = frozenset(
    {"I/P", "C/P", "I*L/P", "C*L/P", "sqrt(I)/P", "sqrt(C)/P", "log(I)/P"}
)
LINEAR_P_FEATURES = frozenset({"P"})


def feature_names(include_context: bool = False) -> tuple[str, ...]:
    """Feature-vector layout for the given model family."""
    if include_context:
        return ALL_FEATURE_NAMES
    return BASIC_FEATURE_NAMES + DERIVED_FEATURE_NAMES


def feature_vector(f: FeatureInput, include_context: bool = False) -> np.ndarray:
    """Expand one :class:`FeatureInput` into the derived feature vector."""
    spec = _BASIC + _DERIVED + (_CONTEXT if include_context else [])
    return np.array([fn(f) for _, fn in spec], dtype=float)


def feature_matrix(inputs: list[FeatureInput], include_context: bool = False) -> np.ndarray:
    """Stack feature vectors for many instances into an (n, d) matrix."""
    if not inputs:
        width = len(feature_names(include_context))
        return np.empty((0, width))
    return np.vstack([feature_vector(f, include_context) for f in inputs])


def partition_feature_names(include_context: bool = False) -> tuple[tuple[int, str], ...]:
    """(index, name) of partition-dependent features, for resource profiles."""
    names = feature_names(include_context)
    return tuple((i, n) for i, n in enumerate(names) if n in PARTITION_DEPENDENT)
