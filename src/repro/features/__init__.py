"""Featurization: the paper's basic and derived features (Tables 2-3).

One :class:`FeatureInput` captures the raw statistics of an operator
instance; :func:`feature_vector` expands it into the ~30-dimensional derived
feature vector shared by all learned models.  :class:`FeatureTable` is the
columnar (struct-of-arrays) form that the training and evaluation pipelines
expand in bulk — one vectorized pass per registry expression instead of one
Python call per operator.
"""

from repro.features.featurizer import (
    ALL_FEATURE_NAMES,
    BASIC_FEATURE_NAMES,
    CONTEXT_FEATURE_NAMES,
    DERIVED_FEATURE_NAMES,
    FEATURE_EXPRESSIONS,
    FEATURE_FUNCTIONS,
    FeatureInput,
    expand_columns,
    feature_matrix,
    feature_names,
    feature_vector,
    partition_feature_names,
)
from repro.features.table import FeatureTable

__all__ = [
    "ALL_FEATURE_NAMES",
    "BASIC_FEATURE_NAMES",
    "CONTEXT_FEATURE_NAMES",
    "DERIVED_FEATURE_NAMES",
    "FEATURE_EXPRESSIONS",
    "FEATURE_FUNCTIONS",
    "FeatureInput",
    "FeatureTable",
    "expand_columns",
    "feature_matrix",
    "feature_names",
    "feature_vector",
    "partition_feature_names",
]
