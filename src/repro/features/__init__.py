"""Featurization: the paper's basic and derived features (Tables 2-3).

One :class:`FeatureInput` captures the raw statistics of an operator
instance; :func:`feature_vector` expands it into the ~30-dimensional derived
feature vector shared by all learned models.
"""

from repro.features.featurizer import (
    ALL_FEATURE_NAMES,
    BASIC_FEATURE_NAMES,
    CONTEXT_FEATURE_NAMES,
    DERIVED_FEATURE_NAMES,
    FeatureInput,
    feature_matrix,
    feature_names,
    feature_vector,
    partition_feature_names,
)

__all__ = [
    "ALL_FEATURE_NAMES",
    "BASIC_FEATURE_NAMES",
    "CONTEXT_FEATURE_NAMES",
    "DERIVED_FEATURE_NAMES",
    "FeatureInput",
    "feature_matrix",
    "feature_names",
    "feature_vector",
    "partition_feature_names",
]
