"""Feature extraction from live physical operators.

Bridges the plan layer and the featurizer: build the :class:`FeatureInput`
of an operator as the optimizer sees it at costing time (estimated
cardinalities, current partition count).
"""

from __future__ import annotations

from repro.cardinality.estimator import CardinalityEstimator
from repro.features.featurizer import FeatureInput
from repro.plan.physical import PhysicalOp


def feature_input_for(
    op: PhysicalOp,
    estimator: CardinalityEstimator,
    partition_override: int | None = None,
) -> FeatureInput:
    """Compile-time features of one operator instance.

    Cardinalities are the *estimated* ones — the same statistics the default
    cost model consumes, which is the paper's fairness convention — while
    ``partition_override`` lets partition exploration re-featurize the
    operator at a candidate partition count without rebuilding the plan.
    """
    return FeatureInput(
        input_card=estimator.estimate_input(op),
        base_card=op.base_card,
        output_card=estimator.estimate(op),
        avg_row_bytes=op.row_bytes,
        partition_count=float(partition_override or op.partition_count),
        input_enc=FeatureInput.encode_inputs(op.normalized_inputs),
        params_enc=FeatureInput.encode_params(op.params),
        logical_count=float(op.logical_op_count()),
        depth=float(op.depth),
    )
