"""Text and JSON reporters for lint runs.

Both renderers are deterministic: findings arrive pre-sorted from the
framework and JSON is dumped with sorted keys, so `repro lint --json` is
byte-identical across processes and PYTHONHASHSEED values (pinned by
tests/analysis).
"""

from __future__ import annotations

import json

from repro.analysis.framework import AnalysisReport, Finding

REPORT_VERSION = 1


def _counts_by_rule(findings: list[Finding]) -> dict[str, int]:
    out: dict[str, int] = {}
    for finding in findings:
        out[finding.rule] = out.get(finding.rule, 0) + 1
    return dict(sorted(out.items()))


def render_text(report: AnalysisReport) -> str:
    """Human-oriented report: one line per finding plus a summary."""
    lines: list[str] = []
    for finding in report.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.severity}[{finding.rule}] {finding.message}"
        )
    if report.findings and report.baselined:
        lines.append("")
    if report.baselined:
        lines.append(f"baselined findings ({len(report.baselined)} grandfathered):")
        for finding in report.baselined:
            lines.append(
                f"  {finding.path}:{finding.line}: [{finding.rule}] {finding.message}"
            )
    summary = (
        f"checked {report.files_checked} files, rules: {', '.join(report.rules_run)}"
    )
    verdict = (
        f"{len(report.errors)} error(s), {len(report.warnings)} warning(s), "
        f"{len(report.baselined)} baselined"
    )
    if lines:
        lines.append("")
    lines.append(summary)
    lines.append(verdict)
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    """Machine-oriented report; stable bytes for a given tree."""
    payload = {
        "version": REPORT_VERSION,
        "files_checked": report.files_checked,
        "rules_run": list(report.rules_run),
        "findings": [f.to_dict() for f in report.findings],
        "baselined": [f.to_dict() for f in report.baselined],
        "summary": {
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "baselined": len(report.baselined),
            "by_rule": _counts_by_rule(report.findings),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
