"""Determinism & concurrency invariant checker (``repro lint``).

Nine PRs of this reproduction rest on invariants that used to be enforced
only by reviewer memory: bitwise parity between batched and scalar paths,
PYTHONHASHSEED independence, no wall-clock/RNG in deterministic fault and
chaos decisions, and locks never held across model computation.  Two shipped
bugs (the PR 2 set-iteration plan flips, the PR 6 builtin-``hash`` ban in
routing) were exactly this class.  This package machine-checks those rules
with a self-contained AST lint pass:

* a visitor-based rule framework with per-rule severity and module scoping
  (:mod:`repro.analysis.framework`);
* inline ``# repro: allow(<rule>) -- <justification>`` pragmas for
  intentional, justified exceptions;
* a checked-in JSON baseline for grandfathered findings
  (:mod:`repro.analysis.baseline`);
* deterministic text and JSON reporters (:mod:`repro.analysis.reporters`)
  whose output is byte-identical across PYTHONHASHSEED values;
* five repo-specific rules (:mod:`repro.analysis.rules`): hashseed-hazard,
  wallclock-rng, float-reduction, lock-discipline, reference-parity.

Run it as ``repro lint`` (or ``python scripts/lint.py``); CI fails on any
non-baselined finding.
"""

from repro.analysis.baseline import Baseline, apply_baseline
from repro.analysis.framework import (
    AnalysisConfig,
    AnalysisReport,
    Finding,
    ModuleContext,
    ProjectContext,
    Rule,
    RuleConfig,
    Severity,
    run_analysis,
)
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import ALL_RULES, rule_registry

__all__ = [
    "ALL_RULES",
    "AnalysisConfig",
    "AnalysisReport",
    "Baseline",
    "Finding",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "RuleConfig",
    "Severity",
    "apply_baseline",
    "render_json",
    "render_text",
    "rule_registry",
    "run_analysis",
]
