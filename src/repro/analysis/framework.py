"""Core of the lint pass: findings, pragmas, rule registry, and the runner.

The framework is deliberately dependency-free (stdlib ``ast`` only) and is
itself held to the determinism rules it enforces: findings are totally
ordered, every internal set is sorted before it reaches output, and reports
are byte-identical across PYTHONHASHSEED values.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, Sequence

Severity = str  # "error" | "warning"

SEVERITY_ERROR: Severity = "error"
SEVERITY_WARNING: Severity = "warning"

#: Rule name used for malformed / unused pragma diagnostics emitted by the
#: framework itself (not a registered rule; it cannot be pragma-suppressed).
PRAGMA_RULE = "pragma"


@dataclass(frozen=True, order=True)
class Finding:
    """One lint finding, totally ordered for deterministic reports."""

    path: str  # posix-style path relative to the analysis root
    line: int
    col: int
    rule: str
    message: str
    severity: Severity = SEVERITY_ERROR

    def fingerprint(self) -> str:
        """Baseline identity: line-free so findings survive unrelated edits."""
        return f"{self.rule}::{self.path}::{self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }


# --------------------------------------------------------------------------- #
# Pragmas
# --------------------------------------------------------------------------- #

#: Syntax (hash sign, then): ``repro: allow(rule-a, rule-b) -- why it is safe``
_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\(\s*(?P<rules>[a-z0-9_,\s-]+?)\s*\)\s*"
    r"(?:--\s*(?P<why>.*\S))?\s*$"
)
#: Anything that looks like a pragma attempt, for malformed-pragma reporting.
_PRAGMA_ATTEMPT_RE = re.compile(r"#\s*repro\s*:")


@dataclass
class Pragma:
    """One inline ``# repro: allow(...)`` comment."""

    line: int
    rules: tuple[str, ...]
    justification: str
    standalone: bool  # comment-only line: also covers the next source line
    used: bool = False

    def covers(self, rule: str, line: int) -> bool:
        if rule not in self.rules:
            return False
        if line == self.line:
            return True
        return self.standalone and line == self.line + 1


def _iter_comments(source: str) -> Iterator[tuple[int, int, str]]:
    """Yield ``(line, col, text)`` for every real comment token.

    Tokenizing (rather than scanning raw lines) keeps pragma-looking text
    inside strings and docstrings — e.g. this framework's own documentation
    — from being parsed as pragmas.  Files the tokenizer rejects fall back
    to empty: ``ast.parse`` will have raised on them earlier anyway.
    """
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string
    except (tokenize.TokenError, IndentationError):
        return


def parse_pragmas(source: str, path: str) -> tuple[list[Pragma], list[Finding]]:
    """Extract pragmas from ``source``; malformed ones become findings."""
    pragmas: list[Pragma] = []
    problems: list[Finding] = []
    stripped_lines = [line.strip() for line in source.splitlines()]
    for lineno, col, text in _iter_comments(source):
        if not _PRAGMA_ATTEMPT_RE.search(text):
            continue
        match = _PRAGMA_RE.search(text)
        if match is None:
            problems.append(
                Finding(
                    path=path,
                    line=lineno,
                    col=col,
                    rule=PRAGMA_RULE,
                    message=(
                        "malformed pragma; expected "
                        "'# repro: allow(<rule>) -- <justification>'"
                    ),
                )
            )
            continue
        rules = tuple(
            sorted({part.strip() for part in match.group("rules").split(",") if part.strip()})
        )
        justification = (match.group("why") or "").strip()
        if not rules or not justification:
            problems.append(
                Finding(
                    path=path,
                    line=lineno,
                    col=col,
                    rule=PRAGMA_RULE,
                    message=(
                        "pragma requires a non-empty rule list and a "
                        "'-- <justification>' clause"
                    ),
                )
            )
            continue
        pragmas.append(
            Pragma(
                line=lineno,
                rules=rules,
                justification=justification,
                standalone=stripped_lines[lineno - 1].startswith("#"),
            )
        )
    return pragmas, problems


# --------------------------------------------------------------------------- #
# Import resolution
# --------------------------------------------------------------------------- #


class ImportMap:
    """Maps local names to the dotted module/attribute they were bound from.

    Lets rules resolve ``np.random.default_rng`` and
    ``from time import time; time()`` to the same canonical dotted name.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._names[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self._names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted canonical name for a Name/Attribute chain, or None."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self._names.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


# --------------------------------------------------------------------------- #
# Contexts
# --------------------------------------------------------------------------- #


def module_name_for(path: Path, root: Path) -> str:
    """Dotted module name for ``path``; anchored at the ``repro`` package."""
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = Path(path.name)
    parts = list(rel.with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else path.stem


@dataclass
class ModuleContext:
    """Everything a rule needs about one source file."""

    path: str  # posix path relative to the analysis root
    module: str
    source: str
    tree: ast.Module
    pragmas: list[Pragma]
    imports: ImportMap

    @classmethod
    def from_file(cls, file_path: Path, root: Path) -> "ModuleContext":
        source = file_path.read_text(encoding="utf-8")
        rel: str
        try:
            rel = file_path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = file_path.as_posix()
        tree = ast.parse(source, filename=rel)
        pragmas, _ = parse_pragmas(source, rel)
        return cls(
            path=rel,
            module=module_name_for(file_path, root),
            source=source,
            tree=tree,
            pragmas=pragmas,
            imports=ImportMap(tree),
        )

    def finding(
        self,
        node: ast.AST,
        rule: str,
        message: str,
        severity: Severity = SEVERITY_ERROR,
    ) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
            severity=severity,
        )


@dataclass
class ProjectContext:
    """All analyzed source modules plus (parsed, unanalyzed) test modules."""

    modules: list[ModuleContext]
    test_modules: list[ModuleContext]


# --------------------------------------------------------------------------- #
# Rules and configuration
# --------------------------------------------------------------------------- #


class Rule:
    """Base class for lint rules.

    Subclasses set ``name``/``description``/``default_scope`` and override
    :meth:`check_module` (per-file findings) and/or :meth:`finalize`
    (whole-project findings, e.g. cross-referencing the tests tree).
    """

    name: str = "abstract"
    description: str = ""
    severity: Severity = SEVERITY_ERROR
    #: Module-name prefixes the rule applies to; ``None`` means everywhere.
    default_scope: tuple[str, ...] | None = None

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        return ()

    def finalize(self, project: ProjectContext) -> Iterable[Finding]:
        return ()


@dataclass(frozen=True)
class RuleConfig:
    """Per-rule knobs; ``scope=None`` applies the rule to every module."""

    enabled: bool = True
    severity: Severity | None = None  # None: keep the rule's default
    scope: tuple[str, ...] | None = None

    def in_scope(self, module: str) -> bool:
        if self.scope is None:
            return True
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.scope
        )


@dataclass(frozen=True)
class AnalysisConfig:
    """Which rules run, at what severity, over which modules."""

    rules: dict[str, RuleConfig] = field(default_factory=dict)

    @classmethod
    def default(cls, all_rules: Sequence[Rule]) -> "AnalysisConfig":
        """Repo defaults: every rule enabled over its own default scope."""
        return cls(rules={rule.name: RuleConfig(scope=rule.default_scope) for rule in all_rules})

    @classmethod
    def unscoped(cls, all_rules: Sequence[Rule]) -> "AnalysisConfig":
        """Every rule applies to every module (used by fixture self-tests)."""
        return cls(rules={rule.name: RuleConfig(scope=None) for rule in all_rules})

    def for_rule(self, rule: Rule) -> RuleConfig:
        return self.rules.get(rule.name, RuleConfig(scope=rule.default_scope))

    def without(self, *names: str) -> "AnalysisConfig":
        rules = dict(self.rules)
        for name in names:
            rules[name] = replace(
                rules.get(name, RuleConfig()), enabled=False
            )
        return AnalysisConfig(rules=rules)


# --------------------------------------------------------------------------- #
# Runner
# --------------------------------------------------------------------------- #


@dataclass
class AnalysisReport:
    """Outcome of one lint run, pre-sorted for deterministic rendering."""

    findings: list[Finding]  # actionable (non-baselined) findings
    baselined: list[Finding]  # matched against the checked-in baseline
    files_checked: int
    rules_run: tuple[str, ...]

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_WARNING]

    @property
    def failed(self) -> bool:
        """CI gate: any non-baselined error-severity finding fails the run."""
        return bool(self.errors)


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` in sorted, deterministic order."""
    seen: set[Path] = set()
    out: list[Path] = []
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            candidates: Iterable[Path] = [path]
        elif path.is_dir():
            candidates = path.rglob("*.py")
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return iter(sorted(out, key=lambda p: p.as_posix()))


def load_project(
    paths: Sequence[Path],
    tests_path: Path | None,
    root: Path,
) -> tuple[ProjectContext, list[Finding]]:
    """Parse every analyzed file (and test files for cross-referencing)."""
    modules: list[ModuleContext] = []
    parse_problems: list[Finding] = []
    for file_path in iter_python_files(paths):
        modules.append(ModuleContext.from_file(file_path, root))
        _, pragma_problems = parse_pragmas(modules[-1].source, modules[-1].path)
        parse_problems.extend(pragma_problems)
    test_modules: list[ModuleContext] = []
    if tests_path is not None and tests_path.exists():
        for file_path in iter_python_files([tests_path]):
            test_modules.append(ModuleContext.from_file(file_path, root))
    return ProjectContext(modules=modules, test_modules=test_modules), parse_problems


def run_analysis(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    config: AnalysisConfig,
    root: Path,
    tests_path: Path | None = None,
) -> AnalysisReport:
    """Run ``rules`` over ``paths``; apply pragmas; return a sorted report.

    Baseline filtering is a separate step (:func:`repro.analysis.baseline
    .apply_baseline`) so callers can both check against and regenerate the
    baseline from the same report.
    """
    project, findings = load_project(paths, tests_path, root)
    active = [rule for rule in rules if config.for_rule(rule).enabled]
    pragma_index = {ctx.path: ctx.pragmas for ctx in project.modules}

    raw: list[Finding] = []
    for rule in sorted(active, key=lambda r: r.name):
        rule_config = config.for_rule(rule)
        scoped = [ctx for ctx in project.modules if rule_config.in_scope(ctx.module)]
        scoped_project = ProjectContext(
            modules=scoped, test_modules=project.test_modules
        )
        for ctx in scoped:
            raw.extend(rule.check_module(ctx))
        raw.extend(rule.finalize(scoped_project))
        if rule_config.severity is not None:
            raw = [
                replace(f, severity=rule_config.severity)
                if f.rule == rule.name and f.severity != rule_config.severity
                else f
                for f in raw
            ]

    # Pragma suppression (framework pragma diagnostics are never suppressible).
    for finding in raw:
        suppressed = False
        for pragma in pragma_index.get(finding.path, ()):
            if pragma.covers(finding.rule, finding.line):
                pragma.used = True
                suppressed = True
        if not suppressed:
            findings.append(finding)

    # Unused pragmas are stale documentation: surface them as warnings.
    for ctx in project.modules:
        for pragma in ctx.pragmas:
            if not pragma.used:
                findings.append(
                    Finding(
                        path=ctx.path,
                        line=pragma.line,
                        col=0,
                        rule=PRAGMA_RULE,
                        message=(
                            "unused pragma for rule(s) "
                            + ", ".join(pragma.rules)
                            + "; no finding was suppressed"
                        ),
                        severity=SEVERITY_WARNING,
                    )
                )

    return AnalysisReport(
        findings=sorted(findings),
        baselined=[],
        files_checked=len(project.modules),
        rules_run=tuple(sorted(rule.name for rule in active)),
    )
