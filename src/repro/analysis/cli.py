"""``repro lint`` — run the determinism/concurrency pass over the tree.

Exit codes: 0 clean (or all findings baselined), 1 non-baselined findings,
2 usage errors.  ``--json`` output is byte-identical across PYTHONHASHSEED
values, which the test suite pins with subprocess runs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    apply_baseline,
)
from repro.analysis.framework import AnalysisConfig, run_analysis
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import ALL_RULES


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach lint options; shared by ``repro lint`` and ``scripts/lint.py``."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files/directories to lint (default: src/repro under --root)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root that paths are reported relative to (default: .)",
    )
    parser.add_argument(
        "--tests",
        default=None,
        help="tests tree for the reference-parity cross-check "
        "(default: <root>/tests when present)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather the current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="RULE",
        help="disable a rule by name (repeatable)",
    )
    parser.add_argument(
        "--unscoped",
        action="store_true",
        help="apply every rule to every module, ignoring the per-rule "
        "module scopes (used for fixture self-tests)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable JSON report instead of text",
    )
    parser.set_defaults(func=run)


def run(args: argparse.Namespace) -> int:
    root = Path(args.root)
    if not root.is_dir():
        print(f"lint: --root is not a directory: {root}", file=sys.stderr)
        return 2

    paths = [Path(p) for p in (args.paths or [])]
    if not paths:
        default_target = root / "src" / "repro"
        if not default_target.is_dir():
            print(
                f"lint: no paths given and {default_target} does not exist",
                file=sys.stderr,
            )
            return 2
        paths = [default_target]

    tests_path: Path | None
    if args.tests is not None:
        tests_path = Path(args.tests)
        if not tests_path.exists():
            print(f"lint: tests tree not found: {tests_path}", file=sys.stderr)
            return 2
    else:
        candidate = root / "tests"
        tests_path = candidate if candidate.is_dir() else None

    config = (
        AnalysisConfig.unscoped(ALL_RULES)
        if args.unscoped
        else AnalysisConfig.default(ALL_RULES)
    )
    known = {rule.name for rule in ALL_RULES}
    for name in args.disable:
        if name not in known:
            print(
                f"lint: unknown rule {name!r}; known: {', '.join(sorted(known))}",
                file=sys.stderr,
            )
            return 2
    if args.disable:
        config = config.without(*args.disable)

    try:
        report = run_analysis(
            paths, ALL_RULES, config, root=root, tests_path=tests_path
        )
    except FileNotFoundError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"lint: cannot parse {exc.filename}:{exc.lineno}: {exc.msg}", file=sys.stderr)
        return 2

    baseline_path = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE_NAME
    )
    if args.write_baseline:
        Baseline.from_findings(report.findings).save(baseline_path)
        print(
            f"wrote {baseline_path} ({len(report.findings)} grandfathered "
            "finding(s))"
        )
        return 0

    baseline = Baseline() if args.no_baseline else Baseline.load(baseline_path)
    report = apply_baseline(report, baseline)

    output = render_json(report) if args.json else render_text(report)
    sys.stdout.write(output if args.json else output + "\n")
    return 1 if report.failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="determinism & concurrency invariant checker",
    )
    configure_parser(parser)
    args = parser.parse_args(argv)
    return run(args)


if __name__ == "__main__":  # pragma: no cover - exercised via scripts/lint.py
    raise SystemExit(main())
