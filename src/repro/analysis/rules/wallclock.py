"""wallclock-rng: clocks and unseeded/raw RNG inside deterministic modules.

The fault injector, chaos harness, and planner/replay paths promise bitwise
replay across threads, processes, and PYTHONHASHSEED values.  That promise
dies the moment a decision reads the wall clock or an RNG stream that is not
derived from the experiment seed:

* ``time.time()`` / ``datetime.now()`` — wall clock in a decision;
* ``random.*`` — the global Mersenne Twister, seeded from the OS;
* ``np.random.default_rng(...)`` (or legacy ``np.random.*`` draws) built
  outside :func:`repro.common.rng.derive_rng` — a raw seed is sometimes
  intentional (explicit int hyperparameters on ML models), but each such
  site must say so with a pragma.

``time.perf_counter`` / ``process_time`` are allowlisted: telemetry and
latency deadlines measure durations, they do not decide replayable outcomes.
:mod:`repro.common.rng` itself is exempt — it is the blessed wrapper.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import Finding, ModuleContext, Rule

#: Exact dotted names that read the wall clock.
_WALLCLOCK_CALLS = (
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.today",
    "datetime.datetime.utcnow",
    "datetime.date.today",
)
#: Modules whose attribute calls are flagged wholesale.
_RNG_MODULE_PREFIXES = ("random.", "numpy.random.")
#: Modules exempt from the rule (the blessed derivation wrapper itself).
_EXEMPT_MODULES = ("repro.common.rng",)


class WallClockRngRule(Rule):
    name = "wallclock-rng"
    description = (
        "wall-clock or non-derived RNG inside a deterministic module; route "
        "randomness through repro.common.rng.derive_rng and keep clocks out "
        "of replayable decisions (perf_counter telemetry is allowlisted)"
    )
    default_scope = (
        "repro.serving",
        "repro.common.chaos",
        "repro.optimizer",
        "repro.ml",
        "repro.core",
        "repro.execution",
        "repro.workload",
        "repro.experiments",
    )

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.module in _EXEMPT_MODULES:
            return ()
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.imports.resolve(node.func)
            if dotted is None:
                continue
            if dotted in _WALLCLOCK_CALLS:
                findings.append(
                    ctx.finding(
                        node,
                        self.name,
                        f"{dotted}() reads the wall clock inside a "
                        "deterministic module; decisions must replay from "
                        "the seed (perf_counter telemetry is allowed)",
                    )
                )
                continue
            for prefix in _RNG_MODULE_PREFIXES:
                if dotted.startswith(prefix):
                    if dotted == "numpy.random.default_rng":
                        message = (
                            "np.random.default_rng outside "
                            "repro.common.rng.derive_rng; derive child "
                            "generators by name (derive_rng/RngFactory) or "
                            "pragma-justify the intentional raw seed"
                        )
                    else:
                        message = (
                            f"{dotted}() draws from a stream not derived "
                            "from the experiment seed; use "
                            "repro.common.rng.derive_rng"
                        )
                    findings.append(ctx.finding(node, self.name, message))
                    break
        return findings
