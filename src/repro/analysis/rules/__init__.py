"""The five repo-specific determinism/concurrency rules.

Each rule is scoped by default to the modules where its invariant is
load-bearing (see the ``default_scope`` on each class); self-tests run them
unscoped over fixtures.
"""

from __future__ import annotations

from repro.analysis.framework import Rule
from repro.analysis.rules.floatred import FloatReductionRule
from repro.analysis.rules.hashseed import HashSeedHazardRule
from repro.analysis.rules.locks import LockDisciplineRule
from repro.analysis.rules.refparity import ReferenceParityRule
from repro.analysis.rules.wallclock import WallClockRngRule

#: Registry order is alphabetical by rule name; the runner re-sorts anyway.
ALL_RULES: tuple[Rule, ...] = (
    FloatReductionRule(),
    HashSeedHazardRule(),
    LockDisciplineRule(),
    ReferenceParityRule(),
    WallClockRngRule(),
)


def rule_registry() -> dict[str, Rule]:
    return {rule.name: rule for rule in ALL_RULES}


__all__ = [
    "ALL_RULES",
    "FloatReductionRule",
    "HashSeedHazardRule",
    "LockDisciplineRule",
    "ReferenceParityRule",
    "WallClockRngRule",
    "rule_registry",
]
