"""lock-discipline: model compute under a lock, shared state outside one.

PR 6's concurrency rule for the serving tier has two halves:

* **no compute under a lock** — the per-shard services serialize only
  counter bumps; holding a lock across a model-compute entry point
  (``predict*``, ``price*``, ``plan_cost``) turns the fan-out back into a
  sequential bottleneck and invites lock-ordering deadlocks between shards;
* **no unlocked mutation of guarded state** — an attribute that is mutated
  under a lock somewhere in a class is shared by definition, so a second,
  unlocked mutation site in the same class (outside ``__init__``) is a lost
  update waiting for a concurrency test to get lucky.

The rule is heuristic by design: a "lock" is any context-manager expression
whose terminal name contains ``lock`` (``self._stats_lock``,
``_REPAIR_LOCK``, ...), which matches every lock in this repo.  Intentional
single-threaded mutation sites carry a pragma with the reasoning.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.framework import Finding, ModuleContext, Rule

_LOCK_NAME_RE = re.compile(r"lock", re.IGNORECASE)
_COMPUTE_PREFIXES = ("predict", "price")
_COMPUTE_EXACT = ("plan_cost",)
#: Methods on containers that mutate in place.
_MUTATING_METHODS = (
    "add",
    "append",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "update",
)
#: Methods where unlocked mutation is expected: construction and teardown.
_EXEMPT_METHODS = ("__init__", "__new__", "__enter__", "__exit__", "close")


def _terminal_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Call):
        return _terminal_name(node.func)
    return None


def _is_lock_expr(node: ast.AST) -> bool:
    name = _terminal_name(node)
    return name is not None and bool(_LOCK_NAME_RE.search(name))


def _is_compute_call(node: ast.Call) -> bool:
    name = _terminal_name(node.func)
    if name is None:
        return False
    return name in _COMPUTE_EXACT or any(
        name.startswith(prefix) for prefix in _COMPUTE_PREFIXES
    )


def _self_attr(node: ast.AST) -> str | None:
    """``self.x`` -> ``x`` (also unwraps ``self.x[...]`` subscripts)."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _Mutation:
    __slots__ = ("attr", "method", "node", "locked")

    def __init__(self, attr: str, method: str, node: ast.AST, locked: bool) -> None:
        self.attr = attr
        self.method = method
        self.node = node
        self.locked = locked


class LockDisciplineRule(Rule):
    name = "lock-discipline"
    description = (
        "model compute (predict*/price*/plan_cost) called while holding a "
        "lock, or lock-guarded shared state mutated outside any lock"
    )
    default_scope = (
        "repro.serving",
        "repro.common.chaos",
    )

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(ctx, node))
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                findings.extend(self._check_with(ctx, node))
        return findings

    # ------------------------------------------------------------------ #
    # (a) compute under a lock
    # ------------------------------------------------------------------ #

    def _check_with(
        self, ctx: ModuleContext, node: ast.With | ast.AsyncWith
    ) -> Iterable[Finding]:
        if not any(_is_lock_expr(item.context_expr) for item in node.items):
            return
        for stmt in node.body:
            for inner in ast.walk(stmt):
                if isinstance(inner, ast.Call) and _is_compute_call(inner):
                    callee = _terminal_name(inner.func)
                    yield ctx.finding(
                        inner,
                        self.name,
                        f"{callee}() called while holding a lock; compute "
                        "outside the lock and only publish results under it "
                        "(PR 6 rule: locks never span model computation)",
                    )

    # ------------------------------------------------------------------ #
    # (b) unlocked mutation of lock-guarded attributes
    # ------------------------------------------------------------------ #

    def _check_class(
        self, ctx: ModuleContext, cls: ast.ClassDef
    ) -> Iterable[Finding]:
        mutations: list[_Mutation] = []
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            self._collect_mutations(method, mutations)

        guarded = sorted(
            {
                m.attr
                for m in mutations
                if m.locked and m.method not in _EXEMPT_METHODS
            }
        )
        for attr in guarded:
            for mutation in mutations:
                if (
                    mutation.attr == attr
                    and not mutation.locked
                    and mutation.method not in _EXEMPT_METHODS
                ):
                    yield ctx.finding(
                        mutation.node,
                        self.name,
                        f"self.{attr} is mutated under a lock elsewhere in "
                        f"{cls.name} but mutated without one here; guard "
                        "this site or justify why it cannot race",
                    )

    def _collect_mutations(
        self,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        out: list[_Mutation],
    ) -> None:
        def walk(node: ast.AST, locked: bool) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                inside = locked or any(
                    _is_lock_expr(item.context_expr) for item in node.items
                )
                for stmt in node.body:
                    walk(stmt, inside)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not method:
                return  # nested defs get their own pass
            attr: str | None
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        out.append(_Mutation(attr, method.name, target, locked))
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                attr = _self_attr(node.target)
                if attr is not None:
                    out.append(_Mutation(attr, method.name, node.target, locked))
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATING_METHODS
                ):
                    attr = _self_attr(func.value)
                    if attr is not None:
                        out.append(_Mutation(attr, method.name, node, locked))
            for child in ast.iter_child_nodes(node):
                walk(child, locked)

        walk(method, locked=False)
