"""float-reduction: batch-variant float reductions in bitwise-parity modules.

PRs 2 and 4 pinned the batched train/predict paths bitwise-identical to
their scalar references by standardizing on two reduction primitives whose
grouping never depends on batch size: ``np.add.reduceat`` segment sums and
per-row multiply-sums (``(a * b).sum(axis=1)``).  BLAS-backed ``np.dot`` /
``@`` and whole-array ``np.sum``/``np.mean`` do not make that promise —
their accumulation order (pairwise blocking, SIMD lanes, thread count)
varies with shape, so a batched path that uses them drifts from the scalar
reference by last-bit ulps and the parity gates start failing "randomly".

Allowed without ceremony:

* ``np.add.reduceat(...)`` — the blessed segment reduction;
* ``.sum(axis=...)`` / ``.mean(axis=...)`` — per-row/column reductions over
  a fixed width reduce each lane independently of batch size;
* ``int(<x>.sum())`` — integer/boolean counting is exact, no float order.

Everything else (``np.sum``/``np.mean``/``np.dot``/``np.matmul``/
``np.einsum``/``np.inner``, the ``@`` operator, axis-less ``.sum()`` /
``.mean()``, ``.dot(...)``) is flagged and must be rewritten onto the
primitives or pragma-justified (e.g. a reduction shared verbatim by both
the scalar and batched paths).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import Finding, ModuleContext, Rule

_NUMPY_REDUCTIONS = (
    "numpy.sum",
    "numpy.mean",
    "numpy.dot",
    "numpy.matmul",
    "numpy.einsum",
    "numpy.inner",
)
_METHOD_REDUCTIONS = ("sum", "mean", "dot")


def _has_axis(node: ast.Call) -> bool:
    if node.args:
        return True
    return any(kw.arg == "axis" for kw in node.keywords)


class FloatReductionRule(Rule):
    name = "float-reduction"
    description = (
        "batch-variant float reduction (np.sum/np.mean/np.dot/@) in a module "
        "that pins bitwise parity; use np.add.reduceat or row multiply-sums"
    )
    default_scope = (
        "repro.core.packed",
        "repro.core.combined",
        "repro.ml.proximal",
        "repro.execution.batch",
        "repro.optimizer.skeleton",
        "repro.features",
    )

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        int_wrapped = self._int_wrapped_calls(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
                findings.append(
                    ctx.finding(
                        node,
                        self.name,
                        "matrix-multiply (@) accumulates in a shape-dependent "
                        "order (BLAS); use the row multiply-sum primitive in "
                        "parity-pinned code",
                    )
                )
                continue
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.imports.resolve(node.func)
            if dotted in _NUMPY_REDUCTIONS:
                findings.append(
                    ctx.finding(
                        node,
                        self.name,
                        f"{dotted}() is a batch-variant reduction; use "
                        "np.add.reduceat / row multiply-sums (or justify a "
                        "reduction shared verbatim by both parity paths)",
                    )
                )
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _METHOD_REDUCTIONS:
                if func.attr == "dot":
                    findings.append(
                        ctx.finding(
                            node,
                            self.name,
                            ".dot() accumulates in a shape-dependent order "
                            "(BLAS); use the row multiply-sum primitive",
                        )
                    )
                elif not _has_axis(node) and id(node) not in int_wrapped:
                    findings.append(
                        ctx.finding(
                            node,
                            self.name,
                            f"axis-less .{func.attr}() reduces the whole "
                            "array in a size-dependent order; pass an "
                            "explicit axis, wrap counts in int(...), or "
                            "justify",
                        )
                    )
        return findings

    @staticmethod
    def _int_wrapped_calls(tree: ast.Module) -> set[int]:
        """ids of calls appearing directly as ``int(<call>)`` / ``bool(...)``."""
        wrapped: set[int] = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("int", "bool")
                and len(node.args) == 1
                and isinstance(node.args[0], ast.Call)
            ):
                wrapped.add(id(node.args[0]))
        return wrapped
