"""reference-parity: every public ``*_reference`` function must be tested.

The perf PRs (2-7) each kept a scalar reference implementation next to the
batched fast path and pinned the two bitwise-identical.  That architecture
only keeps its guarantee while the references are *exercised*: an untested
reference silently rots until the day a parity investigation needs it, at
which point it no longer matches anything.  This rule cross-references the
tests AST and flags every public ``*_reference`` def with no test usage.

A name counts as exercised if it appears anywhere in the tests tree as an
attribute access or bare name (calls, ``getattr`` strings are not resolved
— a plain mention is enough, which keeps the rule cheap and false-negative
-averse rather than false-positive-prone).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import Finding, ModuleContext, ProjectContext, Rule


def _public_reference_defs(
    ctx: ModuleContext,
) -> Iterable[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name.endswith("_reference") and not node.name.startswith("_"):
                yield node.name, node


def _test_identifiers(test_modules: list[ModuleContext]) -> set[str]:
    used: set[str] = set()
    for ctx in test_modules:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                used.add(node.attr)
            elif isinstance(node, ast.Name):
                used.add(node.id)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                # getattr(obj, "x_reference") / pytest parametrize ids.
                used.add(node.value)
    return used


class ReferenceParityRule(Rule):
    name = "reference-parity"
    description = (
        "public *_reference function with no usage anywhere in the tests "
        "tree; retained scalar baselines must stay exercised"
    )
    default_scope = ("repro",)

    def finalize(self, project: ProjectContext) -> Iterable[Finding]:
        used = _test_identifiers(project.test_modules)
        findings: list[Finding] = []
        for ctx in project.modules:
            for name, node in _public_reference_defs(ctx):
                if name not in used:
                    findings.append(
                        ctx.finding(
                            node,
                            self.name,
                            f"public reference '{name}' is not exercised by "
                            "any test; add a parity test or it will rot "
                            "silently",
                        )
                    )
        return findings
