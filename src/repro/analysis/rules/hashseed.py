"""hashseed-hazard: PYTHONHASHSEED-dependent behavior in ordering decisions.

Two classes of hazard, both of which have already shipped bugs here:

* builtin ``hash()`` — salted per process, so anything derived from it
  (routing positions, tie-breaks, cache keys that leak into output) differs
  across processes.  PR 6 banned it from the routing path in favor of
  :func:`repro.common.hashing.stable_hash`.
* iterating a ``set``/``frozenset`` — iteration order follows the salted
  hash, so materializing a set into a sequence (``for``, comprehensions,
  ``list``/``tuple``/``iter``/``enumerate``/``join``) lets the hash seed
  pick plan shapes.  PR 2's plan flips came from exactly this: a planner
  held two requirement pairs in a set and the iteration order decided cost
  ties.  ``sorted(...)`` over a set is the blessed escape hatch.

The rule tracks simple local and ``self.<attr>`` dataflow: a name assigned
only set-valued expressions is treated as a set wherever it is iterated in
the same scope (that is the PR 2 bug shape).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import Finding, ModuleContext, Rule

#: Builtins that materialize their iterable argument in iteration order.
_ORDER_MATERIALIZERS = ("list", "tuple", "iter", "enumerate", "reversed")


def _is_set_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class _SetNames:
    """Names (locals and ``self.<attr>``) that only ever hold sets."""

    def __init__(self) -> None:
        self._set_assigned: set[str] = set()
        self._other_assigned: set[str] = set()

    @staticmethod
    def _key(node: ast.AST) -> str | None:
        if isinstance(node, ast.Name):
            return node.id
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return f"self.{node.attr}"
        return None

    def record_assignment(self, target: ast.AST, value: ast.AST) -> None:
        key = self._key(target)
        if key is None:
            return
        if _is_set_literal(value):
            self._set_assigned.add(key)
        else:
            self._other_assigned.add(key)

    def is_set(self, node: ast.AST) -> bool:
        key = self._key(node)
        if key is None:
            return False
        return key in self._set_assigned and key not in self._other_assigned


class HashSeedHazardRule(Rule):
    name = "hashseed-hazard"
    description = (
        "builtin hash() or set-iteration feeding ordering decisions; both "
        "vary with PYTHONHASHSEED (use stable_hash / sorted(...))"
    )
    default_scope = (
        "repro.optimizer",
        "repro.plan",
        "repro.serving",
        "repro.execution",
        "repro.features",
    )

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        names = self._collect_set_names(ctx.tree)

        def is_set_expr(node: ast.AST) -> bool:
            return _is_set_literal(node) or names.is_set(node)

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(ctx, node, is_set_expr))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if is_set_expr(node.iter):
                    findings.append(
                        ctx.finding(
                            node.iter,
                            self.name,
                            "iterating a set: order follows the salted hash "
                            "seed; iterate sorted(...) or keep an ordered "
                            "container",
                        )
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)):
                for gen in node.generators:
                    if is_set_expr(gen.iter):
                        findings.append(
                            ctx.finding(
                                gen.iter,
                                self.name,
                                "comprehension over a set: order follows the "
                                "salted hash seed; iterate sorted(...) or "
                                "keep an ordered container",
                            )
                        )
        return findings

    # ------------------------------------------------------------------ #

    def _check_call(
        self, ctx: ModuleContext, node: ast.Call, is_set_expr
    ) -> Iterable[Finding]:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "hash":
                yield ctx.finding(
                    node,
                    self.name,
                    "builtin hash() is salted per process; use "
                    "repro.common.hashing.stable_hash",
                )
                return
            if func.id in _ORDER_MATERIALIZERS and node.args:
                if is_set_expr(node.args[0]):
                    yield ctx.finding(
                        node,
                        self.name,
                        f"{func.id}() materializes a set in hash-seed order; "
                        "wrap it in sorted(...)",
                    )
                return
            if func.id in ("min", "max") and node.args:
                # Value comparison alone is order-free; an explicit key can
                # collide and then the set's iteration order breaks the tie.
                has_key = any(kw.arg == "key" for kw in node.keywords)
                if has_key and any(is_set_expr(arg) for arg in node.args):
                    yield ctx.finding(
                        node,
                        self.name,
                        f"{func.id}(set, key=...) breaks key ties in "
                        "hash-seed order; sort the candidates first",
                    )
                return
        if isinstance(func, ast.Attribute) and func.attr == "join" and node.args:
            if is_set_expr(node.args[0]):
                yield ctx.finding(
                    node,
                    self.name,
                    "str.join over a set concatenates in hash-seed order; "
                    "join sorted(...) instead",
                )

    def _collect_set_names(self, tree: ast.Module) -> _SetNames:
        names = _SetNames()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    names.record_assignment(target, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                names.record_assignment(node.target, node.value)
            elif isinstance(node, ast.AugAssign):
                # ``x |= {...}`` keeps a set a set; anything else demotes it.
                if not isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
                    names.record_assignment(node.target, node.op)
        return names
