"""Checked-in baseline of grandfathered findings.

The baseline lets the lint gate land with real, acknowledged debt without
blocking CI: findings recorded in the baseline file are reported separately
and do not fail the run; any *new* finding does.  Fingerprints are line-free
(``rule::path::message``) so unrelated edits above a grandfathered site do
not invalidate it, with a count per fingerprint so a second occurrence of
the same hazard in the same file is still caught.

Workflow:

* ``repro lint`` — fails on any finding not covered by the baseline;
* fix or pragma-justify the finding (preferred), or
* ``repro lint --write-baseline`` — regenerate the file after a deliberate
  decision to grandfather it (reviewed like any other diff).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.framework import AnalysisReport, Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "LINT_BASELINE.json"


@dataclass
class Baseline:
    """Multiset of grandfathered finding fingerprints."""

    counts: Counter = field(default_factory=Counter)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(counts=Counter(f.fingerprint() for f in findings))

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version in {path}: {payload.get('version')!r}"
            )
        counts: Counter = Counter()
        for entry in payload.get("findings", []):
            fingerprint = (
                f"{entry['rule']}::{entry['path']}::{entry['message']}"
            )
            counts[fingerprint] += int(entry.get("count", 1))
        return cls(counts=counts)

    def save(self, path: Path) -> None:
        entries = []
        for fingerprint in sorted(self.counts):
            rule, file_path, message = fingerprint.split("::", 2)
            entries.append(
                {
                    "rule": rule,
                    "path": file_path,
                    "message": message,
                    "count": self.counts[fingerprint],
                }
            )
        payload = {"version": BASELINE_VERSION, "findings": entries}
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def is_empty(self) -> bool:
        return not self.counts


def apply_baseline(report: AnalysisReport, baseline: Baseline) -> AnalysisReport:
    """Split the report's findings into actionable vs baselined.

    Findings are consumed against the baseline in sorted (path, line) order,
    so when a file holds more occurrences than the baseline records, the
    *later* ones surface as new.
    """
    remaining = Counter(baseline.counts)
    actionable: list[Finding] = []
    matched: list[Finding] = []
    for finding in report.findings:
        fingerprint = finding.fingerprint()
        if remaining[fingerprint] > 0:
            remaining[fingerprint] -= 1
            matched.append(finding)
        else:
            actionable.append(finding)
    return AnalysisReport(
        findings=actionable,
        baselined=matched,
        files_checked=report.files_checked,
        rules_run=report.rules_run,
    )
