"""Serving layer: the public façade for trained Cleo cost models.

:class:`~repro.serving.service.CleoService` is *the* entry point for
training, loading, versioning, and querying cost models — batched and
cached, the way the paper's production deployment consults them
(Section 5.1).  Everything else in the package is supporting machinery.
"""

from repro.serving.cache import CacheStats, LRUCache
from repro.serving.faults import (
    SCENARIOS,
    FaultInjector,
    FaultKind,
    FaultPolicy,
    InjectedFaultError,
    InjectedTimeoutError,
)
from repro.serving.service import (
    CleoService,
    PredictionRequest,
    ServiceStats,
    as_cost_model,
)

__all__ = [
    "CacheStats",
    "CleoService",
    "FaultInjector",
    "FaultKind",
    "FaultPolicy",
    "InjectedFaultError",
    "InjectedTimeoutError",
    "LRUCache",
    "PredictionRequest",
    "SCENARIOS",
    "ServiceStats",
    "as_cost_model",
]
