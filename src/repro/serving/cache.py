"""Bounded LRU caches for the serving layer.

The paper's production deployment loads every model upfront and then answers
millions of prediction calls per optimization pass (Section 5.1), so lookup
and prediction cost dominate serving.  Recurring workloads re-price the same
(signature, features) pairs constantly; a bounded LRU in front of the models
turns those repeats into O(1) hits while keeping memory flat — unlike the
previous per-``id()`` dict that grew without bound across plans.

Caches are **thread-safe**: the sharded serving tier fans batches out across
a worker pool, and concurrent ``get``/``put`` calls on one cache would
otherwise race both the ``OrderedDict`` recency updates and the hit/miss
counters that the router aggregates.  A single uncontended lock costs tens
of nanoseconds per operation — noise next to a model call.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Iterable


@dataclass(frozen=True)
class CacheStats:
    """Counters of one cache since construction (or the last reset)."""

    capacity: int
    size: int
    hits: int
    misses: int
    evictions: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from the cache (0.0 when idle)."""
        if not self.requests:
            return 0.0
        return self.hits / self.requests

    @classmethod
    def aggregate(cls, parts: "Iterable[CacheStats]") -> "CacheStats":
        """Sum counters across caches (the sharded tier's merged view)."""
        capacity = size = hits = misses = evictions = 0
        for part in parts:
            capacity += part.capacity
            size += part.size
            hits += part.hits
            misses += part.misses
            evictions += part.evictions
        return cls(
            capacity=capacity, size=size, hits=hits, misses=misses, evictions=evictions
        )


class LRUCache:
    """A bounded least-recently-used map with hit/miss accounting.

    ``capacity <= 0`` disables the cache entirely: every ``get`` misses and
    ``put`` is a no-op, so callers can switch caching off without branching.

    All operations are atomic under an internal lock, so concurrent serving
    threads can share one cache without corrupting the recency order or the
    counters; :meth:`stats` returns a consistent snapshot.
    """

    _MISSING = object()

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Value for ``key`` (refreshing its recency), else ``default``."""
        with self._lock:
            value = self._entries.get(key, self._MISSING)
            if value is self._MISSING:
                self.misses += 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh ``key``, evicting the oldest entry when full."""
        if self.capacity <= 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        """Drop all entries (counters are kept; see :meth:`reset_stats`)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                capacity=self.capacity,
                size=len(self._entries),
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
            )
