"""Bounded LRU caches for the serving layer.

The paper's production deployment loads every model upfront and then answers
millions of prediction calls per optimization pass (Section 5.1), so lookup
and prediction cost dominate serving.  Recurring workloads re-price the same
(signature, features) pairs constantly; a bounded LRU in front of the models
turns those repeats into O(1) hits while keeping memory flat — unlike the
previous per-``id()`` dict that grew without bound across plans.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable


@dataclass(frozen=True)
class CacheStats:
    """Counters of one cache since construction (or the last reset)."""

    capacity: int
    size: int
    hits: int
    misses: int
    evictions: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from the cache (0.0 when idle)."""
        if not self.requests:
            return 0.0
        return self.hits / self.requests


class LRUCache:
    """A bounded least-recently-used map with hit/miss accounting.

    ``capacity <= 0`` disables the cache entirely: every ``get`` misses and
    ``put`` is a no-op, so callers can switch caching off without branching.
    """

    _MISSING = object()

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Value for ``key`` (refreshing its recency), else ``default``."""
        value = self._entries.get(key, self._MISSING)
        if value is self._MISSING:
            self.misses += 1
            return default
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh ``key``, evicting the oldest entry when full."""
        if self.capacity <= 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def clear(self) -> None:
        """Drop all entries (counters are kept; see :meth:`reset_stats`)."""
        self._entries.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> CacheStats:
        return CacheStats(
            capacity=self.capacity,
            size=len(self._entries),
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
        )
