"""``CleoService``: the serving façade over trained cost models.

The paper's production story (Section 5.1) is that trained models are
*served*: loaded upfront into a signature-keyed map and consulted millions
of times per optimization pass, either "from a text file ... or using a web
service".  This module is that serving layer for the reproduction — one
object that owns training, persistence, versioned deployment, and the hot
prediction path, so no consumer ever assembles ``ModelStore`` +
``CombinedModel`` + ``CleoPredictor`` by hand again.

Serving-grade mechanics:

* **Packed inference** — prediction runs on the store's compiled
  :class:`~repro.core.packed.PackedModelBank`: signatures resolve with one
  ``np.searchsorted`` over sorted arrays and all rows of a model kind are
  priced in one gather + row multiply-sum pass (the combined model's trees
  traverse as one flat ensemble).  :meth:`CleoService.predict_table` is the
  table-native entry — no per-request objects, no cache-key hashing — and
  :meth:`CleoService.predict_batch` groups request objects by covering
  ``(model kind, signature)`` over the same runtime.  Both paths are
  *bitwise identical* to one-at-a-time prediction: every underlying
  regressor computes per-row, batch-size-invariant reductions.
* **Prediction cache** — a bounded, signature-keyed LRU in front of the
  models turns the recurring-job workload's repeated (features, signatures)
  pairs into O(1) hits; hit/miss counters surface via :meth:`stats`.
* **Bundle cache** — signature bundles of live plan operators are memoized
  in a bounded LRU owned by the service (replacing the unbounded per-``id``
  dict the optimizer-facing cost model used to leak across plans).
* **Lifecycle** — :meth:`train` / :meth:`load` / :meth:`save` /
  :meth:`deploy` wrap the trainer, the JSON model-file format, and the
  versioned :class:`~repro.core.lifecycle.ModelRegistry`.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.cardinality.estimator import CardinalityEstimator
from repro.common.errors import FeatureValidationError
from repro.core.combined import build_meta_matrix, build_meta_matrix_reference
from repro.core.config import SPECIFICITY_ORDER, CleoConfig, ModelKind
from repro.core.packed import predict_most_specific, resource_profiles_most_specific
from repro.core.learned_model import _MAX_PREDICT_SECONDS, ResourceProfile
from repro.core.lifecycle import ModelRegistry, ModelVersion
from repro.core.model_store import ModelStore, signature_for
from repro.core.predictor import CleoPredictor
from repro.core.regression_control import ModelQuarantine
from repro.core.trainer import CleoTrainer
from repro.cost.interface import CostExplanation, CostModel
from repro.execution.runtime_log import OperatorRecord, RunLog
from repro.features.extract import feature_input_for
from repro.features.featurizer import COLUMN_NAMES, FeatureInput
from repro.features.table import FeatureTable
from repro.plan.physical import PhysicalOp
from repro.plan.signatures import SignatureBundle
from repro.serving.cache import CacheStats, LRUCache

#: Default prediction-cache capacity: comfortably holds a few optimization
#: passes of a production-shaped recurring workload.
DEFAULT_PREDICTION_CACHE = 65_536

#: Default bundle-cache capacity: a few hundred plans' worth of operators.
DEFAULT_BUNDLE_CACHE = 8_192

#: The answer of last resort when even the repair path produced garbage.
_BOUNDED_DEFAULT_COST = 1.0

#: Serializes quarantine-and-reprice across services sharing a store: a
#: ``ModelStore.remove`` while another thread walks the model dicts (packed
#: bank recompilation) would mutate them mid-iteration.
_REPAIR_LOCK = threading.Lock()


def _value_ok(value: float) -> bool:
    """A serveable prediction: finite and non-negative."""
    return math.isfinite(value) and value >= 0.0


@dataclass(frozen=True)
class PredictionRequest:
    """One operator to price: its compile-time features and signatures."""

    features: FeatureInput
    signatures: SignatureBundle

    @classmethod
    def for_record(cls, record: OperatorRecord) -> "PredictionRequest":
        """Request for a logged operator (its compile-time view)."""
        return cls(features=record.features, signatures=record.signatures)

    @property
    def key(self) -> tuple[FeatureInput, SignatureBundle]:
        """The prediction-cache key (both components are frozen/hashable)."""
        return (self.features, self.signatures)


@dataclass(frozen=True)
class ServiceStats:
    """Serving counters since construction (or the last ``reset_stats``).

    ``individual_model_calls`` counts vectorized individual-model
    invocations — exactly one per covering ``(kind, signature)`` group per
    batch — and ``combined_model_calls`` counts meta-ensemble matrix calls
    (at most one per batch).  Scalar (non-batched) predictions are tracked
    separately and never inflate the vectorized-call counters.
    """

    predictions: int
    batches: int
    batched_predictions: int
    scalar_predictions: int
    cache: CacheStats
    bundle_cache: CacheStats
    individual_model_calls: int
    combined_model_calls: int
    fallback_predictions: int
    #: Batch requests answered by deduplication against an identical request
    #: in the *same* batch (computed once, reused without a cache entry).
    in_batch_reuses: int
    #: Ring-successor retries the sharded router issued (router-level).
    retries: int = 0
    #: Circuit-breaker CLOSED -> OPEN transitions across the fleet.
    breaker_opens: int = 0
    #: Requests answered below the learned tier: the router's heuristic /
    #: bounded-default floor, or the service's quarantine-and-reprice path.
    degraded_predictions: int = 0
    #: Models removed by boundary output validation (the bank recompiles).
    quarantined_models: int = 0
    #: Requests the router hedged to a ring successor under a latency SLO.
    hedged_requests: int = 0

    @property
    def model_calls(self) -> int:
        """All vectorized model invocations (individual + combined)."""
        return self.individual_model_calls + self.combined_model_calls

    @property
    def cache_hits(self) -> int:
        return self.cache.hits

    @property
    def cache_misses(self) -> int:
        return self.cache.misses

    @property
    def hit_rate(self) -> float:
        return self.cache.hit_rate

    @classmethod
    def aggregate(cls, parts: "Iterable[ServiceStats]") -> "ServiceStats":
        """Counter-wise sum across services (the sharded tier's merged view)."""
        parts = list(parts)
        return cls(
            predictions=sum(p.predictions for p in parts),
            batches=sum(p.batches for p in parts),
            batched_predictions=sum(p.batched_predictions for p in parts),
            scalar_predictions=sum(p.scalar_predictions for p in parts),
            cache=CacheStats.aggregate(p.cache for p in parts),
            bundle_cache=CacheStats.aggregate(p.bundle_cache for p in parts),
            individual_model_calls=sum(p.individual_model_calls for p in parts),
            combined_model_calls=sum(p.combined_model_calls for p in parts),
            fallback_predictions=sum(p.fallback_predictions for p in parts),
            in_batch_reuses=sum(p.in_batch_reuses for p in parts),
            retries=sum(p.retries for p in parts),
            breaker_opens=sum(p.breaker_opens for p in parts),
            degraded_predictions=sum(p.degraded_predictions for p in parts),
            quarantined_models=sum(p.quarantined_models for p in parts),
            hedged_requests=sum(p.hedged_requests for p in parts),
        )

    def describe(self) -> str:
        text = (
            f"{self.predictions} predictions "
            f"({self.batches} batches, {self.scalar_predictions} scalar), "
            f"cache {self.cache.hits}/{self.cache.requests} hits "
            f"({100.0 * self.cache.hit_rate:.1f}%) "
            f"+ {self.in_batch_reuses} in-batch reuses, "
            f"{self.individual_model_calls} individual + "
            f"{self.combined_model_calls} combined vectorized model calls, "
            f"{self.fallback_predictions} global fallbacks"
        )
        if self.retries or self.breaker_opens or self.degraded_predictions:
            text += (
                f"; reliability: {self.retries} retries, "
                f"{self.breaker_opens} breaker opens, "
                f"{self.degraded_predictions} degraded"
            )
        if self.hedged_requests:
            text += f", {self.hedged_requests} hedged"
        if self.quarantined_models:
            text += f", {self.quarantined_models} models quarantined"
        return text


class CleoService:
    """The public serving API for training, loading, and querying models.

    Args:
        predictor: the trained models to serve.
        config: training/config knobs kept for save/load round-trips.
        prediction_cache_size: LRU capacity of the (features, signatures)
            prediction cache; ``0`` disables caching (every request is
            computed, preserving exact model-lookup accounting).
        bundle_cache_size: LRU capacity of the per-operator signature-bundle
            cache used by the optimizer-facing path.
        registry: versioned deployment registry; a fresh one when omitted.
        validate_inputs: reject requests carrying non-finite feature values
            with :class:`~repro.common.errors.FeatureValidationError`
            instead of pricing garbage.
        validate_outputs: check every prediction leaving the service for
            non-finite / negative values; offenders trigger the
            quarantine-and-reprice repair path.
        quarantine: the :class:`~repro.core.regression_control.
            ModelQuarantine` used by the repair path; a default one when
            omitted.
    """

    def __init__(
        self,
        predictor: CleoPredictor,
        config: CleoConfig | None = None,
        prediction_cache_size: int = DEFAULT_PREDICTION_CACHE,
        bundle_cache_size: int = DEFAULT_BUNDLE_CACHE,
        registry: ModelRegistry | None = None,
        validate_inputs: bool = True,
        validate_outputs: bool = True,
        quarantine: ModelQuarantine | None = None,
    ) -> None:
        self.config = config or CleoConfig()
        self._prediction_cache = LRUCache(prediction_cache_size)
        self._bundle_cache = LRUCache(bundle_cache_size)
        self._predictor = predictor
        self.registry = registry or ModelRegistry()
        self._validate_inputs = bool(validate_inputs)
        self._validate_outputs = bool(validate_outputs)
        self._model_quarantine = quarantine or ModelQuarantine()
        # Guards every serving counter (including the predictor's
        # lookup_count, whose `+=` is a read-modify-write): the sharded tier
        # fans batches across threads, and torn increments would corrupt the
        # aggregated ServiceStats.  Never held across model computation.
        self._stats_lock = threading.Lock()
        self._batches = 0
        self._batched_predictions = 0
        self._scalar_predictions = 0
        self._individual_calls = 0
        self._combined_calls = 0
        self._fallbacks = 0
        self._batch_reuses = 0
        self._degraded = 0
        self._quarantined = 0

    @property
    def predictor(self) -> CleoPredictor:
        """The served models; assigning new ones drops stale cached results."""
        return self._predictor

    @predictor.setter
    def predictor(self, predictor: CleoPredictor) -> None:
        self._predictor = predictor
        self.clear_caches()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def train(
        cls,
        log: RunLog,
        config: CleoConfig | None = None,
        individual_days: list[int] | None = None,
        combined_days: list[int] | None = None,
        **service_kwargs,
    ) -> "CleoService":
        """Train Cleo on a run log and return a ready service.

        Day splits default to the trainer's "all but last / last" cadence.
        """
        predictor = CleoTrainer(config).train(
            log, individual_days=individual_days, combined_days=combined_days
        )
        return cls(predictor, config=config, **service_kwargs)

    @classmethod
    def load(
        cls, path: str | Path, config: CleoConfig | None = None, **service_kwargs
    ) -> "CleoService":
        """Load a service from a model file written by :meth:`save`."""
        from repro.core.serialization import load_predictor

        return cls(load_predictor(path, config), config=config, **service_kwargs)

    @classmethod
    def ensure(cls, predictor: "CleoService | CleoPredictor", **kwargs) -> "CleoService":
        """Adopt an existing service, or wrap a bare predictor in one."""
        if isinstance(predictor, cls):
            return predictor
        return cls(predictor, **kwargs)

    def save(self, path: str | Path) -> None:
        """Serialize the served models to a JSON model file."""
        from repro.core.serialization import save_predictor

        save_predictor(self.predictor, path)

    # ------------------------------------------------------------------ #
    # Deployment (versioned registry)
    # ------------------------------------------------------------------ #

    def deploy(self, day: int = 0, window: tuple[int, ...] = ()) -> ModelVersion:
        """Publish the served predictor as a new active registry version."""
        return self.registry.publish(self.predictor, day=day, window=window)

    def rollback(self) -> ModelVersion:
        """Reactivate the previous registry version and serve it."""
        version = self.registry.rollback()
        self.predictor = version.predictor  # setter drops stale caches
        return version

    # ------------------------------------------------------------------ #
    # Scalar prediction (CleoPredictor-compatible surface)
    # ------------------------------------------------------------------ #

    def predict(self, features: FeatureInput, signatures: SignatureBundle) -> float:
        """Predicted exclusive cost (seconds) of one operator instance."""
        key = (features, signatures)
        cached = self._prediction_cache.get(key)
        if cached is not None:
            with self._stats_lock:
                self._scalar_predictions += 1
            return cached
        if self._validate_inputs:
            self._check_features(features)
        value = self.predictor.predict(features, signatures)
        if self._validate_outputs and not _value_ok(value):
            value = float(self._repair_rows([features], [signatures])[0])
        is_fallback = self._is_fallback(signatures)
        self._prediction_cache.put(key, value)
        with self._stats_lock:
            self._scalar_predictions += 1
            if is_fallback:
                self._fallbacks += 1
        return value

    def predict_record(self, record: OperatorRecord) -> float:
        return self.predict(record.features, record.signatures)

    def resource_profile(
        self, features: FeatureInput, signatures: SignatureBundle
    ) -> ResourceProfile | None:
        return self.predictor.resource_profile(features, signatures)

    def resource_profiles(
        self,
        inputs: Sequence[FeatureInput],
        bundles: Sequence[SignatureBundle],
    ) -> list[ResourceProfile | None]:
        """Batched Section-5.3 resource profiles, via the packed bank.

        Bitwise identical to a per-operator :meth:`resource_profile` loop
        (``None`` where no individual model covers the operator), with the
        same lookup accounting: five lookups per covered profile, none for
        uncovered operators.
        """
        profiles, n_covered = resource_profiles_most_specific(
            self.predictor.store, inputs, bundles
        )
        with self._stats_lock:
            self.predictor.lookup_count += (
                n_covered * CleoPredictor.LOOKUPS_PER_PREDICTION
            )
        return profiles

    def covers(self, kind: ModelKind, signatures: SignatureBundle) -> bool:
        return self.predictor.covers(kind, signatures)

    def coverage_fraction(self, kind: ModelKind, records: list[OperatorRecord]) -> float:
        return self.predictor.coverage_fraction(kind, records)

    # ------------------------------------------------------------------ #
    # Batched prediction
    # ------------------------------------------------------------------ #

    def predict_batch(self, requests: Sequence[PredictionRequest]) -> np.ndarray:
        """Price a batch of operators with grouped, vectorized model calls.

        Cache hits are answered immediately; the remaining unique requests
        are grouped by covering model and each group is priced through the
        packed runtime.  Results are bitwise identical to calling
        :meth:`predict` per request.  (For whole-table workloads prefer
        :meth:`predict_table`, which skips the per-request layer entirely.)
        """
        return self._predict_batch(requests, reference=False)

    def predict_records_reference(self, records: Iterable[OperatorRecord]) -> np.ndarray:
        """The retained pre-packed serving pipeline (benchmark baseline).

        Replays what serving a record batch cost before the packed runtime:
        per-record :class:`PredictionRequest` materialization, per-request
        cache-key hashing and in-batch dedup, a fresh feature-table build
        from the unique requests' inputs, per-batch derived-feature
        expansion, one object-graph model call per covering ``(kind,
        signature)`` group, and tree-at-a-time ensemble traversal.  The
        packed :meth:`predict_table`/:meth:`predict_records` must match it
        bit for bit.
        """
        requests = [PredictionRequest.for_record(r) for r in records]
        return self._predict_batch(requests, reference=True)

    def _predict_batch(
        self, requests: Sequence[PredictionRequest], reference: bool
    ) -> np.ndarray:
        out = np.empty(len(requests), dtype=float)

        pending: dict[tuple[FeatureInput, SignatureBundle], list[int]] = {}
        uncached = 0
        reuses = 0
        for i, request in enumerate(requests):
            key = request.key
            indices = pending.get(key)
            if indices is not None:  # duplicate within this batch
                indices.append(i)
                reuses += 1
                uncached += 1
                continue
            cached = self._prediction_cache.get(key)
            if cached is not None:
                out[i] = cached
            else:
                if self._validate_inputs:
                    # Only first-seen uncached keys pay the check: cached
                    # entries already passed it before insertion.
                    self._check_features(request.features)
                pending[key] = [i]
                uncached += 1

        # Lookup accounting (and the fallback counter) charges every request
        # not served from the LRU, so a cache-disabled service matches the
        # scalar path's "five learned predictions per sample" bookkeeping
        # exactly (Section 6.5).  With the cache *enabled* the paths can
        # legitimately differ by `in_batch_reuses`: a sequential replay
        # turns in-batch duplicates into LRU hits (uncharged), while the
        # batch computes them once and reuses the value without a cache
        # round-trip (charged per request).
        with self._stats_lock:
            self._batches += 1
            self._batched_predictions += len(requests)
            self._batch_reuses += reuses
            self.predictor.lookup_count += (
                uncached * CleoPredictor.LOOKUPS_PER_PREDICTION
            )

        if pending:
            keys = list(pending)
            values = self._compute_batch(
                keys, [len(pending[k]) for k in keys], reference
            )
            if self._validate_outputs:
                values = self._validated_values(
                    values, [k[0] for k in keys], [k[1] for k in keys]
                )
            for key, value in zip(keys, values):
                scalar = float(value)
                self._prediction_cache.put(key, scalar)
                for i in pending[key]:
                    out[i] = scalar
        return out

    def predict_records(
        self, records: Iterable[OperatorRecord], table: FeatureTable | None = None
    ) -> np.ndarray:
        """Batched predictions for logged operators, in record order.

        Routed through the table-native packed fast path (see
        :meth:`predict_table`); callers that already materialized the
        records' columns (``log.to_table()``) can pass ``table`` to skip
        re-packing them.
        """
        if table is None:
            table = FeatureTable.from_records(list(records))
        return self.predict_table(table)

    def predict_table(self, table: FeatureTable) -> np.ndarray:
        """Price every row of a signature-bearing table: the packed fast path.

        Skips :class:`PredictionRequest` materialization and per-request
        ``(FeatureInput, SignatureBundle)`` dict hashing entirely — the
        whole batch runs as a constant number of numpy passes over the
        store's compiled :class:`~repro.core.packed.PackedModelBank` (and
        the combined model's flat tree ensemble), bitwise identical to
        :meth:`predict_batch` over the same rows.

        The prediction LRU is bypassed (no keys are hashed, nothing is
        looked up or stored); lookup, model-call, and fallback accounting
        match a **cache-disabled** :meth:`predict_batch` exactly.
        """
        if not table.has_signatures:
            raise FeatureValidationError(
                "predict_table requires a table with signature columns"
            )
        n = len(table)
        if self._validate_inputs and n:
            for name in COLUMN_NAMES:
                if not np.isfinite(getattr(table, name)).all():
                    raise FeatureValidationError(
                        f"non-finite values in feature column {name!r}"
                    )
        predictor = self._predictor
        with self._stats_lock:
            self._batches += 1
            self._batched_predictions += n
            predictor.lookup_count += n * CleoPredictor.LOOKUPS_PER_PREDICTION
        if n == 0:
            return np.empty(0, dtype=float)
        combined = predictor.combined
        if combined is not None and combined.is_fitted:
            calls = 0

            def count_call() -> None:
                nonlocal calls
                calls += 1

            rows = build_meta_matrix(predictor.store, table, on_model_call=count_call)
            with self._stats_lock:
                self._individual_calls += calls
                self._combined_calls += 1
            values = combined.predict_rows(rows)
        else:
            values, n_groups, n_fallbacks = predict_most_specific(
                predictor.store, table, predictor.fallback_cost
            )
            with self._stats_lock:
                self._individual_calls += n_groups
                self._fallbacks += n_fallbacks
        if self._validate_outputs:
            values = self._validated_table(table, values)
        return values

    def predict_inputs(
        self,
        inputs: Sequence[FeatureInput],
        bundles: Sequence[SignatureBundle],
    ) -> np.ndarray:
        """Batched predictions for parallel (features, signatures) sequences.

        The optimizer's frontier/sweep pricing entry.  With the prediction
        LRU enabled it routes through :meth:`predict_batch` (cache hits and
        in-batch dedup still pay off for recurring operators); with caching
        disabled it skips request materialization and per-request key
        hashing entirely and runs the packed table-native path, whose
        lookup and fallback accounting matches a cache-disabled
        :meth:`predict_batch` — and the scalar :meth:`predict` loop —
        exactly.  Values are bitwise identical either way.
        """
        if len(inputs) != len(bundles):
            raise FeatureValidationError("inputs and bundles must align")
        if self.prediction_cache_enabled:
            requests = [
                PredictionRequest(features, bundle)
                for features, bundle in zip(inputs, bundles)
            ]
            return self.predict_batch(requests)
        return self.predict_table(FeatureTable.from_inputs(inputs, bundles))

    def _compute_batch(
        self,
        keys: list[tuple[FeatureInput, SignatureBundle]],
        request_counts: list[int],
        reference: bool = False,
    ) -> np.ndarray:
        """Grouped, vectorized predictions for unique uncached requests.

        ``request_counts[i]`` is how many batch requests key ``i`` answers,
        so per-request counters (fallbacks) match the scalar path exactly.
        ``reference`` routes the combined model through the retained
        object-graph meta builder and tree-at-a-time ensemble (the
        pre-packed pipeline) instead of the packed runtime.
        """
        n = len(keys)
        features = [key[0] for key in keys]
        bundles = [key[1] for key in keys]
        predictor = self.predictor
        store = predictor.store

        combined = predictor.combined
        if combined is not None and combined.is_fitted:
            rows = self._meta_rows(store, features, bundles, reference)
            with self._stats_lock:
                self._combined_calls += 1
            if reference:
                return combined.predict_rows_reference(rows)
            return combined.predict_rows(rows)

        values = np.full(n, predictor.fallback_cost, dtype=float)
        groups: dict[tuple[ModelKind, int], list[int]] = {}
        fallback_requests = 0
        for i, bundle in enumerate(bundles):
            best = store.most_specific(bundle)
            if best is None:
                fallback_requests += request_counts[i]
                continue
            kind, _ = best
            groups.setdefault((kind, signature_for(kind, bundle)), []).append(i)
        for (kind, signature), indices in groups.items():
            model = store.get(kind, signature)
            assert model is not None
            values[indices] = model.predict_many([features[i] for i in indices])
        with self._stats_lock:
            self._fallbacks += fallback_requests
            self._individual_calls += len(groups)
        return values

    def _meta_rows(
        self,
        store: ModelStore,
        features: list[FeatureInput],
        bundles: list[SignatureBundle],
        reference: bool = False,
    ) -> np.ndarray:
        """Vectorized meta rows for a batch, with model-call accounting.

        Delegates to :func:`~repro.core.combined.build_meta_matrix` — the
        same implementation behind the scalar ``build_meta_row`` and the
        trainer's bulk meta-row construction — so batched, scalar, and
        training-time meta rows can never drift.  The regression net is
        ``tests/serving/test_service.py::TestBatchedPrediction::
        test_batch_bitwise_identical_to_sequential``.
        """

        calls = 0

        def count_call() -> None:
            nonlocal calls
            calls += 1

        table = FeatureTable.from_inputs(features, bundles)
        builder = build_meta_matrix_reference if reference else build_meta_matrix
        rows = builder(store, table, on_model_call=count_call)
        with self._stats_lock:
            self._individual_calls += calls
        return rows

    # ------------------------------------------------------------------ #
    # Boundary validation and repair
    # ------------------------------------------------------------------ #

    @staticmethod
    def _check_features(features: FeatureInput) -> None:
        for name in COLUMN_NAMES:
            if not math.isfinite(getattr(features, name)):
                raise FeatureValidationError(
                    f"non-finite feature {name}={getattr(features, name)!r} "
                    "in serving request"
                )

    def _validated_values(
        self,
        values: np.ndarray,
        features: "list[FeatureInput]",
        bundles: "list[SignatureBundle]",
    ) -> np.ndarray:
        """Repair any non-finite / negative predictions in a batch result."""
        values = np.asarray(values, dtype=float)
        bad = ~(np.isfinite(values) & (values >= 0.0))
        if not bad.any():
            return values
        idx = np.flatnonzero(bad)
        out = values.copy()
        out[idx] = self._repair_rows(
            [features[i] for i in idx], [bundles[i] for i in idx]
        )
        return out

    def _validated_table(self, table: FeatureTable, values: np.ndarray) -> np.ndarray:
        """Table-path output validation: rebuild offending rows and repair."""
        values = np.asarray(values, dtype=float)
        bad = ~(np.isfinite(values) & (values >= 0.0))
        if not bad.any():
            return values
        idx = np.flatnonzero(bad)
        inputs = [
            FeatureInput(
                **{name: float(getattr(table, name)[i]) for name in COLUMN_NAMES}
            )
            for i in idx
        ]
        bundles = [
            SignatureBundle(
                strict=int(table.signatures["strict"][i]),
                approx=int(table.signatures["approx"][i]),
                input=int(table.signatures["input"][i]),
                operator=int(table.signatures["operator"][i]),
            )
            for i in idx
        ]
        out = values.copy()
        out[idx] = self._repair_rows(inputs, bundles)
        return out

    def _repair_rows(
        self,
        inputs: "list[FeatureInput]",
        bundles: "list[SignatureBundle]",
    ) -> np.ndarray:
        """Quarantine the models behind corrupt predictions and re-price.

        Every ``(row, model kind)`` pair is probed — a model can be finite
        on one row and NaN on another, so first-bad-occurrence shortcuts
        would leave corruption in the bank.  Offenders are removed through
        :class:`ModelQuarantine` (``ModelStore.remove`` bumps the version,
        recompiling the packed bank lazily), then the rows are re-priced
        down the remaining chain: combined model, most-specific survivor,
        global fallback, bounded default.
        """
        predictor = self.predictor
        store = predictor.store
        with _REPAIR_LOCK:
            offenders: dict[tuple[ModelKind, int], None] = {}
            for features, bundle in zip(inputs, bundles):
                for kind in SPECIFICITY_ORDER:
                    signature = signature_for(kind, bundle)
                    if (kind, signature) in offenders:
                        continue
                    model = store.get(kind, signature)
                    if model is None:
                        continue
                    # repro: allow(lock-discipline) -- repair is deliberately serialized: probing must see a stable store so two threads cannot double-quarantine; it only runs on corrupt batches, where latency is irrelevant
                    if not _value_ok(model.predict_one(features)):
                        offenders[(kind, signature)] = None
            removed = sum(
                1
                for kind, signature in offenders
                if self._model_quarantine.quarantine(store, kind, signature)
            )
            combined = predictor.combined
            out = np.empty(len(inputs), dtype=float)
            for i, (features, bundle) in enumerate(zip(inputs, bundles)):
                value: float | None = None
                if combined is not None and combined.is_fitted:
                    # repro: allow(lock-discipline) -- re-pricing stays under _REPAIR_LOCK so it prices against the post-quarantine store, not a store another thread is still repairing
                    candidate = float(combined.predict_one(features, bundle))
                    if _value_ok(candidate):
                        value = candidate
                if value is None:
                    best = store.most_specific(bundle)
                    if best is not None:
                        # repro: allow(lock-discipline) -- same repair-path reasoning: the fallback chain must read the store the quarantine pass just produced
                        candidate = float(best[1].predict_one(features))
                        if _value_ok(candidate):
                            value = candidate
                if value is None or not _value_ok(value):
                    value = float(predictor.fallback_cost)
                if not _value_ok(value):
                    value = _BOUNDED_DEFAULT_COST
                out[i] = min(value, _MAX_PREDICT_SECONDS)
        if removed:
            # Drop predictions the quarantined models may have produced.
            self._prediction_cache.clear()
        with self._stats_lock:
            self._quarantined += removed
            self._degraded += len(inputs)
        return out

    # ------------------------------------------------------------------ #
    # Operator / plan entry points (optimizer-facing)
    # ------------------------------------------------------------------ #

    def bundle_for(self, op: PhysicalOp) -> SignatureBundle:
        """The operator's signature bundle, via the bounded bundle cache.

        Entries carry the operator reference, so a recycled ``id`` from a
        freed plan can never alias a live operator's signatures.
        """
        entry = self._bundle_cache.get(id(op))
        if entry is not None and entry[0] is op:
            return entry[1]
        bundle = SignatureBundle.of(op)
        self._bundle_cache.put(id(op), (op, bundle))
        return bundle

    def predict_operator(
        self,
        op: PhysicalOp,
        estimator: CardinalityEstimator,
        partition_override: int | None = None,
    ) -> float:
        """Exclusive cost of a live plan operator (the planner's call)."""
        features = feature_input_for(op, estimator, partition_override)
        return self.predict(features, self.bundle_for(op))

    def predict_plan(self, root: PhysicalOp, estimator: CardinalityEstimator) -> float:
        """Total plan cost, priced through one batched call.

        The left-fold summation matches a sequential ``operator_cost`` loop
        exactly, so batching never changes a plan's total cost.
        """
        requests = [
            PredictionRequest(feature_input_for(op, estimator), self.bundle_for(op))
            for op in root.walk()
        ]
        total = 0.0
        for value in self.predict_batch(requests):
            total = total + float(value)
        return total

    def predict_plan_batch(
        self,
        inputs: Sequence[FeatureInput],
        bundles: Sequence[SignatureBundle],
        lengths: Sequence[int],
    ) -> list[float]:
        """Total costs of several plans, priced in one packed pass.

        ``inputs``/``bundles`` concatenate every plan's operators in walk
        order; ``lengths[i]`` is how many operators plan ``i`` contributed.
        All predictions run as a single :meth:`predict_inputs` call, then
        each plan's total is reduced with the exact left-fold order
        :meth:`predict_plan` uses — so fleet replanning
        (``repro.optimizer.replan``) reports per-plan costs bitwise
        identical to a sequential :meth:`predict_plan` loop, and this is the
        batch what-if building block ROADMAP item 5 asks for.
        """
        if len(inputs) != len(bundles):
            raise FeatureValidationError("inputs and bundles must align")
        if sum(lengths) != len(inputs):
            raise FeatureValidationError("lengths must partition the request sequence")
        values = self.predict_inputs(inputs, bundles)
        totals: list[float] = []
        offset = 0
        for n in lengths:
            total = 0.0
            for value in values[offset : offset + n]:
                total = total + float(value)
            totals.append(total)
            offset += n
        return totals

    def cost_model(self) -> CostModel:
        """An optimizer-facing :class:`CostModel` bound to this service."""
        from repro.core.cost_model import CleoCostModel

        return CleoCostModel(self.predictor, service=self)

    # ------------------------------------------------------------------ #
    # Explanation
    # ------------------------------------------------------------------ #

    def explain(
        self, features: FeatureInput, signatures: SignatureBundle
    ) -> CostExplanation:
        """The prediction plus which model tier produced it and why."""
        cost = self.predict(features, signatures)
        predictor = self.predictor
        best = predictor.store.most_specific(signatures)
        kind = best[0] if best is not None else None
        signature = signature_for(kind, signatures) if kind is not None else None

        if predictor.combined is not None and predictor.combined.is_fitted:
            reason = None
            if kind is None:
                reason = (
                    "no individual model covers this operator; the combined "
                    "model imputed every meta-feature"
                )
            elif kind is not ModelKind.OP_SUBGRAPH:
                reason = (
                    "no model more specific than "
                    f"{kind.value} covers this signature"
                )
            return CostExplanation(
                source="combined",
                model_kind=kind.value if kind is not None else None,
                signature=signature,
                cost=cost,
                fallback_reason=reason,
            )
        if kind is not None:
            reason = (
                None
                if kind is ModelKind.OP_SUBGRAPH
                else f"no model more specific than {kind.value} covers this signature"
            )
            return CostExplanation(
                source=kind.value,
                model_kind=kind.value,
                signature=signature,
                cost=cost,
                fallback_reason=reason,
            )
        return CostExplanation(
            source="fallback",
            model_kind=None,
            signature=None,
            cost=cost,
            fallback_reason="no trained model covers this operator; "
            "serving the trained global mean",
        )

    def explain_operator(
        self, op: PhysicalOp, estimator: CardinalityEstimator
    ) -> CostExplanation:
        features = feature_input_for(op, estimator)
        return self.explain(features, self.bundle_for(op))

    # ------------------------------------------------------------------ #
    # Introspection and stats
    # ------------------------------------------------------------------ #

    def _is_fallback(self, signatures: SignatureBundle) -> bool:
        predictor = self.predictor
        if predictor.combined is not None and predictor.combined.is_fitted:
            return False
        return predictor.store.most_specific(signatures) is None

    @property
    def prediction_cache_enabled(self) -> bool:
        """Whether the (features, signatures) prediction LRU is active."""
        return self._prediction_cache.capacity > 0

    @property
    def lookup_count(self) -> int:
        """Model lookups charged by the served predictor (Section 6.5)."""
        return self.predictor.lookup_count

    @property
    def store(self) -> ModelStore:
        return self.predictor.store

    @property
    def model_count(self) -> int:
        return self.predictor.model_count

    @property
    def memory_bytes(self) -> int:
        return self.predictor.memory_bytes

    def stats(self) -> ServiceStats:
        """An atomic snapshot of the serving counters."""
        with self._stats_lock:
            return ServiceStats(
                predictions=self._batched_predictions + self._scalar_predictions,
                batches=self._batches,
                batched_predictions=self._batched_predictions,
                scalar_predictions=self._scalar_predictions,
                cache=self._prediction_cache.stats(),
                bundle_cache=self._bundle_cache.stats(),
                individual_model_calls=self._individual_calls,
                combined_model_calls=self._combined_calls,
                fallback_predictions=self._fallbacks,
                in_batch_reuses=self._batch_reuses,
                degraded_predictions=self._degraded,
                quarantined_models=self._quarantined,
            )

    def reset_stats(self) -> None:
        """Zero every counter (cache contents are kept)."""
        with self._stats_lock:
            self._batches = 0
            self._batched_predictions = 0
            self._scalar_predictions = 0
            self._individual_calls = 0
            self._combined_calls = 0
            self._fallbacks = 0
            self._batch_reuses = 0
            self._degraded = 0
            self._quarantined = 0
        self._prediction_cache.reset_stats()
        self._bundle_cache.reset_stats()

    def clear_caches(self) -> None:
        """Drop cached predictions and bundles (counters are kept)."""
        self._prediction_cache.clear()
        self._bundle_cache.clear()

    def describe(self) -> str:
        return (
            f"CleoService({self.predictor.model_count} models, "
            f"{self.memory_bytes / 1024:.0f} KiB, "
            f"cache {self._prediction_cache.capacity})"
        )


def as_cost_model(model: "CostModel | CleoService") -> CostModel:
    """Normalize a service or cost model into the :class:`CostModel` surface."""
    if isinstance(model, CleoService):
        return model.cost_model()
    return model
