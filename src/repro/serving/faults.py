"""Deterministic fault injection for the serving fleet.

The paper's production story (Section 6.7) is a cost model that keeps
serving through churn, regressions, and bad retrains.  Exercising that
requires *injecting* the failures a real fleet sees — slow shards, raised
exceptions, timeouts, and models that emit garbage — in a way that is
exactly reproducible, so a chaos run is a regression test rather than a
dice roll.

:class:`FaultPolicy` describes a failure mix (per-call rates for each
fault kind, which shards are affected, how outputs are corrupted) and
:class:`FaultInjector` applies it around per-shard ``CleoService`` calls.
Every decision is a **pure function** of ``(policy seed, shard, cluster,
sub-batch token, attempt)`` through :func:`repro.common.hashing.
stable_unit_float` — no RNG state, no wall clock, no per-process ``hash``
salt — so the same request stream sees the same faults in every process
and on every replay, including the ring-successor retries the router
issues after a primary failure (a retry is a fresh draw at ``attempt+1``).

Named scenarios live in :data:`SCENARIOS`; ``experiments.fault_tolerance``
replays the serving load under each of them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum
from threading import Lock
from typing import Callable, Sequence

import numpy as np

from repro.common.errors import ShardError, ShardTimeoutError, ValidationError
from repro.common.hashing import stable_hash, stable_unit_float

#: Salt prefixes so fault draws can never collide with other stable hashes.
_DECIDE_SALT = "cleo-fault"
_CORRUPT_SALT = "cleo-fault-corrupt"

#: How a corrupted prediction is poisoned.  ``mixed`` cycles through all
#: three deterministically per faulted call.
CORRUPT_MODES: tuple[str, ...] = ("nan", "inf", "negative", "mixed")


class FaultKind(str, Enum):
    """The injectable failure classes."""

    ERROR = "error"  # the shard call raises
    TIMEOUT = "timeout"  # the shard call exceeds its deadline
    CORRUPT = "corrupt"  # the shard answers with NaN/inf/negative values
    LATENCY = "latency"  # the shard answers correctly, but late


class InjectedFaultError(ShardError):
    """A raised-exception fault produced by the injector."""


class InjectedTimeoutError(ShardTimeoutError):
    """A timeout fault produced by the injector."""


@dataclass(frozen=True)
class FaultPolicy:
    """One reproducible chaos scenario.

    Rates are per shard call (one sub-batch, retry, or scalar request) and
    mutually exclusive: a single unit draw is carved into ``error`` /
    ``timeout`` / ``corrupt`` / ``latency`` bands, so the rates must sum to
    at most 1.  ``shards`` limits the blast radius to the listed shard
    indices (``None`` hits the whole fleet); ``seed`` re-keys every draw.
    """

    name: str = "baseline"
    error_rate: float = 0.0
    timeout_rate: float = 0.0
    corrupt_rate: float = 0.0
    latency_rate: float = 0.0
    latency_spike_s: float = 0.002
    corrupt_mode: str = "mixed"
    shards: tuple[int, ...] | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        for field_name in ("error_rate", "timeout_rate", "corrupt_rate", "latency_rate"):
            rate = getattr(self, field_name)
            if not 0.0 <= rate <= 1.0:
                raise ValidationError(f"{field_name} must be in [0, 1], got {rate}")
        if self.total_rate > 1.0 + 1e-12:
            raise ValidationError("fault rates must sum to at most 1")
        if self.latency_spike_s < 0.0:
            raise ValidationError("latency_spike_s must be non-negative")
        if self.corrupt_mode not in CORRUPT_MODES:
            raise ValidationError(
                f"corrupt_mode must be one of {CORRUPT_MODES}, got {self.corrupt_mode!r}"
            )

    @property
    def total_rate(self) -> float:
        return self.error_rate + self.timeout_rate + self.corrupt_rate + self.latency_rate

    @property
    def is_noop(self) -> bool:
        """True when this policy can never inject anything."""
        return self.total_rate == 0.0

    def describe(self) -> str:
        parts = [
            f"{name}={rate:.0%}"
            for name, rate in (
                ("error", self.error_rate),
                ("timeout", self.timeout_rate),
                ("corrupt", self.corrupt_rate),
                ("latency", self.latency_rate),
            )
            if rate > 0.0
        ]
        where = "all shards" if self.shards is None else f"shards {list(self.shards)}"
        return f"FaultPolicy({self.name}: {', '.join(parts) or 'none'} on {where})"


#: The benchmark scenarios ``experiments.fault_tolerance`` replays.  Rates
#: are deliberately aggressive — the point is proving availability stays
#: 1.0 through the degradation ladder, not realism of the mix.
SCENARIOS: dict[str, FaultPolicy] = {
    policy.name: policy
    for policy in (
        FaultPolicy(name="baseline"),
        FaultPolicy(name="latency_spikes", latency_rate=0.15, latency_spike_s=0.002),
        FaultPolicy(name="shard_errors", error_rate=0.10),
        FaultPolicy(name="timeouts", timeout_rate=0.08),
        FaultPolicy(name="corrupt_outputs", corrupt_rate=0.10, corrupt_mode="mixed"),
        FaultPolicy(
            name="mixed_chaos",
            error_rate=0.05,
            timeout_rate=0.04,
            corrupt_rate=0.05,
            latency_rate=0.08,
        ),
    )
}


class FaultInjector:
    """Applies a :class:`FaultPolicy` around per-shard service calls.

    ``token`` identifies the sub-batch (the router passes its size and
    leading template signature) and ``attempt`` the ladder rung, so the
    decision for any call is reproducible regardless of thread
    interleaving — the property that keeps chaos runs bitwise replayable
    under concurrent fan-out.  Injection counts per kind are tracked for
    the chaos harness.
    """

    def __init__(self, policy: FaultPolicy) -> None:
        self.policy = policy
        self._lock = Lock()
        self._injected: dict[FaultKind, int] = {kind: 0 for kind in FaultKind}

    # ------------------------------------------------------------------ #
    # Decisions
    # ------------------------------------------------------------------ #

    def decide(
        self, shard: int, cluster: str, token: Sequence[int], attempt: int
    ) -> FaultKind | None:
        """The fault (if any) for one shard call — a pure function."""
        policy = self.policy
        if policy.is_noop:
            return None
        if policy.shards is not None and shard not in policy.shards:
            return None
        draw = stable_unit_float(
            _DECIDE_SALT, policy.seed, shard, cluster, attempt, *token
        )
        edge = policy.error_rate
        if draw < edge:
            return FaultKind.ERROR
        edge += policy.timeout_rate
        if draw < edge:
            return FaultKind.TIMEOUT
        edge += policy.corrupt_rate
        if draw < edge:
            return FaultKind.CORRUPT
        edge += policy.latency_rate
        if draw < edge:
            return FaultKind.LATENCY
        return None

    def invoke(
        self,
        shard: int,
        cluster: str,
        token: Sequence[int],
        attempt: int,
        call: Callable[[], np.ndarray],
    ) -> np.ndarray:
        """Run one shard call under the policy.

        ``call`` must return the sub-batch's prediction array; corrupt
        faults poison a deterministic row of a *copy* (the underlying
        service caches stay clean — corruption models the transport, not
        the model bank).
        """
        kind = self.decide(shard, cluster, token, attempt)
        if kind is None:
            return call()
        with self._lock:
            self._injected[kind] += 1
        if kind is FaultKind.ERROR:
            raise InjectedFaultError(
                f"injected failure on shard {shard} ({cluster})", shard=shard
            )
        if kind is FaultKind.TIMEOUT:
            raise InjectedTimeoutError(
                f"injected timeout on shard {shard} ({cluster})", shard=shard
            )
        if kind is FaultKind.LATENCY:
            if self.policy.latency_spike_s > 0.0:
                time.sleep(self.policy.latency_spike_s)
            return call()
        return self.corrupt(call(), shard, cluster, token)

    def corrupt(
        self, values: np.ndarray, shard: int, cluster: str, token: Sequence[int]
    ) -> np.ndarray:
        """Poison one deterministic row of the sub-batch's predictions."""
        out = np.array(values, dtype=float, copy=True)
        if out.size == 0:
            return out
        digest = stable_hash(_CORRUPT_SALT, self.policy.seed, shard, cluster, *token)
        row = digest % out.size
        mode = self.policy.corrupt_mode
        if mode == "mixed":
            mode = ("nan", "inf", "negative")[(digest >> 32) % 3]
        out[row] = {"nan": float("nan"), "inf": float("inf"), "negative": -1.0}[mode]
        return out

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> dict[str, int]:
        """Injected-fault counts by kind (plus a total), for reporting."""
        with self._lock:
            counts = {kind.value: count for kind, count in self._injected.items()}
        counts["total"] = sum(counts.values())
        return counts

    def reset_stats(self) -> None:
        with self._lock:
            self._injected = {kind: 0 for kind in FaultKind}

    def describe(self) -> str:
        return f"FaultInjector({self.policy.describe()})"
