"""Deterministic request streams for serving load tests.

Models the paper's serving traffic shape (Section 5.1): recurring jobs
arrive from several clusters at once, each job pricing all of its operators
(one batched predict call), with a fraction of jobs also asking for a full
plan cost through the optimizer path.  The stream is a pure function of the
workload bundles — same jobs, same order, same request objects in every
process — so measured throughput differences come from the serving tier,
never from the load.

A load is replayed for several **epochs**: recurring workloads re-price the
same operators day after day, and steady-state behaviour (cache hit rates,
shard balance) only shows up after the first pass.  One epoch's working set
is summarized per cluster (``unique_keys``) so harnesses can size per-shard
caches relative to it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Protocol, Sequence

import numpy as np

from repro.cardinality.estimator import CardinalityEstimator
from repro.core.predictor import CleoPredictor
from repro.serving.service import CleoService, PredictionRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.plan.physical import PhysicalOp

#: Every ``plan_every``-th job of a cluster also issues a plan-cost request.
DEFAULT_PLAN_EVERY = 8


@dataclass(frozen=True)
class PredictJob:
    """One job's operators, priced with a single batched predict call."""

    cluster: str
    job_id: str
    requests: tuple[PredictionRequest, ...]


@dataclass(frozen=True)
class PlanJob:
    """A full plan-cost request (the optimizer's whole-plan path)."""

    cluster: str
    job_id: str
    root: "PhysicalOp"


class ServingBackend(Protocol):
    """What a load run needs from a serving tier."""

    def predict_batch(
        self, cluster: str, requests: Sequence[PredictionRequest]
    ) -> np.ndarray: ...

    def predict_plan(
        self, cluster: str, root: "PhysicalOp", estimator: CardinalityEstimator
    ) -> float: ...


class ServiceBackend:
    """The single-process baseline: one plain ``CleoService`` per cluster."""

    def __init__(self, services: Mapping[str, CleoService]) -> None:
        self.services = dict(services)

    def predict_batch(
        self, cluster: str, requests: Sequence[PredictionRequest]
    ) -> np.ndarray:
        return self.services[cluster].predict_batch(requests)

    def predict_plan(
        self, cluster: str, root: "PhysicalOp", estimator: CardinalityEstimator
    ) -> float:
        return self.services[cluster].predict_plan(root, estimator)


@dataclass
class ServingLoad:
    """One epoch's deterministic request sequence plus its model banks."""

    clusters: tuple[str, ...]
    requests: tuple["PredictJob | PlanJob", ...]
    predictors: dict[str, CleoPredictor]
    estimator_configs: dict[str, object]
    #: Per-cluster size of one epoch's unique (features, signatures) set.
    unique_keys: dict[str, int]
    #: Scalar predictions issued per epoch via the predict-batch requests.
    n_predictions: int

    def fresh_estimator(self, cluster: str) -> CardinalityEstimator:
        return CardinalityEstimator(self.estimator_configs[cluster])

    def suggested_cache_capacity(self, fraction: float = 0.5) -> int:
        """A per-shard LRU capacity sized against the per-cluster working set.

        ``fraction`` of the *smallest* cluster's unique-request count: below
        every cluster's working set, so a single shard's LRU thrashes on a
        cyclic epoch replay, while a few shards' aggregate capacity (each
        shard node brings its own cache memory) holds the whole set — the
        memory dimension of scale-out that the serving load test measures.
        """
        smallest = min(self.unique_keys.values())
        return max(16, int(round(smallest * fraction)))

    def describe(self) -> str:
        n_plans = sum(1 for r in self.requests if isinstance(r, PlanJob))
        return (
            f"ServingLoad({len(self.requests)} requests/epoch over "
            f"{sorted(self.clusters)}: {self.n_predictions} predictions, "
            f"{n_plans} plan costs)"
        )


def build_load(
    bundles: Mapping[str, object],
    plan_every: int = DEFAULT_PLAN_EVERY,
    max_jobs_per_cluster: int | None = None,
) -> ServingLoad:
    """Build the request stream from per-cluster workload bundles.

    ``bundles`` maps cluster name to an :class:`~repro.experiments.shared.
    ClusterBundle`-shaped object (``predictor()``, ``test_log()``,
    ``runner.plans``, ``runner.estimator_config``).  Jobs interleave
    round-robin across clusters in sorted-name order — the multi-tenant
    arrival mix — and every ``plan_every``-th job of a cluster issues a
    plan-cost request right after its predict batch.
    """
    if not bundles:
        raise ValueError("build_load needs at least one cluster bundle")
    if plan_every < 1:
        raise ValueError("plan_every must be >= 1")
    clusters = tuple(sorted(bundles))
    per_cluster: dict[str, list[list["PredictJob | PlanJob"]]] = {}
    predictors: dict[str, CleoPredictor] = {}
    estimator_configs: dict[str, object] = {}
    unique_keys: dict[str, int] = {}
    n_predictions = 0
    for cluster in clusters:
        bundle = bundles[cluster]
        predictors[cluster] = bundle.predictor()
        estimator_configs[cluster] = bundle.runner.estimator_config
        seen: set = set()
        steps: list[list[PredictJob | PlanJob]] = []
        for j, job in enumerate(bundle.test_log()):
            if max_jobs_per_cluster is not None and j >= max_jobs_per_cluster:
                break
            requests = tuple(
                PredictionRequest.for_record(record) for record in job.operators
            )
            seen.update(request.key for request in requests)
            n_predictions += len(requests)
            step: list[PredictJob | PlanJob] = [
                PredictJob(cluster=cluster, job_id=job.job_id, requests=requests)
            ]
            if j % plan_every == 0:
                step.append(
                    PlanJob(
                        cluster=cluster,
                        job_id=job.job_id,
                        root=bundle.runner.plans[job.job_id],
                    )
                )
            steps.append(step)
        if not steps:
            raise ValueError(f"cluster {cluster!r} contributed no jobs")
        unique_keys[cluster] = len(seen)
        per_cluster[cluster] = steps
    requests: list[PredictJob | PlanJob] = []
    depth = max(len(steps) for steps in per_cluster.values())
    for j in range(depth):
        for cluster in clusters:
            steps = per_cluster[cluster]
            if j < len(steps):
                requests.extend(steps[j])
    return ServingLoad(
        clusters=clusters,
        requests=tuple(requests),
        predictors=predictors,
        estimator_configs=estimator_configs,
        unique_keys=unique_keys,
        n_predictions=n_predictions,
    )


@dataclass
class LoadResult:
    """Timings and first-epoch outputs of one load replay."""

    #: Per-request wall seconds, in issue order, across every epoch.
    latencies: np.ndarray
    #: Wall seconds per epoch.
    epoch_seconds: list[float]
    #: Scalar predictions issued per epoch.
    predictions_per_epoch: int
    #: First-epoch per-request prediction arrays (the parity fingerprint).
    predictions: list[np.ndarray] = field(repr=False, default_factory=list)
    #: First-epoch plan totals (parity fingerprint for the plan path).
    plan_totals: list[float] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return float(sum(self.epoch_seconds))

    @property
    def requests_per_epoch(self) -> int:
        return len(self.latencies) // max(1, len(self.epoch_seconds))

    @property
    def throughput(self) -> float:
        """Scalar predictions per second over the whole replay."""
        epochs = len(self.epoch_seconds)
        return self.predictions_per_epoch * epochs / self.total_seconds

    @property
    def steady_state_throughput(self) -> float:
        """Predictions per second in the final epoch (caches warm)."""
        return self.predictions_per_epoch / self.epoch_seconds[-1]

    def latency_quantile(self, q: float) -> float:
        return float(np.quantile(self.latencies, q))

    @property
    def p50_ms(self) -> float:
        return 1e3 * self.latency_quantile(0.50)

    @property
    def p99_ms(self) -> float:
        return 1e3 * self.latency_quantile(0.99)


def run_load(
    backend: ServingBackend, load: ServingLoad, epochs: int = 4
) -> LoadResult:
    """Replay the load against a serving backend, timing every request.

    Each plan request runs with a fresh cardinality estimator (optimizer
    sessions do not share estimator state), so replies are identical across
    epochs and backends; the first epoch's outputs are kept for bitwise
    parity checks between sharded and single-process serving.
    """
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    latencies: list[float] = []
    epoch_seconds: list[float] = []
    predictions: list[np.ndarray] = []
    plan_totals: list[float] = []
    for epoch in range(epochs):
        epoch_start = time.perf_counter()
        for request in load.requests:
            start = time.perf_counter()
            if isinstance(request, PlanJob):
                total = backend.predict_plan(
                    request.cluster,
                    request.root,
                    load.fresh_estimator(request.cluster),
                )
                if epoch == 0:
                    plan_totals.append(total)
            else:
                values = backend.predict_batch(
                    request.cluster, list(request.requests)
                )
                if epoch == 0:
                    predictions.append(values)
            latencies.append(time.perf_counter() - start)
        epoch_seconds.append(time.perf_counter() - epoch_start)
    return LoadResult(
        latencies=np.asarray(latencies, dtype=float),
        epoch_seconds=epoch_seconds,
        predictions_per_epoch=load.n_predictions,
        predictions=predictions,
        plan_totals=plan_totals,
    )
