"""``ShardedCleoRouter``: the façade over a fleet of per-shard services.

One router serves every cluster's models behind a single surface, the way
the paper's optimizer-facing deployment does (Section 5.1), but scaled out:

* **Sharding** — each shard owns one :class:`~repro.serving.service.
  CleoService` per cluster: its own prediction/bundle LRUs, its own
  counters, its own :class:`~repro.core.predictor.CleoPredictor` view (own
  lookup accounting).  All shards of a cluster *share* the read-only model
  bank — the :class:`~repro.core.model_store.ModelStore`, the combined
  ensemble, and the :class:`~repro.core.packed.PackedModelBank` compiled
  once in the constructor — so shards share nothing mutable and a shard
  adds only cache + counter memory, exactly like a scale-out replica that
  brings its own cache tier to the same published model artifact.
* **Routing** — requests route by a consistent hash of ``(cluster,
  approximate subgraph signature)`` over :class:`~repro.serving.shard.
  routing.HashRing`; every operator of a template lands on the same shard,
  so per-shard LRUs stay disjoint and in-batch deduplication keeps working
  (identical requests always share a shard).
* **Fan-out** — batch entry points split their rows by owning shard, run
  the per-shard sub-batches on a thread pool (``n_workers``), and merge
  results back **in input order**.  Every per-row computation in the packed
  runtime is batch-size invariant, so the merged predictions are bitwise
  identical to one single-process :class:`~repro.serving.service.
  CleoService` pricing the whole batch — the property the serving load
  test asserts as ``predictions_bitwise_identical``.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace as dataclass_replace
from threading import Lock
from typing import Callable, Iterator, Mapping, Sequence, TypeVar

import numpy as np

from repro.cardinality.estimator import CardinalityEstimator
from repro.common.errors import (
    FeatureValidationError,
    ShardError,
    ShardTimeoutError,
)
from repro.core.learned_model import _MAX_PREDICT_SECONDS, ResourceProfile
from repro.core.predictor import CleoPredictor
from repro.cost.default_model import DefaultCostModel
from repro.cost.interface import CostExplanation, CostModel
from repro.features.extract import feature_input_for
from repro.features.featurizer import FeatureInput
from repro.features.table import FeatureTable
from repro.plan.physical import PhysicalOp, PhysOpType
from repro.plan.signatures import SignatureBundle
from repro.core.serialization import health_state_from_dict, health_state_to_dict
from repro.serving.cache import LRUCache
from repro.serving.faults import FaultInjector, FaultKind
from repro.serving.service import (
    DEFAULT_BUNDLE_CACHE,
    DEFAULT_PREDICTION_CACHE,
    CleoService,
    PredictionRequest,
    ServiceStats,
)
from repro.serving.shard.health import (
    DEFAULT_RESILIENCE,
    ResilienceConfig,
    ShardHealth,
    ShardHealthStats,
)
from repro.serving.shard.routing import DEFAULT_REPLICAS, HashRing, route_key

_T = TypeVar("_T")

#: The ladder's last rung when even the heuristic produced garbage.
_BOUNDED_DEFAULT_COST = 1.0


class ShardedCleoRouter:
    """Routes prediction traffic for many clusters across service shards.

    Args:
        predictors: ``cluster name -> CleoPredictor`` (or ``CleoService``,
            whose predictor is adopted) — the model bank of each cluster.
        n_shards: number of service shards.
        n_workers: thread-pool width for shard fan-out; ``1`` runs shards
            inline (still sharded caches, no threads).
        replicas: virtual nodes per shard on the hash ring.
        prediction_cache_size: **per-shard** prediction-LRU capacity (each
            shard node brings its own cache memory; total capacity grows
            with the fleet).  ``0`` disables caching on every shard.
        bundle_cache_size: per-shard (and per-client) bundle-LRU capacity.
        resilience: retry / circuit-breaker / degradation-ladder knobs.
            ``None`` disables the reliability layer entirely (the pre-ladder
            fail-fast router: one shard exception aborts the fan-out).
        fault_injector: deterministic chaos injection around every shard
            call (see :mod:`repro.serving.faults`); ``None`` disables it.

    With ``resilience`` enabled, every prediction walks a degradation
    ladder until something answers: the owning shard's packed learned
    prediction, then up to ``max_retries`` ring-successor shards (skipping
    shards whose circuit breaker is open, within ``deadline_s``), then a
    heuristic :class:`~repro.cost.default_model.DefaultCostModel` floor,
    then a bounded default.  Shard answers are validated (finite,
    non-negative) before being accepted.  With no faults injected the
    ladder's first rung always answers, so outputs and ``ServiceStats``
    stay bitwise/counter-identical to the fail-fast router.
    """

    def __init__(
        self,
        predictors: "Mapping[str, CleoPredictor | CleoService]",
        n_shards: int = 1,
        n_workers: int = 1,
        replicas: int = DEFAULT_REPLICAS,
        prediction_cache_size: int = DEFAULT_PREDICTION_CACHE,
        bundle_cache_size: int = DEFAULT_BUNDLE_CACHE,
        resilience: ResilienceConfig | None = DEFAULT_RESILIENCE,
        fault_injector: FaultInjector | None = None,
    ) -> None:
        if not predictors:
            raise ValueError("a router needs at least one cluster")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.ring = HashRing(n_shards, replicas=replicas)
        self.n_workers = int(n_workers)
        self._bundle_cache_size = int(bundle_cache_size)
        self._base: dict[str, CleoPredictor] = {}
        for cluster, predictor in predictors.items():
            if isinstance(predictor, CleoService):
                predictor = predictor.predictor
            self._base[cluster] = predictor
            # Compile the shared read-only runtime up front: the packed bank
            # and the combined model's flat forest are otherwise compiled
            # lazily on first use, and a lazy compile under concurrent
            # fan-out would race (and duplicate) that work.
            predictor.store.packed_bank()
            combined = predictor.combined
            if combined is not None and combined.is_fitted:
                warm = getattr(combined.regressor, "_flat_forest", None)
                if warm is not None:
                    warm()
        #: shard index -> cluster name -> that shard's service.
        self._shards: list[dict[str, CleoService]] = [
            {
                cluster: CleoService(
                    CleoPredictor(
                        store=base.store,
                        combined=base.combined,
                        fallback_cost=base.fallback_cost,
                    ),
                    prediction_cache_size=prediction_cache_size,
                    bundle_cache_size=bundle_cache_size,
                )
                for cluster, base in self._base.items()
            }
            for _ in range(self.ring.n_shards)
        ]
        self._route_cache: dict[tuple[str, int], int] = {}
        self._route_lock = Lock()
        self._clients: dict[str, ClusterClient] = {}
        self._resilience = resilience
        self._injector = fault_injector
        self._health: list[ShardHealth] | None = (
            [ShardHealth(s, resilience) for s in range(self.ring.n_shards)]
            if resilience is not None
            else None
        )
        self._heuristic = DefaultCostModel()
        self._ladder_lock = Lock()
        self._retries = 0
        self._degraded = 0
        self._hedges = 0
        self._hedge_wins = 0
        self._executor = (
            ThreadPoolExecutor(
                max_workers=self.n_workers, thread_name_prefix="cleo-shard"
            )
            if self.n_workers > 1
            else None
        )

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #

    @property
    def clusters(self) -> tuple[str, ...]:
        return tuple(self._base)

    @property
    def n_shards(self) -> int:
        return self.ring.n_shards

    def service_for(self, cluster: str, shard: int) -> CleoService:
        """One shard's service for a cluster (tests and introspection)."""
        return self._shards[shard][self._check_cluster(cluster)]

    def shard_for(self, cluster: str, template_signature: int) -> int:
        """Owning shard of a ``(cluster, template)`` pair, memoized."""
        self._check_cluster(cluster)
        key = (cluster, int(template_signature))
        shard = self._route_cache.get(key)
        if shard is None:
            shard = self.ring.shard_for_key(route_key(*key))
            with self._route_lock:
                self._route_cache[key] = shard
        return shard

    def _check_cluster(self, cluster: str) -> str:
        if cluster not in self._base:
            raise KeyError(f"router serves {sorted(self._base)}, not {cluster!r}")
        return cluster

    def _default_cluster(self, cluster: str | None) -> str:
        if cluster is not None:
            return self._check_cluster(cluster)
        if len(self._base) == 1:
            return next(iter(self._base))
        raise ValueError(
            f"router serves several clusters {sorted(self._base)}; pass one"
        )

    def _shards_for_column(self, cluster: str, approx: np.ndarray) -> np.ndarray:
        """Owning shard of every row, from the approx-signature column.

        Hashes each *unique* template once (memoized across calls), then
        maps rows back with one ``searchsorted`` — recurring workloads
        route whole tables without re-hashing.
        """
        uniques, inverse = np.unique(approx, return_inverse=True)
        owners = np.array(
            [self.shard_for(cluster, int(u)) for u in uniques], dtype=np.int64
        )
        return owners[inverse]

    # ------------------------------------------------------------------ #
    # Fan-out
    # ------------------------------------------------------------------ #

    def _fan_out(
        self,
        tasks: "Sequence[Callable[[], _T]]",
        shards: "Sequence[int] | None" = None,
    ) -> list[_T]:
        """Run shard tasks, on the pool when it exists and helps.

        A failing task no longer leaves sibling futures running
        unobserved: the remaining futures are cancelled (or awaited if
        already running) before the first failure propagates, wrapped in
        a :class:`~repro.common.errors.ShardError` naming the failing
        shard.  ``shards[i]`` is the shard behind ``tasks[i]``.
        """
        if self._executor is None or len(tasks) <= 1:
            results: list[_T] = []
            for pos, task in enumerate(tasks):
                try:
                    results.append(task())
                except (ShardError, FeatureValidationError):
                    # Shard failures keep their shard id; validation errors
                    # are the caller's bug, not a shard's.
                    raise
                except Exception as exc:
                    raise self._fan_out_error(exc, shards, pos) from exc
            return results
        futures = [self._executor.submit(task) for task in tasks]
        results = []
        first_error: Exception | None = None
        first_pos = -1
        for pos, future in enumerate(futures):
            if first_error is not None:
                # First failure wins; stragglers are cancelled if still
                # queued, otherwise awaited so no future outlives the call.
                future.cancel()
                try:
                    future.result()
                except Exception:
                    pass
                continue
            try:
                results.append(future.result())
            except Exception as exc:
                first_error = exc
                first_pos = pos
        if first_error is not None:
            if isinstance(first_error, (ShardError, FeatureValidationError)):
                raise first_error
            raise self._fan_out_error(first_error, shards, first_pos) from first_error
        return results

    @staticmethod
    def _fan_out_error(
        exc: Exception, shards: "Sequence[int] | None", pos: int
    ) -> ShardError:
        shard = int(shards[pos]) if shards is not None else None
        where = f"shard {shard}" if shard is not None else "a shard task"
        return ShardError(f"{where} failed during fan-out: {exc}", shard=shard)

    # ------------------------------------------------------------------ #
    # Degradation ladder
    # ------------------------------------------------------------------ #

    def _attempt_order(self, shard: int) -> list[int]:
        """The owning shard, then its ring successors, bounded by retries."""
        if self._resilience is None:
            return [shard]
        n = self.ring.n_shards
        budget = min(self._resilience.max_retries, n - 1)
        return [(shard + k) % n for k in range(budget + 1)]

    def _call_shard(
        self,
        shard: int,
        cluster: str,
        token: tuple[int, int],
        attempt: int,
        call: Callable[[], np.ndarray],
    ) -> np.ndarray:
        if self._injector is None:
            return call()
        return self._injector.invoke(shard, cluster, token, attempt, call)

    @staticmethod
    def _values_ok(values: np.ndarray) -> bool:
        return bool(np.isfinite(values).all() and (values >= 0.0).all())

    def _bounded(self, values: np.ndarray) -> np.ndarray:
        out = np.asarray(values, dtype=float)
        out = np.where(np.isfinite(out), out, _BOUNDED_DEFAULT_COST)
        return np.clip(out, 0.0, _MAX_PREDICT_SECONDS)

    def _guarded(
        self,
        cluster: str,
        shard: int,
        compute: Callable[[int], np.ndarray],
        token: tuple[int, int],
        heuristic: Callable[[], np.ndarray],
        n_rows: int,
    ) -> np.ndarray:
        """Walk the degradation ladder for one sub-batch.

        ``compute(s)`` prices the sub-batch on shard ``s``; ``heuristic()``
        produces the :class:`DefaultCostModel` floor for the same rows.
        Rungs: owning shard -> ring-successor retries (breaker- and
        deadline-gated) -> heuristic floor -> bounded default.  Input
        validation errors are the caller's bug, not a shard failure, and
        re-raise immediately.
        """
        resilience = self._resilience
        if resilience is None and self._injector is None:
            return compute(shard)
        if resilience is None:
            # Chaos without the safety net (used to measure the blast
            # radius of the pre-ladder router): faults propagate.
            return self._call_shard(shard, cluster, token, 0, lambda: compute(shard))
        deadline = time.perf_counter() + resilience.deadline_s
        hedge_target = self._hedge_target(cluster, shard, token)
        if hedge_target is not None:
            values = self._hedge(cluster, hedge_target, compute, token)
            if values is not None:
                return values
        for attempt, target in enumerate(self._attempt_order(shard)):
            health = self._health[target] if self._health is not None else None
            if attempt > 0:
                if time.perf_counter() > deadline:
                    break
                if health is not None and not health.allow():
                    continue
                with self._ladder_lock:
                    self._retries += 1
            elif health is not None and not health.allow():
                continue
            try:
                values = self._call_shard(
                    target, cluster, token, attempt, lambda t=target: compute(t)
                )
            except FeatureValidationError:
                raise
            except Exception as exc:
                if health is not None:
                    health.record_failure(
                        timeout=isinstance(exc, ShardTimeoutError)
                    )
                continue
            if resilience.validate_outputs and not self._values_ok(values):
                if health is not None:
                    health.record_failure()
                continue
            if health is not None:
                health.record_success()
            return values
        # Every learned rung failed: heuristic floor, then bounded default.
        values = self._bounded(heuristic())
        with self._ladder_lock:
            self._degraded += n_rows
        return values

    def _hedge_target(
        self, cluster: str, shard: int, token: tuple[int, int]
    ) -> int | None:
        """The ring successor to hedge to, when the owner would blow the SLO.

        Hedging fires only when a latency budget is configured, an injector
        is active (the zero-fault path must stay untouched), the fleet has
        a successor to ask, and the *pure* fault decision says the owning
        shard's attempt-0 call will sleep longer than the budget.  Keying
        the decision off :meth:`FaultInjector.decide` instead of a wall
        clock keeps hedged chaos runs bitwise replayable.
        """
        resilience = self._resilience
        injector = self._injector
        if (
            resilience is None
            or resilience.hedge_threshold_s is None
            or injector is None
            or self.ring.n_shards < 2
        ):
            return None
        if injector.policy.latency_spike_s <= resilience.hedge_threshold_s:
            return None
        if injector.decide(shard, cluster, token, 0) is not FaultKind.LATENCY:
            return None
        return (shard + 1) % self.ring.n_shards

    def _hedge(
        self,
        cluster: str,
        target: int,
        compute: Callable[[int], np.ndarray],
        token: tuple[int, int],
    ) -> np.ndarray | None:
        """Fire the sub-batch at the ring successor ahead of the slow owner.

        The deterministic analogue of first-response-wins hedging: the
        owner's spike duration is known from the pure fault decision, so
        instead of racing two in-flight calls the router asks the successor
        first (at ``attempt=1`` — the same draw a ladder retry would see;
        the shared read-only bank makes the answer bitwise identical to the
        owner's) and takes its response when valid.  Any hedge failure
        returns ``None`` and the normal ladder walks from the owner, which
        still answers — late, but within the deadline budget.
        """
        health = self._health[target] if self._health is not None else None
        if health is not None and not health.allow():
            return None
        with self._ladder_lock:
            self._hedges += 1
        try:
            values = self._call_shard(
                target, cluster, token, 1, lambda: compute(target)
            )
        except FeatureValidationError:
            raise
        except Exception as exc:
            if health is not None:
                health.record_failure(timeout=isinstance(exc, ShardTimeoutError))
            return None
        if self._resilience.validate_outputs and not self._values_ok(values):
            if health is not None:
                health.record_failure()
            return None
        if health is not None:
            health.record_success()
        with self._ladder_lock:
            self._hedge_wins += 1
        return values

    def _token(self, n_rows: int, approx: int) -> tuple[int, int]:
        """A deterministic sub-batch identity for fault decisions."""
        return (int(n_rows), int(approx))

    def _heuristic_inputs(self, inputs: Sequence[FeatureInput]) -> np.ndarray:
        """DefaultCostModel floor for a row sequence (COMPUTE coefficients)."""
        cost = self._heuristic.operator_cost_from_stats
        return np.array(
            [
                cost(
                    PhysOpType.COMPUTE,
                    float(f.input_card),
                    float(f.output_card),
                    float(f.avg_row_bytes),
                    max(1, int(f.partition_count)),
                )
                for f in inputs
            ],
            dtype=float,
        )

    def _heuristic_table(self, table: FeatureTable) -> np.ndarray:
        cost = self._heuristic.operator_cost_from_stats
        return np.array(
            [
                cost(
                    PhysOpType.COMPUTE,
                    float(table.input_card[i]),
                    float(table.output_card[i]),
                    float(table.avg_row_bytes[i]),
                    max(1, int(table.partition_count[i])),
                )
                for i in range(len(table))
            ],
            dtype=float,
        )

    # ------------------------------------------------------------------ #
    # Prediction entry points (cluster-scoped)
    # ------------------------------------------------------------------ #

    def predict(
        self, cluster: str, features: FeatureInput, signatures: SignatureBundle
    ) -> float:
        """One operator instance, served by its owning shard."""
        shard = self.shard_for(cluster, signatures.approx)
        if self._resilience is None and self._injector is None:
            return self._shards[shard][cluster].predict(features, signatures)

        def compute(s: int) -> np.ndarray:
            return np.array(
                [self._shards[s][cluster].predict(features, signatures)],
                dtype=float,
            )

        values = self._guarded(
            cluster,
            shard,
            compute,
            self._token(1, signatures.approx),
            lambda: self._heuristic_inputs([features]),
            1,
        )
        return float(values[0])

    def predict_batch(
        self, cluster: str, requests: Sequence[PredictionRequest]
    ) -> np.ndarray:
        """A request batch, split by owning shard and merged in input order.

        Identical requests share a template, hence a shard, so the
        per-shard in-batch deduplication of
        :meth:`~repro.serving.service.CleoService.predict_batch` sees every
        duplicate pair a single service would.
        """
        self._check_cluster(cluster)
        groups = self._group_requests(cluster, requests)
        out = np.empty(len(requests), dtype=float)

        def price(shard: int, idx: list[int]) -> np.ndarray:
            sub = [requests[i] for i in idx]
            return self._guarded(
                cluster,
                shard,
                lambda s: self._shards[s][cluster].predict_batch(sub),
                self._token(len(sub), sub[0].signatures.approx),
                lambda: self._heuristic_inputs([r.features for r in sub]),
                len(sub),
            )

        tasks = [(lambda s=shard, i=idx: price(s, i)) for shard, idx in groups]
        shards = [shard for shard, _ in groups]
        for (_, idx), values in zip(groups, self._fan_out(tasks, shards)):
            out[np.asarray(idx, dtype=np.int64)] = values
        return out

    def predict_inputs(
        self,
        cluster: str,
        inputs: Sequence[FeatureInput],
        bundles: Sequence[SignatureBundle],
    ) -> np.ndarray:
        """Parallel (features, signatures) sequences, sharded and merged."""
        if len(inputs) != len(bundles):
            raise FeatureValidationError("inputs and bundles must align")
        self._check_cluster(cluster)
        groups = self._group_bundles(cluster, bundles)
        out = np.empty(len(inputs), dtype=float)

        def price(shard: int, idx: list[int]) -> np.ndarray:
            sub_inputs = [inputs[i] for i in idx]
            sub_bundles = [bundles[i] for i in idx]
            return self._guarded(
                cluster,
                shard,
                lambda s: self._shards[s][cluster].predict_inputs(
                    sub_inputs, sub_bundles
                ),
                self._token(len(sub_inputs), sub_bundles[0].approx),
                lambda: self._heuristic_inputs(sub_inputs),
                len(sub_inputs),
            )

        tasks = [(lambda s=shard, i=idx: price(s, i)) for shard, idx in groups]
        shards = [shard for shard, _ in groups]
        for (_, idx), values in zip(groups, self._fan_out(tasks, shards)):
            out[np.asarray(idx, dtype=np.int64)] = values
        return out

    def predict_table(self, cluster: str, table: FeatureTable) -> np.ndarray:
        """A whole signature-bearing table, split by shard with array ops."""
        self._check_cluster(cluster)
        if not table.has_signatures:
            raise FeatureValidationError(
                "predict_table requires a table with signature columns"
            )
        n = len(table)
        if n == 0:
            return self._shards[0][cluster].predict_table(table)
        owners = self._shards_for_column(cluster, table.signature_column("approx"))
        shards = np.unique(owners)
        if len(shards) == 1:
            splits = [(int(shards[0]), np.arange(n, dtype=np.int64))]
        else:
            splits = [(int(s), np.flatnonzero(owners == s)) for s in shards]
        approx = table.signature_column("approx")

        def price(shard: int, idx: np.ndarray) -> np.ndarray:
            sub = table if len(idx) == n else table.take(idx)
            return self._guarded(
                cluster,
                shard,
                lambda s: self._shards[s][cluster].predict_table(sub),
                self._token(len(idx), int(approx[idx[0]])),
                lambda: self._heuristic_table(sub),
                len(idx),
            )

        if len(splits) == 1:
            return price(*splits[0])
        out = np.empty(n, dtype=float)
        tasks = [(lambda s=shard, i=idx: price(s, i)) for shard, idx in splits]
        task_shards = [shard for shard, _ in splits]
        for (_, idx), values in zip(splits, self._fan_out(tasks, task_shards)):
            out[idx] = values
        return out

    def resource_profile(
        self, cluster: str, features: FeatureInput, signatures: SignatureBundle
    ) -> ResourceProfile | None:
        shard = self.shard_for(cluster, signatures.approx)
        return self._shards[shard][cluster].resource_profile(features, signatures)

    def resource_profiles(
        self,
        cluster: str,
        inputs: Sequence[FeatureInput],
        bundles: Sequence[SignatureBundle],
    ) -> list[ResourceProfile | None]:
        """Batched Section-5.3 profiles, sharded and merged in input order."""
        if len(inputs) != len(bundles):
            raise FeatureValidationError("inputs and bundles must align")
        self._check_cluster(cluster)
        groups = self._group_bundles(cluster, bundles)
        out: list[ResourceProfile | None] = [None] * len(inputs)

        def profile(shard: int, idx: list[int]) -> list[ResourceProfile | None]:
            return self._shards[shard][cluster].resource_profiles(
                [inputs[i] for i in idx], [bundles[i] for i in idx]
            )

        tasks = [(lambda s=shard, i=idx: profile(s, i)) for shard, idx in groups]
        shards = [shard for shard, _ in groups]
        for (_, idx), profiles in zip(groups, self._fan_out(tasks, shards)):
            for i, value in zip(idx, profiles):
                out[i] = value
        return out

    def explain(
        self, cluster: str, features: FeatureInput, signatures: SignatureBundle
    ) -> CostExplanation:
        shard = self.shard_for(cluster, signatures.approx)
        return self._shards[shard][cluster].explain(features, signatures)

    def _group_requests(
        self, cluster: str, requests: Sequence[PredictionRequest]
    ) -> list[tuple[int, list[int]]]:
        return self._group_bundles(cluster, [r.signatures for r in requests])

    def _group_bundles(
        self, cluster: str, bundles: Sequence[SignatureBundle]
    ) -> list[tuple[int, list[int]]]:
        """Input indices per owning shard, shards in ascending order."""
        groups: dict[int, list[int]] = {}
        for i, bundle in enumerate(bundles):
            groups.setdefault(self.shard_for(cluster, bundle.approx), []).append(i)
        return sorted(groups.items())

    # ------------------------------------------------------------------ #
    # Optimizer-facing clients
    # ------------------------------------------------------------------ #

    def client(self, cluster: str | None = None) -> "ClusterClient":
        """A CleoService-shaped view of this router bound to one cluster.

        Memoized per cluster so repeated plan pricing reuses one bundle
        cache.
        """
        cluster = self._default_cluster(cluster)
        client = self._clients.get(cluster)
        if client is None:
            client = self._clients[cluster] = ClusterClient(self, cluster)
        return client

    def predict_plan(
        self, cluster: str, root: PhysicalOp, estimator: CardinalityEstimator
    ) -> float:
        """Total plan cost through the cluster's client (the load-test path)."""
        return self.client(cluster).predict_plan(root, estimator)

    def cost_model(self, cluster: str | None = None) -> CostModel:
        """An optimizer-facing cost model that prices through the fleet."""
        return self.client(cluster).cost_model()

    # ------------------------------------------------------------------ #
    # Stats and lifecycle
    # ------------------------------------------------------------------ #

    def _services(self) -> Iterator[CleoService]:
        for shard in self._shards:
            yield from shard.values()

    def stats(self) -> ServiceStats:
        """Aggregated counters across every shard and cluster.

        Router-level reliability counters (ladder retries, breaker opens,
        degraded floor predictions) are merged in.  When all of them are
        zero the aggregate object is exactly what the fail-fast router
        reported — the counter-parity contract of the zero-fault path.
        """
        base = ServiceStats.aggregate(s.stats() for s in self._services())
        with self._ladder_lock:
            retries, degraded, hedges = self._retries, self._degraded, self._hedges
        opens = (
            sum(h.breaker_opens for h in self._health)
            if self._health is not None
            else 0
        )
        if not (retries or degraded or opens or hedges):
            return base
        return dataclass_replace(
            base,
            retries=base.retries + retries,
            breaker_opens=base.breaker_opens + opens,
            degraded_predictions=base.degraded_predictions + degraded,
            hedged_requests=base.hedged_requests + hedges,
        )

    def resilience_stats(self) -> list[ShardHealthStats]:
        """Per-shard health snapshots (empty when resilience is disabled)."""
        if self._health is None:
            return []
        return [health.stats() for health in self._health]

    def fault_stats(self) -> dict[str, int]:
        """Injected-fault counts by kind (empty without an injector)."""
        if self._injector is None:
            return {}
        return self._injector.stats()

    def hedge_stats(self) -> dict[str, int]:
        """Hedged-request activity: fired and won (answered from the
        successor instead of waiting out the owner's spike)."""
        with self._ladder_lock:
            return {"hedges": self._hedges, "hedge_wins": self._hedge_wins}

    # ------------------------------------------------------------------ #
    # Durable health state
    # ------------------------------------------------------------------ #

    def export_health(self) -> dict:
        """Versioned snapshot of every shard's breaker for persistence.

        Pair with :meth:`restore_health` on a freshly constructed router
        (same shard count) after a process restart: breakers resume OPEN /
        mid-cooldown / HALF_OPEN exactly where the dead process left them,
        instead of every restart resetting the fleet to CLOSED and
        re-exposing it to a still-failing shard.
        """
        if self._health is None:
            raise ValueError("resilience is disabled; there is no health state")
        return health_state_to_dict([h.snapshot() for h in self._health])

    def restore_health(self, payload: dict) -> None:
        """Resume breaker state exported by :meth:`export_health`."""
        if self._health is None:
            raise ValueError("resilience is disabled; there is no health state")
        snapshots = health_state_from_dict(payload)
        if len(snapshots) != len(self._health):
            raise ValueError(
                f"health state has {len(snapshots)} shards, router has "
                f"{len(self._health)}"
            )
        for health, snapshot in zip(self._health, snapshots):
            health.restore(snapshot)

    def stats_for(self, cluster: str) -> ServiceStats:
        self._check_cluster(cluster)
        return ServiceStats.aggregate(
            shard[cluster].stats() for shard in self._shards
        )

    def shard_stats(self) -> list[ServiceStats]:
        """Per-shard aggregated counters (load-balance introspection)."""
        return [
            ServiceStats.aggregate(s.stats() for s in shard.values())
            for shard in self._shards
        ]

    @property
    def lookup_count(self) -> int:
        """Model lookups across the fleet plus the base predictors."""
        total = sum(s.predictor.lookup_count for s in self._services())
        return total + sum(p.lookup_count for p in self._base.values())

    def reset_stats(self) -> None:
        for service in self._services():
            service.reset_stats()
            service.predictor.reset_lookup_count()
        with self._ladder_lock:
            self._retries = 0
            self._degraded = 0
            self._hedges = 0
            self._hedge_wins = 0
        if self._health is not None:
            for health in self._health:
                health.reset_stats()
        if self._injector is not None:
            self._injector.reset_stats()

    def clear_caches(self) -> None:
        for service in self._services():
            service.clear_caches()

    def close(self) -> None:
        """Shut the fan-out pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ShardedCleoRouter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def describe(self) -> str:
        extras = []
        if self._resilience is not None:
            extras.append("resilient")
        if self._injector is not None:
            extras.append(self._injector.policy.name)
        suffix = f", {'+'.join(extras)}" if extras else ""
        return (
            f"ShardedCleoRouter({len(self._base)} clusters x "
            f"{self.ring.n_shards} shards, {self.n_workers} workers{suffix})"
        )


class ClusterClient:
    """The :class:`~repro.serving.service.CleoService` surface, one cluster.

    What :class:`~repro.core.cost_model.CleoCostModel` (and the planner
    behind it) needs from a service, re-pointed at the router: scalar and
    batched prediction, bundle memoization, plan pricing with the exact
    left-fold total, resource profiles, and explanations.  Bundles are
    memoized here — routing needs the bundle *before* a shard is known.
    """

    def __init__(self, router: ShardedCleoRouter, cluster: str) -> None:
        self.router = router
        self.cluster = cluster
        self._bundle_cache = LRUCache(router._bundle_cache_size)

    @property
    def predictor(self) -> CleoPredictor:
        """The cluster's base (unsharded) predictor view."""
        return self.router._base[self.cluster]

    @property
    def prediction_cache_enabled(self) -> bool:
        return self.router._shards[0][self.cluster].prediction_cache_enabled

    @property
    def lookup_count(self) -> int:
        return self.router.lookup_count

    def bundle_for(self, op: PhysicalOp) -> SignatureBundle:
        entry = self._bundle_cache.get(id(op))
        if entry is not None and entry[0] is op:
            return entry[1]
        bundle = SignatureBundle.of(op)
        self._bundle_cache.put(id(op), (op, bundle))
        return bundle

    def predict(self, features: FeatureInput, signatures: SignatureBundle) -> float:
        return self.router.predict(self.cluster, features, signatures)

    def predict_batch(self, requests: Sequence[PredictionRequest]) -> np.ndarray:
        return self.router.predict_batch(self.cluster, requests)

    def predict_inputs(
        self,
        inputs: Sequence[FeatureInput],
        bundles: Sequence[SignatureBundle],
    ) -> np.ndarray:
        return self.router.predict_inputs(self.cluster, inputs, bundles)

    def predict_table(self, table: FeatureTable) -> np.ndarray:
        return self.router.predict_table(self.cluster, table)

    def resource_profile(
        self, features: FeatureInput, signatures: SignatureBundle
    ) -> ResourceProfile | None:
        return self.router.resource_profile(self.cluster, features, signatures)

    def resource_profiles(
        self,
        inputs: Sequence[FeatureInput],
        bundles: Sequence[SignatureBundle],
    ) -> list[ResourceProfile | None]:
        return self.router.resource_profiles(self.cluster, inputs, bundles)

    def predict_operator(
        self,
        op: PhysicalOp,
        estimator: CardinalityEstimator,
        partition_override: int | None = None,
    ) -> float:
        features = feature_input_for(op, estimator, partition_override)
        return self.predict(features, self.bundle_for(op))

    def predict_plan(self, root: PhysicalOp, estimator: CardinalityEstimator) -> float:
        """Total plan cost through the sharded batch path.

        Same request construction and left-fold summation as
        :meth:`~repro.serving.service.CleoService.predict_plan`, so plan
        totals are bitwise identical to the single-process service.
        """
        requests = [
            PredictionRequest(feature_input_for(op, estimator), self.bundle_for(op))
            for op in root.walk()
        ]
        total = 0.0
        for value in self.predict_batch(requests):
            total = total + float(value)
        return total

    def predict_plan_batch(
        self,
        inputs: Sequence[FeatureInput],
        bundles: Sequence[SignatureBundle],
        lengths: Sequence[int],
    ) -> list[float]:
        """Several plans' totals through the sharded batch path.

        Same contract and left-fold reduction as
        :meth:`~repro.serving.service.CleoService.predict_plan_batch`, so
        fleet replanning against a sharded tier stays bitwise identical to
        the single-process service.
        """
        if len(inputs) != len(bundles):
            raise ValueError("inputs and bundles must align")
        if sum(lengths) != len(inputs):
            raise ValueError("lengths must partition the request sequence")
        values = self.predict_inputs(inputs, bundles)
        totals: list[float] = []
        offset = 0
        for n in lengths:
            total = 0.0
            for value in values[offset : offset + n]:
                total = total + float(value)
            totals.append(total)
            offset += n
        return totals

    def explain(
        self, features: FeatureInput, signatures: SignatureBundle
    ) -> CostExplanation:
        return self.router.explain(self.cluster, features, signatures)

    def explain_operator(
        self, op: PhysicalOp, estimator: CardinalityEstimator
    ) -> CostExplanation:
        features = feature_input_for(op, estimator)
        return self.explain(features, self.bundle_for(op))

    def cost_model(self) -> CostModel:
        from repro.core.cost_model import CleoCostModel

        return CleoCostModel(self.predictor, service=self)

    def clear_caches(self) -> None:
        self._bundle_cache.clear()
        self.router.clear_caches()

    def describe(self) -> str:
        return f"ClusterClient({self.cluster!r} via {self.router.describe()})"
