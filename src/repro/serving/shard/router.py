"""``ShardedCleoRouter``: the façade over a fleet of per-shard services.

One router serves every cluster's models behind a single surface, the way
the paper's optimizer-facing deployment does (Section 5.1), but scaled out:

* **Sharding** — each shard owns one :class:`~repro.serving.service.
  CleoService` per cluster: its own prediction/bundle LRUs, its own
  counters, its own :class:`~repro.core.predictor.CleoPredictor` view (own
  lookup accounting).  All shards of a cluster *share* the read-only model
  bank — the :class:`~repro.core.model_store.ModelStore`, the combined
  ensemble, and the :class:`~repro.core.packed.PackedModelBank` compiled
  once in the constructor — so shards share nothing mutable and a shard
  adds only cache + counter memory, exactly like a scale-out replica that
  brings its own cache tier to the same published model artifact.
* **Routing** — requests route by a consistent hash of ``(cluster,
  approximate subgraph signature)`` over :class:`~repro.serving.shard.
  routing.HashRing`; every operator of a template lands on the same shard,
  so per-shard LRUs stay disjoint and in-batch deduplication keeps working
  (identical requests always share a shard).
* **Fan-out** — batch entry points split their rows by owning shard, run
  the per-shard sub-batches on a thread pool (``n_workers``), and merge
  results back **in input order**.  Every per-row computation in the packed
  runtime is batch-size invariant, so the merged predictions are bitwise
  identical to one single-process :class:`~repro.serving.service.
  CleoService` pricing the whole batch — the property the serving load
  test asserts as ``predictions_bitwise_identical``.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from threading import Lock
from typing import Callable, Iterator, Mapping, Sequence, TypeVar

import numpy as np

from repro.cardinality.estimator import CardinalityEstimator
from repro.core.learned_model import ResourceProfile
from repro.core.predictor import CleoPredictor
from repro.cost.interface import CostExplanation, CostModel
from repro.features.extract import feature_input_for
from repro.features.featurizer import FeatureInput
from repro.features.table import FeatureTable
from repro.plan.physical import PhysicalOp
from repro.plan.signatures import SignatureBundle
from repro.serving.cache import LRUCache
from repro.serving.service import (
    DEFAULT_BUNDLE_CACHE,
    DEFAULT_PREDICTION_CACHE,
    CleoService,
    PredictionRequest,
    ServiceStats,
)
from repro.serving.shard.routing import DEFAULT_REPLICAS, HashRing, route_key

_T = TypeVar("_T")


class ShardedCleoRouter:
    """Routes prediction traffic for many clusters across service shards.

    Args:
        predictors: ``cluster name -> CleoPredictor`` (or ``CleoService``,
            whose predictor is adopted) — the model bank of each cluster.
        n_shards: number of service shards.
        n_workers: thread-pool width for shard fan-out; ``1`` runs shards
            inline (still sharded caches, no threads).
        replicas: virtual nodes per shard on the hash ring.
        prediction_cache_size: **per-shard** prediction-LRU capacity (each
            shard node brings its own cache memory; total capacity grows
            with the fleet).  ``0`` disables caching on every shard.
        bundle_cache_size: per-shard (and per-client) bundle-LRU capacity.
    """

    def __init__(
        self,
        predictors: "Mapping[str, CleoPredictor | CleoService]",
        n_shards: int = 1,
        n_workers: int = 1,
        replicas: int = DEFAULT_REPLICAS,
        prediction_cache_size: int = DEFAULT_PREDICTION_CACHE,
        bundle_cache_size: int = DEFAULT_BUNDLE_CACHE,
    ) -> None:
        if not predictors:
            raise ValueError("a router needs at least one cluster")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.ring = HashRing(n_shards, replicas=replicas)
        self.n_workers = int(n_workers)
        self._bundle_cache_size = int(bundle_cache_size)
        self._base: dict[str, CleoPredictor] = {}
        for cluster, predictor in predictors.items():
            if isinstance(predictor, CleoService):
                predictor = predictor.predictor
            self._base[cluster] = predictor
            # Compile the shared read-only runtime up front: the packed bank
            # and the combined model's flat forest are otherwise compiled
            # lazily on first use, and a lazy compile under concurrent
            # fan-out would race (and duplicate) that work.
            predictor.store.packed_bank()
            combined = predictor.combined
            if combined is not None and combined.is_fitted:
                warm = getattr(combined.regressor, "_flat_forest", None)
                if warm is not None:
                    warm()
        #: shard index -> cluster name -> that shard's service.
        self._shards: list[dict[str, CleoService]] = [
            {
                cluster: CleoService(
                    CleoPredictor(
                        store=base.store,
                        combined=base.combined,
                        fallback_cost=base.fallback_cost,
                    ),
                    prediction_cache_size=prediction_cache_size,
                    bundle_cache_size=bundle_cache_size,
                )
                for cluster, base in self._base.items()
            }
            for _ in range(self.ring.n_shards)
        ]
        self._route_cache: dict[tuple[str, int], int] = {}
        self._route_lock = Lock()
        self._clients: dict[str, ClusterClient] = {}
        self._executor = (
            ThreadPoolExecutor(
                max_workers=self.n_workers, thread_name_prefix="cleo-shard"
            )
            if self.n_workers > 1
            else None
        )

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #

    @property
    def clusters(self) -> tuple[str, ...]:
        return tuple(self._base)

    @property
    def n_shards(self) -> int:
        return self.ring.n_shards

    def service_for(self, cluster: str, shard: int) -> CleoService:
        """One shard's service for a cluster (tests and introspection)."""
        return self._shards[shard][self._check_cluster(cluster)]

    def shard_for(self, cluster: str, template_signature: int) -> int:
        """Owning shard of a ``(cluster, template)`` pair, memoized."""
        self._check_cluster(cluster)
        key = (cluster, int(template_signature))
        shard = self._route_cache.get(key)
        if shard is None:
            shard = self.ring.shard_for_key(route_key(*key))
            with self._route_lock:
                self._route_cache[key] = shard
        return shard

    def _check_cluster(self, cluster: str) -> str:
        if cluster not in self._base:
            raise KeyError(f"router serves {sorted(self._base)}, not {cluster!r}")
        return cluster

    def _default_cluster(self, cluster: str | None) -> str:
        if cluster is not None:
            return self._check_cluster(cluster)
        if len(self._base) == 1:
            return next(iter(self._base))
        raise ValueError(
            f"router serves several clusters {sorted(self._base)}; pass one"
        )

    def _shards_for_column(self, cluster: str, approx: np.ndarray) -> np.ndarray:
        """Owning shard of every row, from the approx-signature column.

        Hashes each *unique* template once (memoized across calls), then
        maps rows back with one ``searchsorted`` — recurring workloads
        route whole tables without re-hashing.
        """
        uniques, inverse = np.unique(approx, return_inverse=True)
        owners = np.array(
            [self.shard_for(cluster, int(u)) for u in uniques], dtype=np.int64
        )
        return owners[inverse]

    # ------------------------------------------------------------------ #
    # Fan-out
    # ------------------------------------------------------------------ #

    def _fan_out(self, tasks: "Sequence[Callable[[], _T]]") -> list[_T]:
        """Run shard tasks, on the pool when it exists and helps."""
        if self._executor is None or len(tasks) <= 1:
            return [task() for task in tasks]
        return [f.result() for f in [self._executor.submit(t) for t in tasks]]

    # ------------------------------------------------------------------ #
    # Prediction entry points (cluster-scoped)
    # ------------------------------------------------------------------ #

    def predict(
        self, cluster: str, features: FeatureInput, signatures: SignatureBundle
    ) -> float:
        """One operator instance, served by its owning shard."""
        shard = self.shard_for(cluster, signatures.approx)
        return self._shards[shard][cluster].predict(features, signatures)

    def predict_batch(
        self, cluster: str, requests: Sequence[PredictionRequest]
    ) -> np.ndarray:
        """A request batch, split by owning shard and merged in input order.

        Identical requests share a template, hence a shard, so the
        per-shard in-batch deduplication of
        :meth:`~repro.serving.service.CleoService.predict_batch` sees every
        duplicate pair a single service would.
        """
        self._check_cluster(cluster)
        groups = self._group_requests(cluster, requests)
        out = np.empty(len(requests), dtype=float)

        def price(shard: int, idx: list[int]) -> np.ndarray:
            return self._shards[shard][cluster].predict_batch(
                [requests[i] for i in idx]
            )

        tasks = [(lambda s=shard, i=idx: price(s, i)) for shard, idx in groups]
        for (_, idx), values in zip(groups, self._fan_out(tasks)):
            out[np.asarray(idx, dtype=np.int64)] = values
        return out

    def predict_inputs(
        self,
        cluster: str,
        inputs: Sequence[FeatureInput],
        bundles: Sequence[SignatureBundle],
    ) -> np.ndarray:
        """Parallel (features, signatures) sequences, sharded and merged."""
        if len(inputs) != len(bundles):
            raise ValueError("inputs and bundles must align")
        self._check_cluster(cluster)
        groups = self._group_bundles(cluster, bundles)
        out = np.empty(len(inputs), dtype=float)

        def price(shard: int, idx: list[int]) -> np.ndarray:
            return self._shards[shard][cluster].predict_inputs(
                [inputs[i] for i in idx], [bundles[i] for i in idx]
            )

        tasks = [(lambda s=shard, i=idx: price(s, i)) for shard, idx in groups]
        for (_, idx), values in zip(groups, self._fan_out(tasks)):
            out[np.asarray(idx, dtype=np.int64)] = values
        return out

    def predict_table(self, cluster: str, table: FeatureTable) -> np.ndarray:
        """A whole signature-bearing table, split by shard with array ops."""
        self._check_cluster(cluster)
        if not table.has_signatures:
            raise ValueError("predict_table requires a table with signature columns")
        n = len(table)
        if n == 0:
            return self._shards[0][cluster].predict_table(table)
        owners = self._shards_for_column(cluster, table.signature_column("approx"))
        shards = np.unique(owners)
        if len(shards) == 1:
            return self._shards[int(shards[0])][cluster].predict_table(table)
        splits = [(int(s), np.flatnonzero(owners == s)) for s in shards]

        def price(shard: int, idx: np.ndarray) -> np.ndarray:
            return self._shards[shard][cluster].predict_table(table.take(idx))

        out = np.empty(n, dtype=float)
        tasks = [(lambda s=shard, i=idx: price(s, i)) for shard, idx in splits]
        for (_, idx), values in zip(splits, self._fan_out(tasks)):
            out[idx] = values
        return out

    def resource_profile(
        self, cluster: str, features: FeatureInput, signatures: SignatureBundle
    ) -> ResourceProfile | None:
        shard = self.shard_for(cluster, signatures.approx)
        return self._shards[shard][cluster].resource_profile(features, signatures)

    def resource_profiles(
        self,
        cluster: str,
        inputs: Sequence[FeatureInput],
        bundles: Sequence[SignatureBundle],
    ) -> list[ResourceProfile | None]:
        """Batched Section-5.3 profiles, sharded and merged in input order."""
        if len(inputs) != len(bundles):
            raise ValueError("inputs and bundles must align")
        self._check_cluster(cluster)
        groups = self._group_bundles(cluster, bundles)
        out: list[ResourceProfile | None] = [None] * len(inputs)

        def profile(shard: int, idx: list[int]) -> list[ResourceProfile | None]:
            return self._shards[shard][cluster].resource_profiles(
                [inputs[i] for i in idx], [bundles[i] for i in idx]
            )

        tasks = [(lambda s=shard, i=idx: profile(s, i)) for shard, idx in groups]
        for (_, idx), profiles in zip(groups, self._fan_out(tasks)):
            for i, value in zip(idx, profiles):
                out[i] = value
        return out

    def explain(
        self, cluster: str, features: FeatureInput, signatures: SignatureBundle
    ) -> CostExplanation:
        shard = self.shard_for(cluster, signatures.approx)
        return self._shards[shard][cluster].explain(features, signatures)

    def _group_requests(
        self, cluster: str, requests: Sequence[PredictionRequest]
    ) -> list[tuple[int, list[int]]]:
        return self._group_bundles(cluster, [r.signatures for r in requests])

    def _group_bundles(
        self, cluster: str, bundles: Sequence[SignatureBundle]
    ) -> list[tuple[int, list[int]]]:
        """Input indices per owning shard, shards in ascending order."""
        groups: dict[int, list[int]] = {}
        for i, bundle in enumerate(bundles):
            groups.setdefault(self.shard_for(cluster, bundle.approx), []).append(i)
        return sorted(groups.items())

    # ------------------------------------------------------------------ #
    # Optimizer-facing clients
    # ------------------------------------------------------------------ #

    def client(self, cluster: str | None = None) -> "ClusterClient":
        """A CleoService-shaped view of this router bound to one cluster.

        Memoized per cluster so repeated plan pricing reuses one bundle
        cache.
        """
        cluster = self._default_cluster(cluster)
        client = self._clients.get(cluster)
        if client is None:
            client = self._clients[cluster] = ClusterClient(self, cluster)
        return client

    def predict_plan(
        self, cluster: str, root: PhysicalOp, estimator: CardinalityEstimator
    ) -> float:
        """Total plan cost through the cluster's client (the load-test path)."""
        return self.client(cluster).predict_plan(root, estimator)

    def cost_model(self, cluster: str | None = None) -> CostModel:
        """An optimizer-facing cost model that prices through the fleet."""
        return self.client(cluster).cost_model()

    # ------------------------------------------------------------------ #
    # Stats and lifecycle
    # ------------------------------------------------------------------ #

    def _services(self) -> Iterator[CleoService]:
        for shard in self._shards:
            yield from shard.values()

    def stats(self) -> ServiceStats:
        """Aggregated counters across every shard and cluster."""
        return ServiceStats.aggregate(s.stats() for s in self._services())

    def stats_for(self, cluster: str) -> ServiceStats:
        self._check_cluster(cluster)
        return ServiceStats.aggregate(
            shard[cluster].stats() for shard in self._shards
        )

    def shard_stats(self) -> list[ServiceStats]:
        """Per-shard aggregated counters (load-balance introspection)."""
        return [
            ServiceStats.aggregate(s.stats() for s in shard.values())
            for shard in self._shards
        ]

    @property
    def lookup_count(self) -> int:
        """Model lookups across the fleet plus the base predictors."""
        total = sum(s.predictor.lookup_count for s in self._services())
        return total + sum(p.lookup_count for p in self._base.values())

    def reset_stats(self) -> None:
        for service in self._services():
            service.reset_stats()
            service.predictor.reset_lookup_count()

    def clear_caches(self) -> None:
        for service in self._services():
            service.clear_caches()

    def close(self) -> None:
        """Shut the fan-out pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ShardedCleoRouter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def describe(self) -> str:
        return (
            f"ShardedCleoRouter({len(self._base)} clusters x "
            f"{self.ring.n_shards} shards, {self.n_workers} workers)"
        )


class ClusterClient:
    """The :class:`~repro.serving.service.CleoService` surface, one cluster.

    What :class:`~repro.core.cost_model.CleoCostModel` (and the planner
    behind it) needs from a service, re-pointed at the router: scalar and
    batched prediction, bundle memoization, plan pricing with the exact
    left-fold total, resource profiles, and explanations.  Bundles are
    memoized here — routing needs the bundle *before* a shard is known.
    """

    def __init__(self, router: ShardedCleoRouter, cluster: str) -> None:
        self.router = router
        self.cluster = cluster
        self._bundle_cache = LRUCache(router._bundle_cache_size)

    @property
    def predictor(self) -> CleoPredictor:
        """The cluster's base (unsharded) predictor view."""
        return self.router._base[self.cluster]

    @property
    def prediction_cache_enabled(self) -> bool:
        return self.router._shards[0][self.cluster].prediction_cache_enabled

    @property
    def lookup_count(self) -> int:
        return self.router.lookup_count

    def bundle_for(self, op: PhysicalOp) -> SignatureBundle:
        entry = self._bundle_cache.get(id(op))
        if entry is not None and entry[0] is op:
            return entry[1]
        bundle = SignatureBundle.of(op)
        self._bundle_cache.put(id(op), (op, bundle))
        return bundle

    def predict(self, features: FeatureInput, signatures: SignatureBundle) -> float:
        return self.router.predict(self.cluster, features, signatures)

    def predict_batch(self, requests: Sequence[PredictionRequest]) -> np.ndarray:
        return self.router.predict_batch(self.cluster, requests)

    def predict_inputs(
        self,
        inputs: Sequence[FeatureInput],
        bundles: Sequence[SignatureBundle],
    ) -> np.ndarray:
        return self.router.predict_inputs(self.cluster, inputs, bundles)

    def predict_table(self, table: FeatureTable) -> np.ndarray:
        return self.router.predict_table(self.cluster, table)

    def resource_profile(
        self, features: FeatureInput, signatures: SignatureBundle
    ) -> ResourceProfile | None:
        return self.router.resource_profile(self.cluster, features, signatures)

    def resource_profiles(
        self,
        inputs: Sequence[FeatureInput],
        bundles: Sequence[SignatureBundle],
    ) -> list[ResourceProfile | None]:
        return self.router.resource_profiles(self.cluster, inputs, bundles)

    def predict_operator(
        self,
        op: PhysicalOp,
        estimator: CardinalityEstimator,
        partition_override: int | None = None,
    ) -> float:
        features = feature_input_for(op, estimator, partition_override)
        return self.predict(features, self.bundle_for(op))

    def predict_plan(self, root: PhysicalOp, estimator: CardinalityEstimator) -> float:
        """Total plan cost through the sharded batch path.

        Same request construction and left-fold summation as
        :meth:`~repro.serving.service.CleoService.predict_plan`, so plan
        totals are bitwise identical to the single-process service.
        """
        requests = [
            PredictionRequest(feature_input_for(op, estimator), self.bundle_for(op))
            for op in root.walk()
        ]
        total = 0.0
        for value in self.predict_batch(requests):
            total = total + float(value)
        return total

    def predict_plan_batch(
        self,
        inputs: Sequence[FeatureInput],
        bundles: Sequence[SignatureBundle],
        lengths: Sequence[int],
    ) -> list[float]:
        """Several plans' totals through the sharded batch path.

        Same contract and left-fold reduction as
        :meth:`~repro.serving.service.CleoService.predict_plan_batch`, so
        fleet replanning against a sharded tier stays bitwise identical to
        the single-process service.
        """
        if len(inputs) != len(bundles):
            raise ValueError("inputs and bundles must align")
        if sum(lengths) != len(inputs):
            raise ValueError("lengths must partition the request sequence")
        values = self.predict_inputs(inputs, bundles)
        totals: list[float] = []
        offset = 0
        for n in lengths:
            total = 0.0
            for value in values[offset : offset + n]:
                total = total + float(value)
            totals.append(total)
            offset += n
        return totals

    def explain(
        self, features: FeatureInput, signatures: SignatureBundle
    ) -> CostExplanation:
        return self.router.explain(self.cluster, features, signatures)

    def explain_operator(
        self, op: PhysicalOp, estimator: CardinalityEstimator
    ) -> CostExplanation:
        features = feature_input_for(op, estimator)
        return self.explain(features, self.bundle_for(op))

    def cost_model(self) -> CostModel:
        from repro.core.cost_model import CleoCostModel

        return CleoCostModel(self.predictor, service=self)

    def clear_caches(self) -> None:
        self._bundle_cache.clear()
        self.router.clear_caches()

    def describe(self) -> str:
        return f"ClusterClient({self.cluster!r} via {self.router.describe()})"
