"""Consistent-hash routing of ``(cluster, template)`` keys onto shards.

The sharded tier partitions the *request space* by template: every operator
of a recurring job template carries the same approximate (template-level)
subgraph signature, so hashing ``(cluster, approx)`` keeps a template's
whole working set — predictions, cached entries, resource profiles — on one
shard.  A classic consistent-hash ring with virtual nodes keeps the
assignment stable when the shard count changes (only ~1/n of templates
move) and balanced across shards.

Every hash here is :func:`repro.common.hashing.stable_hash` (blake2b).  The
built-in ``hash`` is salted per process via ``PYTHONHASHSEED``, and routing
through it would scatter the same template onto different shards in
different processes — the exact failure mode of the PR 2 planner incident,
pinned cross-process by ``tests/serving/test_shard_determinism.py``.
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import stable_hash

#: Salt for virtual-node placement, so ring positions can never collide
#: with request keys by construction of the joined hash payload.
_RING_SALT = "cleo-shard"

#: Default virtual nodes per shard: enough for a few-percent load spread.
DEFAULT_REPLICAS = 64


def route_key(cluster: str, template_signature: int) -> int:
    """The 64-bit routing key of one ``(cluster, template)`` pair."""
    return stable_hash(cluster, int(template_signature))


class HashRing:
    """Consistent-hash ring mapping 64-bit keys to shard indices.

    Each shard owns ``replicas`` virtual nodes placed at
    ``stable_hash(salt, shard, replica)``; a key belongs to the first
    virtual node at or clockwise-after its position (wrapping past the top
    of the 64-bit space).  Lookup is one ``np.searchsorted`` over the
    sorted positions — scalar or vectorized over whole key columns.
    """

    def __init__(self, n_shards: int, replicas: int = DEFAULT_REPLICAS) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.n_shards = int(n_shards)
        self.replicas = int(replicas)
        points = sorted(
            (stable_hash(_RING_SALT, shard, replica), shard)
            for shard in range(self.n_shards)
            for replica in range(self.replicas)
        )
        self._positions = np.array([p for p, _ in points], dtype=np.uint64)
        self._owners = np.array([s for _, s in points], dtype=np.int64)

    def shard_for_key(self, key: int) -> int:
        """Owning shard of one routing key."""
        pos = int(np.searchsorted(self._positions, np.uint64(key), side="left"))
        if pos == len(self._positions):  # wrap past the highest virtual node
            pos = 0
        return int(self._owners[pos])

    def shards_for_keys(self, keys: np.ndarray) -> np.ndarray:
        """Owning shards of a key column, one vectorized lookup."""
        keys = np.asarray(keys, dtype=np.uint64)
        pos = np.searchsorted(self._positions, keys, side="left")
        pos[pos == len(self._positions)] = 0
        return self._owners[pos]

    def shard_for(self, cluster: str, template_signature: int) -> int:
        """Owning shard of one ``(cluster, template)`` pair."""
        return self.shard_for_key(route_key(cluster, template_signature))

    def load_spread(self, keys: np.ndarray) -> dict[int, int]:
        """Keys per shard (introspection for balance checks)."""
        shards = self.shards_for_keys(keys)
        return {int(s): int(c) for s, c in zip(*np.unique(shards, return_counts=True))}

    def describe(self) -> str:
        return f"HashRing({self.n_shards} shards x {self.replicas} replicas)"
