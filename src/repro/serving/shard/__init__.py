"""Sharded multi-cluster serving tier.

Scales the single-process :class:`~repro.serving.service.CleoService` out
into a fleet of shards behind one façade (the paper's production setting:
models for *all* clusters served to "millions of users" of the optimizer,
Section 5.1):

* :class:`~repro.serving.shard.routing.HashRing` — consistent-hash routing
  of ``(cluster, template)`` keys onto shards, built on
  :func:`repro.common.hashing.stable_hash` so placement never depends on
  ``PYTHONHASHSEED``;
* :class:`~repro.serving.shard.router.ShardedCleoRouter` — the façade that
  owns one :class:`~repro.serving.service.CleoService` per (shard, cluster),
  fans batches out across shards, and merges results in input order with
  aggregated stats;
* :mod:`~repro.serving.shard.loadgen` — the deterministic mixed
  predict/plan request stream behind the serving load test.
"""

from repro.serving.shard.health import (
    DEFAULT_RESILIENCE,
    BreakerState,
    ResilienceConfig,
    ShardHealth,
    ShardHealthStats,
)
from repro.serving.shard.loadgen import LoadResult, ServingLoad, build_load
from repro.serving.shard.router import ClusterClient, ShardedCleoRouter
from repro.serving.shard.routing import HashRing, route_key

__all__ = [
    "BreakerState",
    "ClusterClient",
    "DEFAULT_RESILIENCE",
    "HashRing",
    "LoadResult",
    "ResilienceConfig",
    "ServingLoad",
    "ShardHealth",
    "ShardHealthStats",
    "ShardedCleoRouter",
    "build_load",
    "route_key",
]
