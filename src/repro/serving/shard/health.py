"""Per-shard health tracking and circuit breaking for the serving fleet.

Each shard of a :class:`~repro.serving.shard.router.ShardedCleoRouter`
gets a :class:`ShardHealth` tracker: a rolling window of recent call
outcomes plus a three-state circuit breaker.

* **CLOSED** — the shard serves traffic.  ``allow()`` is a pure read in
  this state (no mutation), so the zero-fault serving path stays free of
  shared-state writes and remains bitwise deterministic under fan-out.
* **OPEN** — after ``failure_threshold`` consecutive failures the breaker
  trips: calls are rejected (the router walks the degradation ladder
  instead) for ``cooldown_calls`` logical calls.  Cooldowns are counted in
  calls, not seconds, so chaos runs replay identically at any speed.
* **HALF_OPEN** — after the cooldown, exactly one probe call is admitted;
  success closes the breaker, failure re-opens it for another cooldown.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from threading import Lock

from repro.common.errors import ValidationError


class BreakerState(str, Enum):
    """Circuit-breaker states for one shard."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for the router's retry / breaker / degradation ladder.

    ``max_retries`` bounds ring-successor retries per sub-batch,
    ``deadline_s`` is the wall-clock budget for the whole ladder walk
    (once exceeded, the router drops straight to the heuristic floor),
    and ``validate_outputs`` controls whether shard answers are checked
    for non-finite / negative values at the router boundary.

    ``hedge_threshold_s`` is the latency SLO for hedged requests: when the
    owning shard's injected latency spike would exceed it, the router
    fires the sub-batch at the ring successor *first* (the shared
    read-only bank makes the successor's answer bitwise what the owner's
    would be) instead of waiting out the spike.  ``None`` (the default)
    disables hedging, preserving the PR 8 ladder exactly.
    """

    max_retries: int = 2
    failure_threshold: int = 3
    window: int = 64
    cooldown_calls: int = 16
    deadline_s: float = 0.25
    validate_outputs: bool = True
    hedge_threshold_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValidationError("max_retries must be non-negative")
        if self.failure_threshold < 1:
            raise ValidationError("failure_threshold must be at least 1")
        if self.window < 1:
            raise ValidationError("window must be at least 1")
        if self.cooldown_calls < 1:
            raise ValidationError("cooldown_calls must be at least 1")
        if self.deadline_s <= 0.0:
            raise ValidationError("deadline_s must be positive")
        if self.hedge_threshold_s is not None and self.hedge_threshold_s <= 0.0:
            raise ValidationError("hedge_threshold_s must be positive")


#: The router's default posture: resilience on, no fault injection.
DEFAULT_RESILIENCE = ResilienceConfig()


@dataclass(frozen=True)
class ShardHealthStats:
    """Point-in-time health snapshot for one shard."""

    shard: int
    state: BreakerState
    calls: int
    failures: int
    timeouts: int
    consecutive_failures: int
    window_failure_rate: float
    breaker_opens: int
    breaker_closes: int
    rejected: int

    def describe(self) -> str:
        return (
            f"shard {self.shard}: {self.state.value}, {self.calls} calls, "
            f"{self.failures} failures ({self.timeouts} timeouts), "
            f"window failure rate {self.window_failure_rate:.1%}, "
            f"{self.breaker_opens} opens / {self.breaker_closes} closes, "
            f"{self.rejected} rejected"
        )


class ShardHealth:
    """Thread-safe health tracker + circuit breaker for one shard."""

    def __init__(self, shard: int, config: ResilienceConfig) -> None:
        self.shard = shard
        self.config = config
        self._lock = Lock()
        self._state = BreakerState.CLOSED
        self._window: deque[bool] = deque(maxlen=config.window)
        self._calls = 0
        self._failures = 0
        self._timeouts = 0
        self._consecutive = 0
        self._opens = 0
        self._closes = 0
        self._rejected = 0
        self._cooldown_remaining = 0
        self._probe_in_flight = False

    # ------------------------------------------------------------------ #
    # Breaker protocol
    # ------------------------------------------------------------------ #

    def allow(self) -> bool:
        """Whether the shard may be called right now.

        CLOSED answers without taking the lock or mutating anything —
        the hot path must not serialize concurrent fan-out workers.
        """
        if self._state is BreakerState.CLOSED:
            return True
        with self._lock:
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.OPEN:
                if self._cooldown_remaining > 0:
                    self._cooldown_remaining -= 1
                    self._rejected += 1
                    return False
                self._state = BreakerState.HALF_OPEN
                self._probe_in_flight = True
                return True
            # HALF_OPEN: one probe at a time.
            if self._probe_in_flight:
                self._rejected += 1
                return False
            self._probe_in_flight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._calls += 1
            self._window.append(True)
            self._consecutive = 0
            if self._state is BreakerState.HALF_OPEN:
                self._state = BreakerState.CLOSED
                self._probe_in_flight = False
                self._closes += 1

    def record_failure(self, timeout: bool = False) -> None:
        with self._lock:
            self._calls += 1
            self._failures += 1
            if timeout:
                self._timeouts += 1
            self._window.append(False)
            self._consecutive += 1
            if self._state is BreakerState.HALF_OPEN:
                # The probe failed: re-open for another cooldown.
                self._state = BreakerState.OPEN
                self._probe_in_flight = False
                self._opens += 1
                self._cooldown_remaining = self.config.cooldown_calls
            elif (
                self._state is BreakerState.CLOSED
                and self._consecutive >= self.config.failure_threshold
            ):
                self._state = BreakerState.OPEN
                self._opens += 1
                self._cooldown_remaining = self.config.cooldown_calls

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def state(self) -> BreakerState:
        return self._state

    @property
    def breaker_opens(self) -> int:
        return self._opens

    def stats(self) -> ShardHealthStats:
        with self._lock:
            window = list(self._window)
            rate = (
                (len(window) - sum(window)) / len(window) if window else 0.0
            )
            return ShardHealthStats(
                shard=self.shard,
                state=self._state,
                calls=self._calls,
                failures=self._failures,
                timeouts=self._timeouts,
                consecutive_failures=self._consecutive,
                window_failure_rate=rate,
                breaker_opens=self._opens,
                breaker_closes=self._closes,
                rejected=self._rejected,
            )

    def reset_stats(self) -> None:
        """Zero the counters; breaker state and window are preserved."""
        with self._lock:
            self._calls = 0
            self._failures = 0
            self._timeouts = 0
            self._opens = 0
            self._closes = 0
            self._rejected = 0

    # ------------------------------------------------------------------ #
    # Durable state
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """JSON-ready state for persistence across process restarts."""
        with self._lock:
            return {
                "shard": self.shard,
                "state": self._state.value,
                "window": [bool(ok) for ok in self._window],
                "calls": self._calls,
                "failures": self._failures,
                "timeouts": self._timeouts,
                "consecutive_failures": self._consecutive,
                "breaker_opens": self._opens,
                "breaker_closes": self._closes,
                "rejected": self._rejected,
                "cooldown_remaining": self._cooldown_remaining,
            }

    def restore(self, payload: dict) -> None:
        """Resume from a :meth:`snapshot` taken before a restart.

        Breaker state, cooldown countdown, outcome window, and counters
        all come back; a HALF_OPEN probe that died with the old process is
        *not* restored as in-flight, so the restarted shard re-admits
        exactly one fresh probe instead of deadlocking half-open.
        """
        if int(payload["shard"]) != self.shard:
            raise ValidationError(
                f"snapshot is for shard {payload['shard']}, not {self.shard}"
            )
        with self._lock:
            self._state = BreakerState(payload["state"])
            self._window = deque(
                (bool(ok) for ok in payload["window"]), maxlen=self.config.window
            )
            self._calls = int(payload["calls"])
            self._failures = int(payload["failures"])
            self._timeouts = int(payload["timeouts"])
            self._consecutive = int(payload["consecutive_failures"])
            self._opens = int(payload["breaker_opens"])
            self._closes = int(payload["breaker_closes"])
            self._rejected = int(payload["rejected"])
            self._cooldown_remaining = int(payload["cooldown_remaining"])
            self._probe_in_flight = False
