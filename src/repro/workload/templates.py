"""Job templates: the recurring-job abstraction.

A *fragment* is a reusable subexpression spec (scan + a chain of unary
operators) drawn from a per-cluster pool; fragments carry their own template
tags, so two different job templates composing the same fragment produce
*identical operator subgraphs* — the common-subexpression structure that
operator-subgraph models exploit (Section 3.1).

A *template* composes one or two fragments (joined when two), applies
template-specific post-processing (filters, UDFs, aggregation, top-k), and
writes an output.  Instantiating a template against a day's catalog with an
instance seed yields a concrete logical plan: selectivities, UDF factors and
join fan-outs wobble per instance around the template's base values, and the
wobble values are recorded as job parameters (the ``PM`` feature).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.rng import derive_rng
from repro.data.catalog import Catalog
from repro.plan.builder import PlanBuilder
from repro.plan.logical import LogicalOp

# One unary op inside a fragment or post-chain:
#   ("filter", column, base_selectivity)
#   ("process", udf_name, base_card_factor, width_factor)
#   ("project", width_factor)
UnaryOpSpec = tuple


@dataclass(frozen=True)
class FragmentSpec:
    """A reusable subexpression: scan of one base table + unary op chain."""

    fragment_id: int
    base_table: str
    ops: tuple[UnaryOpSpec, ...]

    def tag(self, index: int) -> str:
        """Template tags are fragment-scoped so sharing survives composition."""
        return f"frag{self.fragment_id}:op{index}"


@dataclass(frozen=True)
class TemplateSpec:
    """A recurring job template."""

    template_id: str
    fragments: tuple[FragmentSpec, ...]  # 1 or 2
    join_fanout: float = 1.0
    join_keys: tuple[str, str] = ("jk_l", "jk_r")
    post_ops: tuple[UnaryOpSpec, ...] = ()
    aggregate_keys: tuple[str, ...] = ()
    group_count_exp: float = 0.5  # groups = input_card ** exp
    topk: int | None = None
    is_adhoc: bool = False

    def __post_init__(self) -> None:
        if not 1 <= len(self.fragments) <= 2:
            raise ValueError("templates compose 1 or 2 fragments")


@dataclass(frozen=True)
class JobSpec:
    """One job instance of a template on one day."""

    job_id: str
    template: TemplateSpec
    day: int
    instance_seed: int

    @property
    def is_adhoc(self) -> bool:
        return self.template.is_adhoc


@dataclass
class InstantiationContext:
    """Per-instance randomness + parameter bookkeeping."""

    rng: np.random.Generator
    params: list[float] = field(default_factory=list)

    def wobble(self, base: float, sigma: float = 0.25) -> float:
        value = float(base * np.exp(self.rng.normal(0.0, sigma)))
        self.params.append(value)
        return value


def _apply_unary(
    builder: PlanBuilder,
    node: LogicalOp,
    spec: UnaryOpSpec,
    tag: str,
    ctx: InstantiationContext,
) -> LogicalOp:
    kind = spec[0]
    if kind == "filter":
        _, column, base_sel = spec
        sel = min(1.0, max(1e-5, ctx.wobble(base_sel)))
        return builder.filter(node, column, sel, tag=tag, params=(sel,))
    if kind == "process":
        _, udf_name, base_factor, width_factor = spec
        factor = max(1e-3, ctx.wobble(base_factor))
        return builder.process(
            node, udf_name, card_factor=factor, width_factor=width_factor,
            tag=tag, params=(factor,),
        )
    if kind == "project":
        _, width_factor = spec
        return builder.project(node, width_factor=width_factor, tag=tag)
    raise ValueError(f"unknown unary op spec {kind!r}")


def table_name_for_day(base_table: str, day: int) -> str:
    """Dated input name; normalization maps all days to one template."""
    return f"{base_table}_day{day:03d}"


def instantiate(job: JobSpec, catalog: Catalog) -> LogicalOp:
    """Build the concrete logical plan of a job instance.

    Deterministic given (job spec, catalog): all per-instance wobble comes
    from the job's ``instance_seed``.
    """
    template = job.template
    ctx = InstantiationContext(rng=derive_rng(job.instance_seed, "instance", job.job_id))
    builder = PlanBuilder(catalog)

    branches: list[LogicalOp] = []
    for fragment in template.fragments:
        node = builder.scan(table_name_for_day(fragment.base_table, job.day))
        for i, op_spec in enumerate(fragment.ops):
            node = _apply_unary(builder, node, op_spec, fragment.tag(i), ctx)
        branches.append(node)

    if len(branches) == 2:
        fanout = max(1e-3, ctx.wobble(template.join_fanout))
        node = builder.join(
            branches[0],
            branches[1],
            keys=template.join_keys,
            fanout=fanout,
            tag=f"{template.template_id}:join",
        )
    else:
        node = branches[0]

    for i, op_spec in enumerate(template.post_ops):
        node = _apply_unary(builder, node, op_spec, f"{template.template_id}:post{i}", ctx)

    if template.aggregate_keys:
        groups = max(1.0, node.true_card**template.group_count_exp)
        node = builder.aggregate(
            node,
            keys=template.aggregate_keys,
            group_count=groups,
            tag=f"{template.template_id}:agg",
        )

    if template.topk is not None:
        node = builder.topk(
            node,
            keys=template.aggregate_keys or ("v0",),
            k=template.topk,
            tag=f"{template.template_id}:topk",
        )

    return builder.output(node, name=f"{template.template_id}_out")
