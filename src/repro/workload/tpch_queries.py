"""All 22 TPC-H queries as parameterized logical plans.

Each query follows the benchmark's logical shape — the scans, filters, join
graph, aggregations, and top-k of the SQL text — with selectivities derived
analytically from the TPC-H specification's data distributions, so true
cardinalities respond to the randomly drawn substitution parameters exactly
like the benchmark's qgen streams.  Sub-queries (exists / not exists /
scalar comparisons) are modeled as joins or semi-join-shaped reductions with
the correct cardinality effect, which preserves the plan-choice pressure the
paper's TPC-H study exercises (Section 6.6.2).

Every operator carries a stable ``q<N>:`` template tag, so ten randomized
runs of the suite give Cleo ten training instances per subexpression — the
paper's training setup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.rng import derive_rng
from repro.data.catalog import Catalog
from repro.data.tpch import DATE_MAX, DATE_MIN
from repro.plan.builder import PlanBuilder
from repro.plan.logical import LogicalOp

_YEARS = 7.0  # the order-date domain spans 1992-1998
_LINEITEMS_PER_ORDER = 4.0
_ORDERS_PER_CUSTOMER_WITH_ORDERS = 10.0


@dataclass(frozen=True)
class TpchQuery:
    """One instantiated query: plan plus the drawn parameters."""

    query_id: int
    plan: LogicalOp
    params: dict[str, float]


class TpchQuerySet:
    """Builds randomized instances of TPC-H Q1-Q22 against a catalog."""

    def __init__(self, catalog: Catalog, seed: int = 0) -> None:
        self.catalog = catalog
        self.seed = seed

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def query(self, number: int, run: int = 0) -> TpchQuery:
        """Instantiate query ``number`` (1-22) with run-specific parameters."""
        builder = _Q(self.catalog, derive_rng(self.seed, "tpch", number, run))
        try:
            method = getattr(builder, f"q{number}")
        except AttributeError:
            raise ValueError(f"TPC-H has queries 1-22, got {number}") from None
        plan, params = method()
        return TpchQuery(query_id=number, plan=plan, params=params)

    def all_queries(self, run: int = 0) -> list[TpchQuery]:
        return [self.query(n, run) for n in range(1, 23)]


class _Q:
    """Per-instantiation helper: a PlanBuilder plus parameter draws."""

    def __init__(self, catalog: Catalog, rng: np.random.Generator) -> None:
        self.b = PlanBuilder(catalog)
        self.rng = rng
        self.rows = {
            name: catalog.stats(name).row_count for name in catalog.table_names
        }

    # -------------------- small helpers -------------------- #

    def date_window_sel(self, days: float) -> float:
        """Selectivity of a date window of the given width."""
        return min(1.0, days / (DATE_MAX - DATE_MIN))

    def scan(self, table: str) -> LogicalOp:
        return self.b.scan(table, tag=f"tpch:get:{table}")

    def fk_join(
        self,
        fact: LogicalOp,
        dim: LogicalOp,
        keys: tuple[str, str],
        dim_retention: float,
        tag: str,
        fanout: float = 1.0,
    ) -> LogicalOp:
        """FK join: fact rows survive per the dimension side's retention.

        ``dim_retention`` is the fraction of the dimension's key domain
        present in ``dim`` (its filters' combined selectivity); ``fanout``
        multiplies when one fact row matches several dimension rows.
        """
        card = fact.true_card * min(dim_retention, 1.0) * fanout
        return self.b.join(fact, dim, keys=keys, output_card=card, tag=tag)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def q1(self):
        delta = int(self.rng.integers(60, 121))
        sel = self.date_window_sel(DATE_MAX - DATE_MIN - delta)
        li = self.b.filter(
            self.scan("lineitem"), "l_shipdate", sel, tag="q1:f_shipdate", params=(float(delta),)
        )
        agg = self.b.aggregate(
            li, keys=("l_returnflag", "l_linestatus"), group_count=4, tag="q1:agg"
        )
        out = self.b.output(
            self.b.sort(agg, keys=("l_returnflag", "l_linestatus"), tag="q1:sort"),
            name="q1",
            tag="q1:out",
        )
        return out, {"delta": float(delta)}

    def q2(self):
        size = int(self.rng.integers(1, 51))
        part_sel = (1.0 / 50.0) * (1.0 / 5.0)  # p_size = X and p_type like %Y
        region_sel = 1.0 / 5.0
        part = self.b.filter(self.scan("part"), "p_size", part_sel, tag="q2:f_part",
                             params=(float(size),))
        ps = self.fk_join(
            self.scan("partsupp"), part, ("ps_partkey", "p_partkey"), part_sel,
            tag="q2:j_ps_part",
        )
        supp = self.fk_join(
            ps, self.scan("supplier"), ("ps_suppkey", "s_suppkey"), 1.0, tag="q2:j_ps_supp"
        )
        nation = self.fk_join(
            supp, self.scan("nation"), ("s_nationkey", "n_nationkey"), 1.0, tag="q2:j_nation"
        )
        region = self.fk_join(
            nation,
            self.b.filter(self.scan("region"), "r_name", region_sel, tag="q2:f_region"),
            ("n_regionkey", "r_regionkey"),
            region_sel,
            tag="q2:j_region",
        )
        # min(ps_supplycost) per part, then keep the min-cost suppliers.
        agg = self.b.aggregate(
            region, keys=("ps_partkey",), group_count=region.true_card / 1.25, tag="q2:agg_min"
        )
        top = self.b.topk(agg, keys=("s_acctbal",), k=100, tag="q2:top")
        return self.b.output(top, name="q2", tag="q2:out"), {"size": float(size)}

    def q3(self):
        date = float(self.rng.integers(1092, 1123))  # around 1995-03
        seg_sel = 1.0 / 5.0
        o_sel = date / (DATE_MAX - 151)  # orders before the date
        l_sel = 1.0 - (date + 3) / DATE_MAX  # lineitems shipped after
        cust = self.b.filter(self.scan("customer"), "c_mktsegment", seg_sel, tag="q3:f_seg")
        orders = self.b.filter(
            self.scan("orders"), "o_orderdate", o_sel, tag="q3:f_odate", params=(date,)
        )
        co = self.fk_join(orders, cust, ("o_custkey", "c_custkey"), seg_sel, tag="q3:j_cust")
        li = self.b.filter(
            self.scan("lineitem"), "l_shipdate", l_sel, tag="q3:f_sdate", params=(date,)
        )
        col = self.fk_join(
            li, co, ("l_orderkey", "o_orderkey"), co.true_card / self.rows["orders"],
            tag="q3:j_ord",
        )
        agg = self.b.aggregate(
            col, keys=("l_orderkey",), group_count=col.true_card / 2.0, tag="q3:agg"
        )
        top = self.b.topk(agg, keys=("revenue",), k=10, tag="q3:top")
        return self.b.output(top, name="q3", tag="q3:out"), {"date": date}

    def q4(self):
        quarter_start = float(self.rng.integers(0, 58)) * 30.0
        o_sel = self.date_window_sel(92)
        exists_sel = 0.63  # fraction of orders with a late lineitem
        orders = self.b.filter(
            self.scan("orders"), "o_orderdate", o_sel, tag="q4:f_odate",
            params=(quarter_start,),
        )
        li = self.b.filter(
            self.scan("lineitem"), "l_commitdate", 0.63, tag="q4:f_late"
        )
        semi = self.fk_join(
            orders, li, ("o_orderkey", "l_orderkey"), exists_sel, tag="q4:semi"
        )
        agg = self.b.aggregate(semi, keys=("o_orderpriority",), group_count=5, tag="q4:agg")
        out = self.b.sort(agg, keys=("o_orderpriority",), tag="q4:sort")
        return self.b.output(out, name="q4", tag="q4:out"), {"quarter": quarter_start}

    def q5(self):
        year = float(self.rng.integers(0, 5))
        region_sel = 1.0 / 5.0
        year_sel = 1.0 / _YEARS
        region = self.b.filter(self.scan("region"), "r_name", region_sel, tag="q5:f_region")
        nation = self.fk_join(
            self.scan("nation"), region, ("n_regionkey", "r_regionkey"), region_sel,
            tag="q5:j_nation", )
        supp = self.fk_join(
            self.scan("supplier"), nation, ("s_nationkey", "n_nationkey"), region_sel,
            tag="q5:j_supp",
        )
        orders = self.b.filter(
            self.scan("orders"), "o_orderdate", year_sel, tag="q5:f_year", params=(year,)
        )
        li = self.fk_join(
            self.scan("lineitem"), orders, ("l_orderkey", "o_orderkey"), year_sel,
            tag="q5:j_ord", fanout=1.0,
        )
        lis = self.fk_join(li, supp, ("l_suppkey", "s_suppkey"), region_sel, tag="q5:j_ls")
        cust = self.fk_join(
            lis, self.scan("customer"), ("o_custkey", "c_custkey"), region_sel / 5.0,
            tag="q5:j_cust",
        )
        agg = self.b.aggregate(cust, keys=("n_name",), group_count=5, tag="q5:agg")
        out = self.b.sort(agg, keys=("revenue",), tag="q5:sort")
        return self.b.output(out, name="q5", tag="q5:out"), {"year": year}

    def q6(self):
        year = float(self.rng.integers(0, 5))
        discount = float(self.rng.uniform(0.02, 0.09))
        quantity = float(self.rng.integers(24, 26))
        sel = (1.0 / _YEARS) * (3.0 / 11.0) * (quantity / 50.0)
        li = self.b.filter(
            self.scan("lineitem"), "l_shipdate", sel, tag="q6:f_all",
            params=(year, discount, quantity),
        )
        agg = self.b.aggregate(li, keys=(), group_count=1, tag="q6:agg")
        return self.b.output(agg, name="q6", tag="q6:out"), {
            "year": year, "discount": discount, "quantity": quantity,
        }

    def q7(self):
        nation_pair_sel = 2.0 / (25.0 * 25.0)
        years_sel = 2.0 / _YEARS
        li = self.b.filter(
            self.scan("lineitem"), "l_shipdate", years_sel, tag="q7:f_years"
        )
        supp = self.fk_join(
            li, self.scan("supplier"), ("l_suppkey", "s_suppkey"), 1.0, tag="q7:j_supp"
        )
        orders = self.fk_join(
            supp, self.scan("orders"), ("l_orderkey", "o_orderkey"), 1.0, tag="q7:j_ord"
        )
        cust = self.fk_join(
            orders, self.scan("customer"), ("o_custkey", "c_custkey"), 1.0, tag="q7:j_cust"
        )
        # Nation-pair restriction applied across the supplier/customer sides.
        pair = self.b.filter(cust, "n_name_pair", nation_pair_sel * 25.0 * 25.0 / 312.5,
                             tag="q7:f_pair")
        agg = self.b.aggregate(
            pair, keys=("supp_nation", "cust_nation", "l_year"), group_count=4, tag="q7:agg"
        )
        out = self.b.sort(agg, keys=("supp_nation", "cust_nation", "l_year"), tag="q7:sort")
        return self.b.output(out, name="q7", tag="q7:out"), {}

    def q8(self):
        type_sel = 1.0 / 150.0
        region_sel = 1.0 / 5.0
        years_sel = 2.0 / _YEARS
        part = self.b.filter(self.scan("part"), "p_type", type_sel, tag="q8:f_type")
        li = self.fk_join(
            self.scan("lineitem"), part, ("l_partkey", "p_partkey"), type_sel, tag="q8:j_part"
        )
        supp = self.fk_join(
            li, self.scan("supplier"), ("l_suppkey", "s_suppkey"), 1.0, tag="q8:j_supp"
        )
        orders = self.fk_join(
            supp,
            self.b.filter(self.scan("orders"), "o_orderdate", years_sel, tag="q8:f_years"),
            ("l_orderkey", "o_orderkey"),
            years_sel,
            tag="q8:j_ord",
        )
        cust = self.fk_join(
            orders, self.scan("customer"), ("o_custkey", "c_custkey"), 1.0, tag="q8:j_cust"
        )
        nation = self.fk_join(
            cust,
            self.b.filter(self.scan("nation"), "n_regionkey", region_sel, tag="q8:f_region"),
            ("c_nationkey", "n_nationkey"),
            region_sel,
            tag="q8:j_nat",
        )
        agg = self.b.aggregate(nation, keys=("o_year",), group_count=2, tag="q8:agg")
        out = self.b.sort(agg, keys=("o_year",), tag="q8:sort")
        return self.b.output(out, name="q8", tag="q8:out"), {}

    def q9(self):
        color_sel = 1.0 / 9.0  # p_name like %color%
        part = self.b.filter(self.scan("part"), "p_name", color_sel, tag="q9:f_color")
        li = self.fk_join(
            self.scan("lineitem"), part, ("l_partkey", "p_partkey"), color_sel, tag="q9:j_part"
        )
        supp = self.fk_join(
            li, self.scan("supplier"), ("l_suppkey", "s_suppkey"), 1.0, tag="q9:j_supp"
        )
        ps = self.fk_join(
            supp, self.scan("partsupp"), ("l_partkey", "ps_partkey"), 1.0, tag="q9:j_ps"
        )
        orders = self.fk_join(
            ps, self.scan("orders"), ("l_orderkey", "o_orderkey"), 1.0, tag="q9:j_ord"
        )
        nation = self.fk_join(
            orders, self.scan("nation"), ("s_nationkey", "n_nationkey"), 1.0, tag="q9:j_nat"
        )
        agg = self.b.aggregate(
            nation, keys=("nation", "o_year"), group_count=25 * _YEARS, tag="q9:agg"
        )
        out = self.b.sort(agg, keys=("nation", "o_year"), tag="q9:sort")
        return self.b.output(out, name="q9", tag="q9:out"), {}

    def q10(self):
        quarter_sel = self.date_window_sel(92)
        returned_sel = 1.0 / 3.0
        orders = self.b.filter(
            self.scan("orders"), "o_orderdate", quarter_sel, tag="q10:f_quarter"
        )
        li = self.b.filter(
            self.scan("lineitem"), "l_returnflag", returned_sel, tag="q10:f_ret"
        )
        ol = self.fk_join(
            li, orders, ("l_orderkey", "o_orderkey"), quarter_sel, tag="q10:j_ord"
        )
        cust = self.fk_join(
            ol, self.scan("customer"), ("o_custkey", "c_custkey"), 1.0, tag="q10:j_cust"
        )
        nation = self.fk_join(
            cust, self.scan("nation"), ("c_nationkey", "n_nationkey"), 1.0, tag="q10:j_nat"
        )
        agg = self.b.aggregate(
            nation, keys=("c_custkey",), group_count=nation.true_card / 2.0, tag="q10:agg"
        )
        top = self.b.topk(agg, keys=("revenue",), k=20, tag="q10:top")
        return self.b.output(top, name="q10", tag="q10:out"), {}

    def q11(self):
        nation_sel = 1.0 / 25.0
        supp = self.fk_join(
            self.scan("supplier"),
            self.b.filter(self.scan("nation"), "n_name", nation_sel, tag="q11:f_nat"),
            ("s_nationkey", "n_nationkey"),
            nation_sel,
            tag="q11:j_nat",
        )
        ps = self.fk_join(
            self.scan("partsupp"), supp, ("ps_suppkey", "s_suppkey"), nation_sel,
            tag="q11:j_ps",
        )
        agg = self.b.aggregate(
            ps, keys=("ps_partkey",), group_count=ps.true_card / 1.1, tag="q11:agg"
        )
        having = self.b.filter(agg, "value", 0.01, tag="q11:having")
        out = self.b.sort(having, keys=("value",), tag="q11:sort")
        return self.b.output(out, name="q11", tag="q11:out"), {}

    def q12(self):
        shipmode_sel = 2.0 / 7.0
        year_late_sel = (1.0 / _YEARS) * 0.3
        li = self.b.filter(
            self.scan("lineitem"), "l_shipmode", shipmode_sel * year_late_sel * 3.0,
            tag="q12:f_mode",
        )
        orders = self.fk_join(
            li, self.scan("orders"), ("l_orderkey", "o_orderkey"), 1.0, tag="q12:j_ord"
        )
        agg = self.b.aggregate(orders, keys=("l_shipmode",), group_count=2, tag="q12:agg")
        out = self.b.sort(agg, keys=("l_shipmode",), tag="q12:sort")
        return self.b.output(out, name="q12", tag="q12:out"), {}

    def q13(self):
        comment_sel = 0.985
        orders = self.b.filter(
            self.scan("orders"), "o_comment", comment_sel, tag="q13:f_comment"
        )
        co = self.fk_join(
            orders, self.scan("customer"), ("o_custkey", "c_custkey"), 1.0, tag="q13:j_cust"
        )
        per_cust = self.b.aggregate(
            co, keys=("c_custkey",), group_count=self.rows["customer"], tag="q13:agg_cust"
        )
        dist = self.b.aggregate(per_cust, keys=("c_count",), group_count=42, tag="q13:agg_dist")
        out = self.b.sort(dist, keys=("custdist", "c_count"), tag="q13:sort")
        return self.b.output(out, name="q13", tag="q13:out"), {}

    def q14(self):
        month_sel = 1.0 / 84.0
        li = self.b.filter(self.scan("lineitem"), "l_shipdate", month_sel, tag="q14:f_month")
        part = self.fk_join(
            li, self.scan("part"), ("l_partkey", "p_partkey"), 1.0, tag="q14:j_part"
        )
        agg = self.b.aggregate(part, keys=(), group_count=1, tag="q14:agg")
        return self.b.output(agg, name="q14", tag="q14:out"), {}

    def q15(self):
        quarter_sel = 1.0 / 28.0
        li = self.b.filter(self.scan("lineitem"), "l_shipdate", quarter_sel, tag="q15:f_q")
        rev = self.b.aggregate(
            li, keys=("l_suppkey",), group_count=self.rows["supplier"], tag="q15:agg_rev"
        )
        supp = self.fk_join(
            rev, self.scan("supplier"), ("l_suppkey", "s_suppkey"), 1.0, tag="q15:j_supp"
        )
        top = self.b.topk(supp, keys=("total_revenue",), k=1, tag="q15:max")
        return self.b.output(top, name="q15", tag="q15:out"), {}

    def q16(self):
        part_sel = (24.0 / 25.0) * (5.0 / 6.0) * (8.0 / 50.0)
        part = self.b.filter(self.scan("part"), "p_brand", part_sel, tag="q16:f_part")
        ps = self.fk_join(
            self.scan("partsupp"), part, ("ps_partkey", "p_partkey"), part_sel,
            tag="q16:j_part",
        )
        no_complaints = self.b.filter(ps, "s_comment", 0.9995, tag="q16:f_supp")
        agg = self.b.aggregate(
            no_complaints,
            keys=("p_brand", "p_type", "p_size"),
            group_count=min(no_complaints.true_card, 25.0 * 150.0 * 8.0 / 6.0),
            tag="q16:agg",
        )
        out = self.b.sort(agg, keys=("supplier_cnt",), tag="q16:sort")
        return self.b.output(out, name="q16", tag="q16:out"), {}

    def q17(self):
        brand_container_sel = (1.0 / 25.0) * (1.0 / 40.0)
        part = self.b.filter(self.scan("part"), "p_brand", brand_container_sel, tag="q17:f_part")
        li = self.fk_join(
            self.scan("lineitem"), part, ("l_partkey", "p_partkey"), brand_container_sel,
            tag="q17:j_part",
        )
        # avg(l_quantity) per part, then lineitems below 20% of their part's avg.
        per_part = self.b.aggregate(
            li, keys=("p_partkey",),
            group_count=self.rows["part"] * brand_container_sel,
            tag="q17:agg_avg",
        )
        below = self.fk_join(
            li, per_part, ("l_partkey", "p_partkey"), 0.2, tag="q17:j_below"
        )
        agg = self.b.aggregate(below, keys=(), group_count=1, tag="q17:agg")
        return self.b.output(agg, name="q17", tag="q17:out"), {}

    def q18(self):
        big_order_sel = 0.0004  # sum(l_quantity) > 300
        per_order = self.b.aggregate(
            self.scan("lineitem"), keys=("l_orderkey",),
            group_count=self.rows["orders"], tag="q18:agg_qty",
        )
        big = self.b.filter(per_order, "sum_qty", big_order_sel, tag="q18:f_big")
        orders = self.fk_join(
            big, self.scan("orders"), ("l_orderkey", "o_orderkey"), 1.0, tag="q18:j_ord"
        )
        cust = self.fk_join(
            orders, self.scan("customer"), ("o_custkey", "c_custkey"), 1.0, tag="q18:j_cust"
        )
        li = self.fk_join(
            cust, self.scan("lineitem"), ("o_orderkey", "l_orderkey"), big_order_sel,
            fanout=_LINEITEMS_PER_ORDER, tag="q18:j_li",
        )
        agg = self.b.aggregate(
            li, keys=("c_name", "o_orderkey"), group_count=orders.true_card, tag="q18:agg"
        )
        top = self.b.topk(agg, keys=("o_totalprice",), k=100, tag="q18:top")
        return self.b.output(top, name="q18", tag="q18:out"), {}

    def q19(self):
        quantity = float(self.rng.integers(1, 11))
        branch_sel = 3.0 * (1.0 / 25.0) * (4.0 / 40.0) * 0.1 * 0.5
        part = self.b.filter(self.scan("part"), "p_brand", branch_sel, tag="q19:f_part",
                             params=(quantity,))
        li = self.b.filter(
            self.scan("lineitem"), "l_shipmode", 0.25, tag="q19:f_mode"
        )
        joined = self.fk_join(
            li, part, ("l_partkey", "p_partkey"), branch_sel, tag="q19:j_part"
        )
        agg = self.b.aggregate(joined, keys=(), group_count=1, tag="q19:agg")
        return self.b.output(agg, name="q19", tag="q19:out"), {"quantity": quantity}

    def q20(self):
        nation_sel = 1.0 / 25.0
        color_sel = 1.0 / 9.0
        part = self.b.filter(self.scan("part"), "p_name", color_sel, tag="q20:f_color")
        ps = self.fk_join(
            self.scan("partsupp"), part, ("ps_partkey", "p_partkey"), color_sel,
            tag="q20:j_part",
        )
        availqty = self.b.filter(ps, "ps_availqty", 0.5, tag="q20:f_avail")
        supp_keys = self.b.aggregate(
            availqty, keys=("ps_suppkey",),
            group_count=self.rows["supplier"] * 0.4, tag="q20:agg_supp",
        )
        supp = self.fk_join(
            self.b.filter(
                self.fk_join(
                    self.scan("supplier"), self.scan("nation"),
                    ("s_nationkey", "n_nationkey"), 1.0, tag="q20:j_nat",
                ),
                "n_name", nation_sel, tag="q20:f_nat",
            ),
            supp_keys,
            ("s_suppkey", "ps_suppkey"),
            0.4,
            tag="q20:semi",
        )
        out = self.b.sort(supp, keys=("s_name",), tag="q20:sort")
        return self.b.output(out, name="q20", tag="q20:out"), {}

    def q21(self):
        nation_sel = 1.0 / 25.0
        status_sel = 1.0 / 3.0  # o_orderstatus = 'F'
        late_sel = 0.37  # l_receiptdate > l_commitdate
        exists_not_exists_sel = 0.25
        supp = self.b.filter(
            self.fk_join(
                self.scan("supplier"), self.scan("nation"),
                ("s_nationkey", "n_nationkey"), 1.0, tag="q21:j_nat",
            ),
            "n_name", nation_sel, tag="q21:f_nat",
        )
        li = self.b.filter(
            self.scan("lineitem"), "l_receiptdate", late_sel, tag="q21:f_late"
        )
        ls = self.fk_join(li, supp, ("l_suppkey", "s_suppkey"), nation_sel, tag="q21:j_supp")
        orders = self.fk_join(
            ls,
            self.b.filter(self.scan("orders"), "o_orderstatus", status_sel, tag="q21:f_stat"),
            ("l_orderkey", "o_orderkey"),
            status_sel,
            tag="q21:j_ord",
        )
        survivors = self.b.filter(
            orders, "multi_supp", exists_not_exists_sel, tag="q21:f_exists"
        )
        agg = self.b.aggregate(
            survivors, keys=("s_name",),
            group_count=self.rows["supplier"] * nation_sel, tag="q21:agg",
        )
        top = self.b.topk(agg, keys=("numwait",), k=100, tag="q21:top")
        return self.b.output(top, name="q21", tag="q21:out"), {}

    def q22(self):
        code_sel = 7.0 / 25.0
        positive_bal_sel = 0.5
        no_orders_sel = 1.0 / 3.0
        cust = self.b.filter(
            self.scan("customer"), "c_phone", code_sel * positive_bal_sel, tag="q22:f_code"
        )
        no_orders = self.b.filter(cust, "no_orders", no_orders_sel, tag="q22:f_noord")
        agg = self.b.aggregate(no_orders, keys=("cntrycode",), group_count=7, tag="q22:agg")
        out = self.b.sort(agg, keys=("cntrycode",), tag="q22:sort")
        return self.b.output(out, name="q22", tag="q22:out"), {}
