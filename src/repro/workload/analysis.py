"""Workload analysis: the subexpression statistics behind Figure 9.

Production teams decide *whether* learned cost models are worth deploying by
measuring how repetitive their workload is; these helpers compute the
paper's workload-characterization numbers from any run log: recurring-job
share, subexpression commonality, per-template sample counts (the min-5
trainability threshold), and template overlap between days.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.execution.runtime_log import RunLog


@dataclass(frozen=True)
class WorkloadProfile:
    """Figure 9-style summary of one log slice."""

    total_jobs: int
    recurring_jobs: int
    recurring_templates: int
    total_subexpressions: int
    common_subexpressions: int
    trainable_subexpressions: int  # appearing >= min_samples times

    @property
    def recurring_fraction(self) -> float:
        return self.recurring_jobs / self.total_jobs if self.total_jobs else float("nan")

    @property
    def common_fraction(self) -> float:
        if not self.total_subexpressions:
            return float("nan")
        return self.common_subexpressions / self.total_subexpressions

    @property
    def trainable_fraction(self) -> float:
        if not self.total_subexpressions:
            return float("nan")
        return self.trainable_subexpressions / self.total_subexpressions


def profile_workload(log: RunLog, min_samples: int = 5) -> WorkloadProfile:
    """Compute the workload profile of a run log."""
    recurring = log.filter(adhoc=False)
    templates = {job.template_id for job in recurring if job.template_id}
    signature_counts: Counter = Counter()
    for record in log.operator_records():
        signature_counts[record.signatures.strict] += 1
    total = sum(signature_counts.values())
    common = sum(c for c in signature_counts.values() if c > 1)
    trainable = sum(c for c in signature_counts.values() if c >= min_samples)
    return WorkloadProfile(
        total_jobs=len(log),
        recurring_jobs=len(recurring),
        recurring_templates=len(templates),
        total_subexpressions=total,
        common_subexpressions=common,
        trainable_subexpressions=trainable,
    )


def subexpression_frequencies(log: RunLog) -> dict[int, int]:
    """Strict-signature -> occurrence count (the model-training population)."""
    counts: Counter = Counter()
    for record in log.operator_records():
        counts[record.signatures.strict] += 1
    return dict(counts)


def template_overlap(log: RunLog, day_a: int, day_b: int) -> float:
    """Jaccard overlap of recurring templates between two days.

    This is the quantity that decays with template churn and drives the
    coverage loss in Figure 14.
    """
    a = {j.template_id for j in log.filter(days=[day_a], adhoc=False)}
    b = {j.template_id for j in log.filter(days=[day_b], adhoc=False)}
    if not a and not b:
        return float("nan")
    return len(a & b) / len(a | b)


def coverage_upper_bound(train_log: RunLog, test_log: RunLog) -> float:
    """Best possible strict-subgraph coverage of a test slice.

    The fraction of test operator instances whose strict signature occurs in
    the training slice at all (ignoring the min-samples threshold) — an
    oracle bound that the trained store's coverage can approach but never
    exceed.
    """
    seen = {record.signatures.strict for record in train_log.operator_records()}
    records = list(test_log.operator_records())
    if not records:
        return float("nan")
    covered = sum(1 for r in records if r.signatures.strict in seen)
    return covered / len(records)
