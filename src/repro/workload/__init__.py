"""Workload layer: synthetic production workloads and TPC-H.

The synthetic generator reproduces the statistical structure of SCOPE's
production workloads (Section 2.2): mostly recurring jobs instantiated from
templates whose inputs arrive daily (with drifting sizes and parameters), a
large degree of subexpression sharing via per-cluster fragment pools, and a
7-20% slice of ad-hoc jobs that still overlap partially with the recurring
fragments.
"""

from repro.workload.generator import ClusterWorkloadConfig, WorkloadGenerator
from repro.workload.runner import WorkloadRunner, run_multi_cluster_workload
from repro.workload.templates import FragmentSpec, JobSpec, TemplateSpec

__all__ = [
    "ClusterWorkloadConfig",
    "FragmentSpec",
    "JobSpec",
    "TemplateSpec",
    "WorkloadGenerator",
    "WorkloadRunner",
    "run_multi_cluster_workload",
]
