"""Workload generation: fragment pools, templates, catalogs, and daily jobs.

One :class:`WorkloadGenerator` models one cluster: a pool of base input
tables whose sizes drift day over day, a pool of reusable fragments over
those tables, a set of recurring templates composed from the fragments, and
per-day job lists mixing recurring instances with ad-hoc one-offs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.common.hashing import stable_unit_float
from repro.common.rng import RngFactory
from repro.data.catalog import Catalog
from repro.data.schema import Column, DataType, TableDef
from repro.data.statistics import TableStats
from repro.workload.templates import (
    FragmentSpec,
    JobSpec,
    TemplateSpec,
    UnaryOpSpec,
    table_name_for_day,
)

#: Columns shared by every synthetic input table; generic analytics schema.
_SYNTH_COLUMNS = tuple(
    Column(name, dtype)
    for name, dtype in [
        ("jk_l", DataType.BIGINT),
        ("jk_r", DataType.BIGINT),
        ("ts", DataType.DATE),
        ("v0", DataType.FLOAT),
        ("v1", DataType.FLOAT),
        ("payload", DataType.STRING),
    ]
)

_FILTER_COLUMNS = ("ts", "v0", "v1")
_AGG_KEYS = (("jk_l",), ("jk_r",), ("jk_l", "v0"))

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def _alpha_suffix(index: int) -> str:
    """0 -> 'a', 25 -> 'z', 26 -> 'aa', ... (digit-free table suffixes)."""
    if index < 0:
        raise ValueError("index must be >= 0")
    out = []
    index += 1
    while index > 0:
        index, rem = divmod(index - 1, 26)
        out.append(_ALPHABET[rem])
    return "".join(reversed(out))


@dataclass(frozen=True)
class ClusterWorkloadConfig:
    """Shape of one cluster's workload.

    Defaults are scaled-down but structure-preserving relative to Figure 9:
    recurring templates dominate, ad-hoc jobs are 7-20%, and fragments are
    shared widely enough that >60% of subexpressions recur across jobs.
    """

    cluster_name: str = "cluster1"
    n_tables: int = 14
    n_fragments: int = 30
    n_templates: int = 60
    recurring_instances_per_day: tuple[int, int] = (1, 3)  # uniform range
    adhoc_fraction: float = 0.12
    min_rows: float = 2e5
    max_rows: float = 4e8
    partition_mb: float = 256.0
    #: Daily probability that a recurring template slot is replaced by new
    #: business logic.  This is what makes specialized-model coverage decay
    #: over long test windows (Figure 14) — recurring jobs represent
    #: long-term logic but are not immortal.
    template_churn_rate: float = 0.02
    seed: int = 0


class WorkloadGenerator:
    """Deterministic generator for one cluster's workload."""

    def __init__(self, config: ClusterWorkloadConfig) -> None:
        self.config = config
        self._rngs = RngFactory(config.seed).spawn("workload", config.cluster_name)
        self._template_cache: dict[tuple[int, int], TemplateSpec] = {}
        self._catalog_cache: dict[int, Catalog] = {}
        self.base_tables = self._make_base_tables()
        self.fragments = self._make_fragments()
        self.templates = self._make_templates()

    # ------------------------------------------------------------------ #
    # Base tables and catalogs
    # ------------------------------------------------------------------ #

    def _make_base_tables(self) -> list[tuple[str, float, float]]:
        """(base name, base row count, row width) per input table.

        Names are alphabetic (``src_a``, ``src_b``, ...) so that input-name
        normalization — which strips digits/dates — keeps distinct tables
        distinct while mapping the same table's daily instances together.
        """
        rng = self._rngs.child("tables")
        tables: list[tuple[str, float, float]] = []
        for i in range(self.config.n_tables):
            log_lo, log_hi = math.log(self.config.min_rows), math.log(self.config.max_rows)
            rows = float(np.exp(rng.uniform(log_lo, log_hi)))
            width = float(rng.uniform(48, 360))
            tables.append(
                (f"{self.config.cluster_name}_src_{_alpha_suffix(i)}", rows, width)
            )
        return tables

    def day_scale(self, base_table: str, day: int) -> float:
        """Deterministic day-over-day input drift (trend + daily wobble).

        A slow sinusoidal trend (weekly traffic patterns) on top of daily
        log-normal wobble — producing the up-to-2x input swings of Figure 2.
        """
        phase = stable_unit_float("phase", base_table) * 2.0 * math.pi
        trend = math.exp(0.35 * math.sin(2.0 * math.pi * day / 7.0 + phase))
        wobble_u = stable_unit_float("wobble", base_table, day)
        wobble = math.exp(0.20 * (2.0 * wobble_u - 1.0))
        return trend * wobble

    def catalog_for_day(self, day: int) -> Catalog:
        """The cluster's inputs as of ``day`` (dated names, drifted sizes).

        Memoized per day: every ``run_job`` call of a day shares one catalog
        instead of rebuilding identical table definitions and statistics.
        """
        cached = self._catalog_cache.get(day)
        if cached is not None:
            return cached
        catalog = Catalog(name=f"{self.config.cluster_name}-day{day}")
        for base, rows, width in self.base_tables:
            dated = table_name_for_day(base, day)
            row_count = rows * self.day_scale(base, day)
            partitions = max(
                1, int(row_count * width / (self.config.partition_mb * 1024 * 1024))
            )
            table = TableDef(dated, _SYNTH_COLUMNS)
            catalog.add_table(
                table,
                TableStats(
                    row_count=row_count,
                    avg_row_bytes=width,
                    partition_count=min(partitions, 500),
                ),
            )
        self._catalog_cache[day] = catalog
        return catalog

    # ------------------------------------------------------------------ #
    # Fragments and templates
    # ------------------------------------------------------------------ #

    def _random_unary_chain(
        self, rng: np.random.Generator, allow_heavy_udf: bool
    ) -> tuple[UnaryOpSpec, ...]:
        ops: list[UnaryOpSpec] = []
        for _ in range(rng.integers(1, 4)):
            roll = rng.random()
            if roll < 0.55:
                column = _FILTER_COLUMNS[rng.integers(0, len(_FILTER_COLUMNS))]
                sel = float(np.exp(rng.uniform(np.log(0.01), np.log(0.9))))
                ops.append(("filter", column, sel))
            elif roll < 0.80:
                udf = f"udf{rng.integers(0, 12)}" if allow_heavy_udf else "udf_light"
                factor = float(np.exp(rng.uniform(np.log(0.2), np.log(2.5))))
                width = float(rng.uniform(0.5, 1.6))
                ops.append(("process", udf, factor, width))
            else:
                ops.append(("project", float(rng.uniform(0.4, 0.95))))
        return tuple(ops)

    def _make_fragments(self) -> list[FragmentSpec]:
        rng = self._rngs.child("fragments")
        fragments = []
        for i in range(self.config.n_fragments):
            base_table = self.base_tables[rng.integers(0, len(self.base_tables))][0]
            fragments.append(
                FragmentSpec(
                    fragment_id=i,
                    base_table=base_table,
                    ops=self._random_unary_chain(rng, allow_heavy_udf=True),
                )
            )
        return fragments

    def _template_from_rng(
        self, template_id: str, rng: np.random.Generator, is_adhoc: bool
    ) -> TemplateSpec:
        """Compose a template; ad-hoc templates reuse pool fragments ~60%."""

        def pick_fragment() -> FragmentSpec:
            reuse = (not is_adhoc) or rng.random() < 0.6
            if reuse:
                return self.fragments[rng.integers(0, len(self.fragments))]
            base_table = self.base_tables[rng.integers(0, len(self.base_tables))][0]
            return FragmentSpec(
                fragment_id=int(rng.integers(10_000, 1_000_000)),
                base_table=base_table,
                ops=self._random_unary_chain(rng, allow_heavy_udf=True),
            )

        n_fragments = 2 if rng.random() < 0.6 else 1
        fragments = tuple(pick_fragment() for _ in range(n_fragments))
        post_ops = self._random_unary_chain(rng, allow_heavy_udf=False)
        aggregate = rng.random() < 0.75
        agg_keys = _AGG_KEYS[rng.integers(0, len(_AGG_KEYS))] if aggregate else ()
        return TemplateSpec(
            template_id=template_id,
            fragments=fragments,
            join_fanout=float(np.exp(rng.uniform(np.log(0.05), np.log(2.0)))),
            post_ops=post_ops,
            aggregate_keys=agg_keys,
            group_count_exp=float(rng.uniform(0.35, 0.8)),
            topk=int(rng.integers(10, 1000)) if (aggregate and rng.random() < 0.3) else None,
            is_adhoc=is_adhoc,
        )

    def _make_templates(self) -> list[TemplateSpec]:
        """Day-1 template set (version 0 of every slot)."""
        return [self._template_for_slot(i, 0) for i in range(self.config.n_templates)]

    def _template_for_slot(self, slot: int, version: int) -> TemplateSpec:
        key = (slot, version)
        cached = self._template_cache.get(key)
        if cached is None:
            rng = self._rngs.child("template", slot, version)
            template_id = f"{self.config.cluster_name}_t{slot:04d}v{version}"
            cached = self._template_from_rng(template_id, rng, False)
            self._template_cache[key] = cached
        return cached

    def template_version(self, slot: int, day: int) -> int:
        """How many times slot ``slot`` has churned by ``day`` (cumulative)."""
        rate = self.config.template_churn_rate
        if rate <= 0.0:
            return 0
        return sum(
            1
            for k in range(2, day + 1)
            if stable_unit_float(
                "template-churn", self.config.seed, self.config.cluster_name, slot, k
            )
            < rate
        )

    def templates_for_day(self, day: int) -> list[TemplateSpec]:
        """The recurring template set active on ``day`` (with churn applied)."""
        return [
            self._template_for_slot(slot, self.template_version(slot, day))
            for slot in range(self.config.n_templates)
        ]

    # ------------------------------------------------------------------ #
    # Daily job lists
    # ------------------------------------------------------------------ #

    def jobs_for_day(self, day: int) -> list[JobSpec]:
        """Recurring instances plus ad-hoc one-offs for one day."""
        rng = self._rngs.child("jobs", day)
        jobs: list[JobSpec] = []
        lo, hi = self.config.recurring_instances_per_day
        for template in self.templates_for_day(day):
            instances = int(rng.integers(lo, hi + 1))
            for k in range(instances):
                job_id = f"{template.template_id}_d{day:03d}_i{k}"
                jobs.append(
                    JobSpec(
                        job_id=job_id,
                        template=template,
                        day=day,
                        instance_seed=int(rng.integers(0, 2**62)),
                    )
                )
        n_adhoc = int(round(len(jobs) * self.config.adhoc_fraction / (1 - self.config.adhoc_fraction)))
        for k in range(n_adhoc):
            template = self._template_from_rng(
                f"{self.config.cluster_name}_adhoc_d{day:03d}_{k}",
                self._rngs.child("adhoc", day, k),
                is_adhoc=True,
            )
            jobs.append(
                JobSpec(
                    job_id=f"{template.template_id}_i0",
                    template=template,
                    day=day,
                    instance_seed=int(rng.integers(0, 2**62)),
                )
            )
        return jobs

    def recurring_template_count(self) -> int:
        return len(self.templates)
