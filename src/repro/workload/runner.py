"""Workload runner: optimize and execute jobs, collecting the run log.

This is the reproduction's stand-in for a production cluster's day: every
job is planned (default cost model + default partition heuristics, like the
logs Cleo trains from), executed on the simulator, and instrumented into a
:class:`~repro.execution.runtime_log.RunLog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cardinality.estimator import CardinalityEstimator, EstimatorConfig
from repro.cost.default_model import DefaultCostModel
from repro.cost.interface import CostModel
from repro.execution.ground_truth import GroundTruthParams
from repro.execution.hardware import DEFAULT_CLUSTERS, ClusterSpec
from repro.execution.runtime_log import RunLog
from repro.execution.simulator import ExecutionSimulator
from repro.optimizer.planner import PlannedJob, PlannerConfig, QueryPlanner
from repro.plan.physical import PhysicalOp
from repro.workload.generator import ClusterWorkloadConfig, WorkloadGenerator
from repro.workload.templates import JobSpec, instantiate


@dataclass
class WorkloadRunner:
    """Runs one cluster's workload through planner + simulator."""

    cluster: ClusterSpec
    seed: int = 0
    ground_truth: GroundTruthParams | None = None
    estimator_config: EstimatorConfig | None = None
    planner_config: PlannerConfig | None = None
    cost_model: CostModel | None = None
    keep_plans: bool = False
    plans: dict[str, PhysicalOp] = field(default_factory=dict)

    #: Natural allocation wobble recorded in production logs; this is what
    #: gives the learned models within-template partition-count signal.
    DEFAULT_PARTITION_JITTER = 0.35

    def __post_init__(self) -> None:
        self.simulator = ExecutionSimulator(
            self.cluster, params=self.ground_truth, seed=self.seed
        )
        self._estimator = CardinalityEstimator(self.estimator_config)
        self._cost_model = self.cost_model or DefaultCostModel()
        config = self.planner_config or PlannerConfig(
            partition_jitter=self.DEFAULT_PARTITION_JITTER
        )
        self._planner = QueryPlanner(self._cost_model, self._estimator, config)

    def run_job(self, job: JobSpec, generator: WorkloadGenerator, log: RunLog) -> PlannedJob:
        """Plan + execute one job, appending its record to ``log``."""
        catalog = generator.catalog_for_day(job.day)
        logical = instantiate(job, catalog)
        self._planner.jitter_salt = job.job_id
        planned = self._planner.plan(logical)
        result = self.simulator.run_job(
            planned.plan,
            job_id=job.job_id,
            template_id=job.template.template_id,
            day=job.day,
            is_adhoc=job.is_adhoc,
            estimator=self._estimator,
        )
        log.append(result.record)
        if self.keep_plans:
            self.plans[job.job_id] = planned.plan
        return planned

    def run_days(self, generator: WorkloadGenerator, days: list[int] | range) -> RunLog:
        """Run every job of the given days; returns the combined log."""
        log = RunLog()
        for day in days:
            catalog = generator.catalog_for_day(day)
            for job in generator.jobs_for_day(day):
                logical = instantiate(job, catalog)
                self._planner.jitter_salt = job.job_id
                planned = self._planner.plan(logical)
                result = self.simulator.run_job(
                    planned.plan,
                    job_id=job.job_id,
                    template_id=job.template.template_id,
                    day=job.day,
                    is_adhoc=job.is_adhoc,
                    estimator=self._estimator,
                )
                log.append(result.record)
                if self.keep_plans:
                    self.plans[job.job_id] = planned.plan
        return log


def run_multi_cluster_workload(
    days: range | list[int],
    clusters: tuple[ClusterSpec, ...] = DEFAULT_CLUSTERS,
    base_config: ClusterWorkloadConfig | None = None,
    scale: float = 1.0,
    seed: int = 0,
) -> dict[str, RunLog]:
    """Run a Figure 9-shaped workload: several clusters, several days.

    ``scale`` shrinks or grows the per-cluster template counts uniformly so
    tests and benchmarks can dial cost.  Cluster 1 is the largest and
    cluster 4 the smallest, matching the paper's load spread.
    """
    relative_size = {"cluster1": 1.0, "cluster2": 0.75, "cluster3": 0.55, "cluster4": 0.35}
    logs: dict[str, RunLog] = {}
    for i, cluster in enumerate(clusters):
        size = relative_size.get(cluster.name, 0.5) * scale
        config = ClusterWorkloadConfig(
            cluster_name=cluster.name,
            n_tables=max(4, int(14 * size)),
            n_fragments=max(6, int(30 * size)),
            n_templates=max(8, int(60 * size)),
            adhoc_fraction=0.07 + 0.13 * ((i * 7919) % 10) / 10.0,
            seed=seed + i,
        )
        generator = WorkloadGenerator(config)
        runner = WorkloadRunner(cluster=cluster, seed=seed + i)
        logs[cluster.name] = runner.run_days(generator, days)
    return logs
