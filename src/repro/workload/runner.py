"""Workload runner: optimize and execute jobs, collecting the run log.

This is the reproduction's stand-in for a production cluster's day: every
job is planned (default cost model + default partition heuristics, like the
logs Cleo trains from), executed on the simulator, and instrumented into a
:class:`~repro.execution.runtime_log.RunLog`.

Two execution paths produce bit-identical logs:

* :meth:`WorkloadRunner.run_days` — the batched engine: planning replayed
  over a per-``(template_id, day)`` skeleton cache
  (:class:`~repro.optimizer.skeleton.SkeletonPlanner`), ground truth and
  features vectorized per job, rows ingested straight into the columnar
  :class:`~repro.features.table.FeatureTable`
  (:class:`~repro.execution.batch.BatchedExecutionEngine`).  Falls back to
  the scalar path for non-stock configurations (cost models without
  ``supports_replay_costing``, partition strategies).
* :meth:`WorkloadRunner.run_days_reference` — the retained scalar path:
  one :meth:`run_job` per job through planner and simulator, appending one
  record at a time.  It backs the parity tests and the
  ``BENCH_workload.json`` baseline.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.cardinality.estimator import CardinalityEstimator, EstimatorConfig
from repro.cost.default_model import DefaultCostModel
from repro.cost.interface import CostModel
from repro.execution.batch import BatchedExecutionEngine
from repro.execution.ground_truth import GroundTruthParams
from repro.execution.hardware import DEFAULT_CLUSTERS, ClusterSpec
from repro.execution.runtime_log import RunLog
from repro.execution.simulator import ExecutionSimulator
from repro.optimizer.planner import PlannedJob, PlannerConfig, QueryPlanner
from repro.optimizer.skeleton import SkeletonPlanner, materialize, supports_fast_path
from repro.plan.physical import PhysicalOp
from repro.workload.generator import ClusterWorkloadConfig, WorkloadGenerator
from repro.workload.templates import JobSpec, instantiate


@dataclass
class WorkloadRunner:
    """Runs one cluster's workload through planner + simulator."""

    cluster: ClusterSpec
    seed: int = 0
    ground_truth: GroundTruthParams | None = None
    estimator_config: EstimatorConfig | None = None
    planner_config: PlannerConfig | None = None
    cost_model: CostModel | None = None
    keep_plans: bool = False
    plans: dict[str, PhysicalOp] = field(default_factory=dict)

    #: Which path the most recent ``run_days`` call took: ``True`` for the
    #: batched engine, ``False`` for the scalar fallback, ``None`` before
    #: any call.  Surfaced so a config tweak that silently costs the
    #: batched speedup is observable (a ``RuntimeWarning`` also fires).
    last_run_used_batched: bool | None = field(default=None, init=False)

    #: Natural allocation wobble recorded in production logs; this is what
    #: gives the learned models within-template partition-count signal.
    DEFAULT_PARTITION_JITTER = 0.35

    def __post_init__(self) -> None:
        self.simulator = ExecutionSimulator(
            self.cluster, params=self.ground_truth, seed=self.seed
        )
        self._estimator = CardinalityEstimator(self.estimator_config)
        self._cost_model = self.cost_model or DefaultCostModel()
        config = self.planner_config or PlannerConfig(
            partition_jitter=self.DEFAULT_PARTITION_JITTER
        )
        self._planner = QueryPlanner(self._cost_model, self._estimator, config)
        self._skeleton_planner: SkeletonPlanner | None = None
        self._engine: BatchedExecutionEngine | None = None
        self._batched_generator: WorkloadGenerator | None = None

    def run_job(self, job: JobSpec, generator: WorkloadGenerator, log: RunLog) -> PlannedJob:
        """Plan + execute one job through the scalar path, appending to ``log``."""
        catalog = generator.catalog_for_day(job.day)
        logical = instantiate(job, catalog)
        self._planner.jitter_salt = job.job_id
        planned = self._planner.plan(logical)
        result = self.simulator.run_job(
            planned.plan,
            job_id=job.job_id,
            template_id=job.template.template_id,
            day=job.day,
            is_adhoc=job.is_adhoc,
            estimator=self._estimator,
        )
        log.append(result.record)
        if self.keep_plans:
            self.plans[job.job_id] = planned.plan
        return planned

    # ------------------------------------------------------------------ #
    # Multi-day execution
    # ------------------------------------------------------------------ #

    def run_days(self, generator: WorkloadGenerator, days: list[int] | range) -> RunLog:
        """Run every job of the given days; returns the combined log.

        Uses the batched engine when the configuration is stock (the common
        case); otherwise falls back to the scalar reference path.  Both
        produce bit-identical logs.  The path taken is recorded on
        :attr:`last_run_used_batched`, and the fallback additionally emits
        a ``RuntimeWarning`` — a config tweak that silently costs the
        batched engine's speedup should never go unnoticed.
        """
        if self.batched_supported:
            self.last_run_used_batched = True
            return self._run_days_batched(generator, days)
        self.last_run_used_batched = False
        warnings.warn(
            "WorkloadRunner.run_days: configuration is not supported by the "
            "batched engine (cost model without replay costing, estimator "
            "subclass, or partition strategy); falling back to the scalar "
            "reference path",
            RuntimeWarning,
            stacklevel=2,
        )
        return self.run_days_reference(generator, days)

    def run_days_reference(
        self, generator: WorkloadGenerator, days: list[int] | range
    ) -> RunLog:
        """The retained scalar path: one ``run_job`` per job, per-record
        appends.  Backs parity tests and the workload-benchmark baseline."""
        log = RunLog()
        for day in days:
            for job in generator.jobs_for_day(day):
                self.run_job(job, generator, log)
        return log

    @property
    def batched_supported(self) -> bool:
        """True when the batched engine is exact for this configuration."""
        return supports_fast_path(
            self._cost_model, self._estimator, self._planner.config
        )

    def _run_days_batched(
        self, generator: WorkloadGenerator, days: list[int] | range
    ) -> RunLog:
        if self._skeleton_planner is None or self._batched_generator is not generator:
            # Skeleton and shape-statics caches are keyed by template_id,
            # which is only unique within one generator — a different
            # generator (even another instance with the same config) gets
            # fresh caches so stale structures are never served.
            self._skeleton_planner = SkeletonPlanner(
                self._cost_model, self._estimator, self._planner.config
            )
            self._engine = BatchedExecutionEngine(self.simulator)
            self._batched_generator = generator
        skeleton_planner = self._skeleton_planner
        engine = self._engine
        assert engine is not None
        engine.begin()
        for day in days:
            catalog = generator.catalog_for_day(day)
            for job in generator.jobs_for_day(day):
                logical = instantiate(job, catalog)
                win = skeleton_planner.plan_job(
                    job.template.template_id, job.day, logical, job.job_id
                )
                plan = materialize(win) if self.keep_plans else None
                statics = engine.statics_for(
                    win, skeleton_planner.last_choice_key, plan
                )
                engine.add_job(
                    win,
                    statics,
                    job.job_id,
                    job.template.template_id,
                    job.day,
                    job.is_adhoc,
                )
                if plan is not None:
                    self.plans[job.job_id] = plan
        records, table = engine.finish()
        return RunLog.from_columnar(records, table)


def multi_cluster_setup(
    clusters: tuple[ClusterSpec, ...] = DEFAULT_CLUSTERS,
    scale: float = 1.0,
    seed: int = 0,
) -> list[tuple[WorkloadGenerator, WorkloadRunner]]:
    """The Figure 9-shaped per-cluster (generator, runner) pairs.

    Factored out of :func:`run_multi_cluster_workload` so the workload
    benchmark can reuse the exact same configuration with persistent
    runners (warm skeleton/shape caches across repeats).
    """
    relative_size = {"cluster1": 1.0, "cluster2": 0.75, "cluster3": 0.55, "cluster4": 0.35}
    pairs: list[tuple[WorkloadGenerator, WorkloadRunner]] = []
    for i, cluster in enumerate(clusters):
        size = relative_size.get(cluster.name, 0.5) * scale
        config = ClusterWorkloadConfig(
            cluster_name=cluster.name,
            n_tables=max(4, int(14 * size)),
            n_fragments=max(6, int(30 * size)),
            n_templates=max(8, int(60 * size)),
            adhoc_fraction=0.07 + 0.13 * ((i * 7919) % 10) / 10.0,
            seed=seed + i,
        )
        pairs.append(
            (WorkloadGenerator(config), WorkloadRunner(cluster=cluster, seed=seed + i))
        )
    return pairs


def run_multi_cluster_workload(
    days: range | list[int],
    clusters: tuple[ClusterSpec, ...] = DEFAULT_CLUSTERS,
    scale: float = 1.0,
    seed: int = 0,
    reference: bool = False,
) -> dict[str, RunLog]:
    """Run a Figure 9-shaped workload: several clusters, several days.

    ``scale`` shrinks or grows the per-cluster template counts uniformly so
    tests and benchmarks can dial cost.  Cluster 1 is the largest and
    cluster 4 the smallest, matching the paper's load spread.  With
    ``reference=True`` the retained scalar path runs instead of the batched
    engine (same log, bit for bit).
    """
    logs: dict[str, RunLog] = {}
    for generator, runner in multi_cluster_setup(clusters, scale=scale, seed=seed):
        run = runner.run_days_reference if reference else runner.run_days
        logs[runner.cluster.name] = run(generator, days)
    return logs
