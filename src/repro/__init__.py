"""Cleo: learned cost models for big data query processing (SIGMOD 2020).

A from-scratch reproduction of Siddiqui et al., "Cost Models for Big Data
Query Processing: Learning, Retrofitting, and Our Findings".  The package
is organized as the paper's system plus every substrate it depends on:

* :mod:`repro.serving` — the public façade: :class:`CleoService` trains,
  persists, versions, and serves the models with batched prediction and a
  signature-keyed prediction cache (the paper's Section 5.1 serving story);
* :mod:`repro.core` — the contribution: per-template learned cost models,
  the combined meta-ensemble, the training feedback loop, and the
  optimizer-facing cost model;
* :mod:`repro.optimizer` — a Cascades-style planner with the paper's
  resource-aware extensions (resource context, partition exploration);
* :mod:`repro.execution` — the SCOPE-like distributed execution simulator
  that stands in for production clusters;
* :mod:`repro.workload` — production-shaped synthetic workloads and the
  full TPC-H query suite;
* :mod:`repro.ml`, :mod:`repro.features`, :mod:`repro.cardinality`,
  :mod:`repro.cost`, :mod:`repro.plan`, :mod:`repro.data` — supporting
  substrates (all numpy-only, no sklearn);
* :mod:`repro.applications` — the Section 6.7 use cases on the trained
  models: performance prediction, SLO allocation, scheduling, progress
  estimation, what-if analysis;
* :mod:`repro.experiments` — one module per table/figure of the paper,
  plus ablations; :mod:`repro.cli` drives everything from the shell.

Quickstart::

    from repro import CleoService
    from repro.execution.hardware import ClusterSpec
    from repro.workload import ClusterWorkloadConfig, WorkloadGenerator, WorkloadRunner

    generator = WorkloadGenerator(ClusterWorkloadConfig(cluster_name="c1"))
    runner = WorkloadRunner(cluster=ClusterSpec(name="c1"))
    log = runner.run_days(generator, days=range(1, 4))

    service = CleoService.train(log)          # feedback loop -> ready models
    test = log.filter(days=[3])
    costs = service.predict_records(test.operator_records())  # batched
    print(service.stats().describe())         # model calls, cache hit rate

    service.save("cleo_models.json")          # text-file serving (Sec. 5.1)
    service = CleoService.load("cleo_models.json")

The same service backs the optimizer (``service.cost_model()`` is a
drop-in :class:`~repro.cost.interface.CostModel`), the applications, and
the CLI (``python -m repro train|evaluate|predict``).
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving import CleoService, PredictionRequest

__all__ = ["CleoService", "PredictionRequest", "__version__"]

__version__ = "1.2.0"

_LAZY_EXPORTS = ("CleoService", "PredictionRequest")


def __getattr__(name: str):
    """Lazily resolve the serving exports (PEP 562).

    Keeps ``import repro`` (and therefore ``python -m repro --help``) free
    of the numpy/model stack while still supporting
    ``from repro import CleoService``.
    """
    if name in _LAZY_EXPORTS:
        from repro import serving

        return getattr(serving, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
