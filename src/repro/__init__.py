"""Cleo: learned cost models for big data query processing (SIGMOD 2020).

A from-scratch reproduction of Siddiqui et al., "Cost Models for Big Data
Query Processing: Learning, Retrofitting, and Our Findings".  The package
is organized as the paper's system plus every substrate it depends on:

* :mod:`repro.core` — the contribution: per-template learned cost models,
  the combined meta-ensemble, the training feedback loop, and the
  optimizer-facing cost model;
* :mod:`repro.optimizer` — a Cascades-style planner with the paper's
  resource-aware extensions (resource context, partition exploration);
* :mod:`repro.execution` — the SCOPE-like distributed execution simulator
  that stands in for production clusters;
* :mod:`repro.workload` — production-shaped synthetic workloads and the
  full TPC-H query suite;
* :mod:`repro.ml`, :mod:`repro.features`, :mod:`repro.cardinality`,
  :mod:`repro.cost`, :mod:`repro.plan`, :mod:`repro.data` — supporting
  substrates (all numpy-only, no sklearn);
* :mod:`repro.applications` — the Section 6.7 use cases on the trained
  models: performance prediction, SLO allocation, scheduling, progress
  estimation, what-if analysis;
* :mod:`repro.experiments` — one module per table/figure of the paper,
  plus ablations; :mod:`repro.cli` drives everything from the shell.

Quickstart::

    from repro.workload import ClusterWorkloadConfig, WorkloadGenerator, WorkloadRunner
    from repro.execution.hardware import ClusterSpec
    from repro.core import CleoTrainer

    generator = WorkloadGenerator(ClusterWorkloadConfig(cluster_name="c1"))
    runner = WorkloadRunner(cluster=ClusterSpec(name="c1"))
    log = runner.run_days(generator, days=range(1, 4))
    predictor = CleoTrainer().train(log)
"""

__version__ = "1.1.0"
