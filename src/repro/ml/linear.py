"""Linear models: elastic net (coordinate descent), ridge, and robust fits.

Elastic net is the workhorse of the paper's individual cost models
(Section 3.4): an L1+L2-regularized linear regression that performs automatic
feature selection per subgraph template, resists over-fitting on the many
templates with <30 training samples, and stays interpretable (weighted sums
of statistics, like hand-written cost models).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_fit_inputs, check_predict_input
from repro.ml.preprocessing import StandardScaler


def _soft_threshold(value: float, threshold: float) -> float:
    if value > threshold:
        return value - threshold
    if value < -threshold:
        return value + threshold
    return 0.0


class ElasticNet:
    """L1+L2 regularized linear regression fitted by coordinate descent.

    Follows the sklearn objective::

        1/(2n) ||y - Xw - b||^2 + alpha * l1_ratio * ||w||_1
            + 0.5 * alpha * (1 - l1_ratio) * ||w||^2

    Features are standardized internally; ``coefficients_raw`` maps weights
    back to the raw feature space (needed by the resource-exploration
    analytics, Section 5.3).
    """

    def __init__(
        self,
        alpha: float = 1.0,
        l1_ratio: float = 0.5,
        fit_intercept: bool = True,
        max_iter: int = 300,
        tol: float = 1e-6,
    ) -> None:
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        if not 0.0 <= l1_ratio <= 1.0:
            raise ValueError("l1_ratio must be in [0, 1]")
        self.alpha = alpha
        self.l1_ratio = l1_ratio
        self.fit_intercept = fit_intercept
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0
        self._scaler = StandardScaler()

    def reset(self) -> None:
        self.coef_ = None
        self.intercept_ = 0.0
        self.n_iter_ = 0
        self._scaler.reset()

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "ElasticNet":
        features, targets = check_fit_inputs(features, targets)
        x = self._scaler.fit_transform(features)
        n_samples, n_features = x.shape

        y_mean = float(targets.mean()) if self.fit_intercept else 0.0
        y = targets - y_mean

        weights = np.zeros(n_features)
        residual = y.copy()
        l1_penalty = self.alpha * self.l1_ratio
        l2_penalty = self.alpha * (1.0 - self.l1_ratio)
        col_sq = (x * x).sum(axis=0) / n_samples + l2_penalty

        for iteration in range(self.max_iter):
            max_delta = 0.0
            for j in range(n_features):
                if col_sq[j] < 1e-15:
                    continue
                old = weights[j]
                if old != 0.0:
                    residual += x[:, j] * old
                rho = float(x[:, j] @ residual) / n_samples
                new = _soft_threshold(rho, l1_penalty) / col_sq[j]
                if new != 0.0:
                    residual -= x[:, j] * new
                weights[j] = new
                max_delta = max(max_delta, abs(new - old))
            self.n_iter_ = iteration + 1
            if max_delta < self.tol:
                break

        self.coef_ = weights
        self.intercept_ = y_mean
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        features = check_predict_input(features, self.coef_ is not None)
        x = self._scaler.transform(features)
        assert self.coef_ is not None
        return x @ self.coef_ + self.intercept_

    def coefficients_raw(self) -> tuple[np.ndarray, float]:
        """(weights, intercept) expressed over raw (unstandardized) features.

        ``predict(X) == X @ weights + intercept`` for any raw X.
        """
        if self.coef_ is None:
            raise RuntimeError("coefficients_raw() before fit()")
        scale = self._scaler.scale_
        mean = self._scaler.mean_
        assert scale is not None and mean is not None
        raw = self.coef_ / scale
        intercept = self.intercept_ - float((self.coef_ * mean / scale).sum())
        return raw, intercept

    @property
    def selected_features(self) -> np.ndarray:
        """Indices of features with non-zero weight (elastic-net selection)."""
        if self.coef_ is None:
            raise RuntimeError("selected_features before fit()")
        return np.flatnonzero(np.abs(self.coef_) > 1e-12)


class LinearRegressor:
    """Ridge regression via the normal equations (used as a building block)."""

    def __init__(self, ridge: float = 1e-6, fit_intercept: bool = True) -> None:
        self.ridge = ridge
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self._scaler = StandardScaler()

    def reset(self) -> None:
        self.coef_ = None
        self.intercept_ = 0.0
        self._scaler.reset()

    def fit(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "LinearRegressor":
        features, targets = check_fit_inputs(features, targets)
        x = self._scaler.fit_transform(features)
        if self.fit_intercept:
            x = np.hstack([x, np.ones((x.shape[0], 1))])
        if sample_weight is not None:
            sw = np.sqrt(np.asarray(sample_weight, dtype=float))
            x = x * sw[:, None]
            targets = targets * sw
        gram = x.T @ x + self.ridge * np.eye(x.shape[1])
        coef = np.linalg.solve(gram, x.T @ targets)
        if self.fit_intercept:
            self.coef_, self.intercept_ = coef[:-1], float(coef[-1])
        else:
            self.coef_, self.intercept_ = coef, 0.0
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        features = check_predict_input(features, self.coef_ is not None)
        x = self._scaler.transform(features)
        assert self.coef_ is not None
        return x @ self.coef_ + self.intercept_


class LeastAbsoluteRegressor:
    """Linear fit minimizing mean absolute error, via IRLS.

    Reweighted ridge solves with weights ``1 / max(|residual|, delta)`` — the
    classic iteratively-reweighted scheme for the L1 loss.
    """

    def __init__(self, iterations: int = 30, delta: float = 1e-6, ridge: float = 1e-6) -> None:
        self.iterations = iterations
        self.delta = delta
        self.ridge = ridge
        self._inner = LinearRegressor(ridge=ridge)

    def reset(self) -> None:
        self._inner.reset()

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "LeastAbsoluteRegressor":
        features, targets = check_fit_inputs(features, targets)
        self._inner.fit(features, targets)
        for _ in range(self.iterations):
            residual = np.abs(targets - self._inner.predict(features))
            weights = 1.0 / np.maximum(residual, self.delta)
            weights /= weights.mean()
            self._inner.fit(features, targets, sample_weight=weights)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self._inner.predict(features)


class MedianAbsoluteRegressor:
    """Approximate minimizer of *median* absolute error (least trimmed fit).

    Repeatedly refits on the half of the samples with the smallest current
    residuals.  This is the honest reproduction of the paper's "median
    absolute error" loss row in Table 1 — an estimator that concentrates on
    the central samples and generalizes poorly under multiplicative noise.
    """

    def __init__(self, iterations: int = 10, keep_fraction: float = 0.55) -> None:
        if not 0.1 < keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in (0.1, 1]")
        self.iterations = iterations
        self.keep_fraction = keep_fraction
        self._inner = LinearRegressor()

    def reset(self) -> None:
        self._inner.reset()

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "MedianAbsoluteRegressor":
        features, targets = check_fit_inputs(features, targets)
        self._inner.fit(features, targets)
        keep = max(3, int(len(targets) * self.keep_fraction))
        for _ in range(self.iterations):
            residual = np.abs(targets - self._inner.predict(features))
            order = np.argsort(residual)[:keep]
            if len(order) < 2:
                break
            self._inner.fit(features[order], targets[order])
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self._inner.predict(features)
