"""Regression loss functions (Table 1 of the paper).

The paper compares four losses for training cost models and selects
mean-squared *log* error: it optimizes relative error (robust to the huge
dynamic range of job runtimes), penalizes under-estimation more than
over-estimation, and keeps predictions positive.
"""

from __future__ import annotations

import numpy as np


def mean_squared_error(predicted: np.ndarray, actual: np.ndarray) -> float:
    predicted, actual = _canon(predicted, actual)
    return float(np.mean((predicted - actual) ** 2))


def mean_absolute_error(predicted: np.ndarray, actual: np.ndarray) -> float:
    predicted, actual = _canon(predicted, actual)
    return float(np.mean(np.abs(predicted - actual)))


def median_absolute_error(predicted: np.ndarray, actual: np.ndarray) -> float:
    predicted, actual = _canon(predicted, actual)
    return float(np.median(np.abs(predicted - actual)))


def mean_squared_log_error(predicted: np.ndarray, actual: np.ndarray) -> float:
    """The paper's loss: mean of (log(p+1) - log(a+1))^2.

    Negative predictions are clipped at 0 before the log, mirroring how the
    trained models always emit non-negative costs.
    """
    predicted, actual = _canon(predicted, actual)
    if (actual < 0).any():
        raise ValueError("MSLE requires non-negative actuals")
    predicted = np.clip(predicted, 0.0, None)
    return float(np.mean((np.log1p(predicted) - np.log1p(actual)) ** 2))


def _canon(predicted: np.ndarray, actual: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    predicted = np.asarray(predicted, dtype=float).ravel()
    actual = np.asarray(actual, dtype=float).ravel()
    if predicted.shape != actual.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs {actual.shape}")
    return predicted, actual


#: Registry used by the Table 1 experiment.
LOSS_FUNCTIONS = {
    "median_absolute_error": median_absolute_error,
    "mean_absolute_error": mean_absolute_error,
    "mean_squared_error": mean_squared_error,
    "mean_squared_log_error": mean_squared_log_error,
}
