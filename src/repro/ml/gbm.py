"""FastTree regression: gradient-boosted regression trees (MART).

The paper's combined model uses Microsoft.ML's FastTree — "a variant of the
gradient boosted regression trees that uses an efficient implementation of
the MART gradient boosting algorithm.  It builds a series of regression
trees, with each successive tree fitting on the residual of trees that
precede it" (Section 4.3) — configured with at most 20 trees, mean-squared
log error, and a 0.9 sub-sampling rate.

We reproduce that: least-squares MART on log-transformed targets (equivalent
to the MSLE objective), stochastic row subsampling per tree, and shrinkage.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_fit_inputs, check_predict_input
from repro.ml.tree import DecisionTreeRegressor


class FastTreeRegressor:
    """MART: stagewise least-squares boosting of shallow CART trees.

    Args:
        n_estimators: number of boosting stages (paper: 20).
        max_depth: depth of each tree (paper: 5).
        learning_rate: shrinkage applied to each stage.
        subsample: row sampling rate per stage (paper: 0.9).
        log_target: fit in log1p space so squared error becomes MSLE —
            the paper's loss; predictions are mapped back with expm1.
        seed: RNG seed for subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: int = 5,
        learning_rate: float = 0.3,
        subsample: float = 0.9,
        min_samples_leaf: int = 2,
        log_target: bool = True,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.subsample = subsample
        self.min_samples_leaf = min_samples_leaf
        self.log_target = log_target
        self.seed = seed
        self.base_prediction_: float = 0.0
        self.trees_: list[DecisionTreeRegressor] = []

    def reset(self) -> None:
        self.trees_ = []
        self.base_prediction_ = 0.0

    def _transform(self, targets: np.ndarray) -> np.ndarray:
        if not self.log_target:
            return targets
        if (targets < 0).any():
            raise ValueError("log_target requires non-negative targets")
        return np.log1p(targets)

    def _inverse(self, predictions: np.ndarray) -> np.ndarray:
        if not self.log_target:
            return predictions
        return np.expm1(np.clip(predictions, None, 60.0))

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "FastTreeRegressor":
        features, targets = check_fit_inputs(features, targets)
        y = self._transform(targets)
        rng = np.random.default_rng(self.seed)
        n_samples = features.shape[0]

        self.base_prediction_ = float(y.mean())
        current = np.full(n_samples, self.base_prediction_)
        self.trees_ = []
        for stage in range(self.n_estimators):
            residual = y - current
            if self.subsample < 1.0:
                take = max(2, int(round(n_samples * self.subsample)))
                idx = rng.choice(n_samples, size=take, replace=False)
            else:
                idx = np.arange(n_samples)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                seed=self.seed * 7_919 + stage,
            )
            tree.fit(features[idx], residual[idx])
            update = tree.predict(features)
            current = current + self.learning_rate * update
            self.trees_.append(tree)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        features = check_predict_input(features, bool(self.trees_))
        out = np.full(features.shape[0], self.base_prediction_)
        for tree in self.trees_:
            out += self.learning_rate * tree.predict(features)
        return self._inverse(out)

    def staged_predict(self, features: np.ndarray) -> list[np.ndarray]:
        """Predictions after each boosting stage (for learning curves)."""
        features = check_predict_input(features, bool(self.trees_))
        out = np.full(features.shape[0], self.base_prediction_)
        stages = []
        for tree in self.trees_:
            out = out + self.learning_rate * tree.predict(features)
            stages.append(self._inverse(out.copy()))
        return stages
