"""FastTree regression: gradient-boosted regression trees (MART).

The paper's combined model uses Microsoft.ML's FastTree — "a variant of the
gradient boosted regression trees that uses an efficient implementation of
the MART gradient boosting algorithm.  It builds a series of regression
trees, with each successive tree fitting on the residual of trees that
precede it" (Section 4.3) — configured with at most 20 trees, mean-squared
log error, and a 0.9 sub-sampling rate.

We reproduce that: least-squares MART on log-transformed targets (equivalent
to the MSLE objective), stochastic row subsampling per tree, and shrinkage.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_fit_inputs, check_predict_input
from repro.ml.tree import _NO_FEATURE, DecisionTreeRegressor


class _FlatForest:
    """All trees' node arrays concatenated, traversed simultaneously.

    Child indices are rebased onto the concatenated layout and **leaves
    point at themselves**, so stepping needs no leaf mask: every (tree, row)
    pair advances every level, with finished pairs orbiting in place.  The
    walk runs over an ``(n_trees, n)`` node-index matrix for
    ``max(actual tree depth) - 1`` levels — exactly the steps after which
    every per-tree walk has reached its leaf.  Routing decisions and leaf
    values are the exact scalars the per-tree walk computes, so prediction
    through the flat layout is bitwise identical to looping over the trees —
    only the Python/numpy dispatch count changes (one pass per *depth
    level* instead of per tree per level).
    """

    __slots__ = ("children", "safe_feature", "threshold", "value", "roots", "steps")

    def __init__(self, trees: list[DecisionTreeRegressor]) -> None:
        safe_features, thresholds, values, children = [], [], [], []
        roots: list[int] = []
        offset = 0
        steps = 0
        for tree in trees:
            feature, threshold, left, right, value = tree.node_arrays()
            count = feature.size
            roots.append(offset)
            is_leaf = feature == _NO_FEATURE
            # Leaves compare feature 0 against threshold 0.0 and then step
            # to themselves either way, so no masking is needed.
            safe_features.append(np.maximum(feature, 0))
            thresholds.append(threshold)
            values.append(value)
            own = np.arange(offset, offset + count, dtype=np.int64)
            rebased_left = np.where(is_leaf, own, left + offset)
            rebased_right = np.where(is_leaf, own, right + offset)
            # Interleaved (right, left) pairs: child = pairs[2*node + go_left],
            # so the routing bool indexes the pair directly (no inversion).
            children.append(
                np.stack([rebased_right, rebased_left], axis=1).reshape(-1)
            )
            offset += count
            steps = max(steps, tree.tree_depth - 1)
        # All index arrays stay intp-sized: numpy silently converts narrower
        # index dtypes on every fancy index, which would dominate the walk.
        self.safe_feature = np.concatenate(safe_features).astype(np.int64)
        self.threshold = np.concatenate(thresholds)
        self.value = np.concatenate(values)
        self.children = np.concatenate(children).astype(np.int64)
        self.roots = np.asarray(roots, dtype=np.int64)
        self.steps = steps

    @property
    def n_trees(self) -> int:
        return int(self.roots.size)

    def leaf_values(self, features: np.ndarray) -> np.ndarray:
        """Each row's leaf value in each tree, as an ``(n_trees, n)`` matrix."""
        n, width = features.shape
        flat = np.ascontiguousarray(features).ravel()
        column_base = np.arange(n, dtype=np.int64) * width
        nodes = np.repeat(self.roots[:, None], n, axis=1)  # (n_trees, n)
        for _ in range(self.steps):
            # Same per-node comparison as DecisionTreeRegressor.predict:
            # raw value strictly below the bin edge routes left.
            go_left = (
                flat[self.safe_feature[nodes] + column_base] < self.threshold[nodes]
            )
            nodes = self.children[2 * nodes + go_left]
        return self.value[nodes]


class FastTreeRegressor:
    """MART: stagewise least-squares boosting of shallow CART trees.

    Args:
        n_estimators: number of boosting stages (paper: 20).
        max_depth: depth of each tree (paper: 5).
        learning_rate: shrinkage applied to each stage.
        subsample: row sampling rate per stage (paper: 0.9).
        log_target: fit in log1p space so squared error becomes MSLE —
            the paper's loss; predictions are mapped back with expm1.
        seed: RNG seed for subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: int = 5,
        learning_rate: float = 0.3,
        subsample: float = 0.9,
        min_samples_leaf: int = 2,
        log_target: bool = True,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.subsample = subsample
        self.min_samples_leaf = min_samples_leaf
        self.log_target = log_target
        self.seed = seed
        self.base_prediction_: float = 0.0
        self.trees_: list[DecisionTreeRegressor] = []
        self._flat: _FlatForest | None = None

    def reset(self) -> None:
        self.trees_ = []
        self.base_prediction_ = 0.0
        self._flat = None

    def _transform(self, targets: np.ndarray) -> np.ndarray:
        if not self.log_target:
            return targets
        if (targets < 0).any():
            raise ValueError("log_target requires non-negative targets")
        return np.log1p(targets)

    def _inverse(self, predictions: np.ndarray) -> np.ndarray:
        if not self.log_target:
            return predictions
        return np.expm1(np.clip(predictions, None, 60.0))

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "FastTreeRegressor":
        features, targets = check_fit_inputs(features, targets)
        y = self._transform(targets)
        # repro: allow(wallclock-rng) -- self.seed is an explicit int hyperparameter; subsample draws must replay the historical stream so saved FastTree stages stay bitwise-reproducible
        rng = np.random.default_rng(self.seed)
        n_samples = features.shape[0]

        self.base_prediction_ = float(y.mean())
        current = np.full(n_samples, self.base_prediction_)
        self.trees_ = []
        for stage in range(self.n_estimators):
            residual = y - current
            if self.subsample < 1.0:
                take = max(2, int(round(n_samples * self.subsample)))
                idx = rng.choice(n_samples, size=take, replace=False)
            else:
                idx = np.arange(n_samples)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                seed=self.seed * 7_919 + stage,
            )
            tree.fit(features[idx], residual[idx])
            update = tree.predict(features)
            current = current + self.learning_rate * update
            self.trees_.append(tree)
        self._flat = None  # ensemble changed: flat layout recompiles lazily
        return self

    def _flat_forest(self) -> _FlatForest:
        """The packed node layout, compiled lazily after each (re)fit."""
        if self._flat is None or self._flat.n_trees != len(self.trees_):
            self._flat = _FlatForest(self.trees_)
        return self._flat

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predictions via the flat ensemble: all trees walked at once.

        Bitwise identical to :meth:`predict_reference` — leaf routing and
        values are the same scalars, and the per-tree contributions are
        accumulated in stage order, exactly like the sequential loop.
        """
        features = check_predict_input(features, bool(self.trees_))
        leaves = self._flat_forest().leaf_values(features)
        out = np.full(features.shape[0], self.base_prediction_)
        for stage in range(leaves.shape[0]):
            out += self.learning_rate * leaves[stage]
        return self._inverse(out)

    def predict_reference(self, features: np.ndarray) -> np.ndarray:
        """The retained tree-at-a-time path (benchmark/parity reference)."""
        features = check_predict_input(features, bool(self.trees_))
        out = np.full(features.shape[0], self.base_prediction_)
        for tree in self.trees_:
            out += self.learning_rate * tree.predict(features)
        return self._inverse(out)

    def staged_predict(self, features: np.ndarray) -> list[np.ndarray]:
        """Predictions after each boosting stage (for learning curves)."""
        features = check_predict_input(features, bool(self.trees_))
        out = np.full(features.shape[0], self.base_prediction_)
        stages = []
        for tree in self.trees_:
            out = out + self.learning_rate * tree.predict(features)
            stages.append(self._inverse(out.copy()))
        return stages
