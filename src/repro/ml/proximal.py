"""Elastic net with mean-squared-log-error loss (proximal Adam).

The paper's individual cost models are linear in the derived features but
trained with MSLE: ``sum (log(p+1) - log(a+1))^2`` where ``p = w.x + b`` is
the *raw-space* prediction (Section 3.2).  Squared error in log space makes
the fit scale-free and robust to runtime outliers, while the raw-space
linear form keeps predictions extrapolating linearly (no exponential
blow-up on inputs larger than anything in training) and exposes the
``theta_p/P + theta_c*P`` structure that the analytical partition
exploration reads off the coefficients (Section 5.3).

The objective is optimized with Adam on standardized features plus a
proximal (soft-threshold) step for the L1 term; the L2 term enters the
gradient directly.

**Batched training.**  The feedback loop fits thousands of small per-
signature models; running one Python/numpy optimization loop per model is
dispatch-bound.  :func:`fit_elastic_nets` therefore stacks many same-shaped
fits into a single Adam loop over segmented arrays.  Every reduction is
expressed with primitives whose result is independent of how fits are
batched — per-row multiply-sums and ``np.add.reduceat`` segment sums, whose
within-segment accumulation depends only on the segment's own slice — and
single-model :meth:`ElasticNetMSLE.fit` runs the same core with one
segment, so batched and one-at-a-time training produce bitwise-identical
coefficients.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_fit_inputs, check_predict_input
from repro.ml.preprocessing import StandardScaler

_P_FLOOR = 1e-6  # predictions are clamped here inside the log


def _segment_sum(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Per-segment sums along axis 0 (sequential within each segment)."""
    return np.add.reduceat(values, starts, axis=0)


def _adam_msle_batched(
    x: np.ndarray,
    y_log: np.ndarray,
    starts: np.ndarray,
    lengths: np.ndarray,
    *,
    learning_rate: float,
    max_iter: int,
    tol: float,
    l1: float,
    l2: float,
    nonneg_indices: tuple[int, ...],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fit ``m`` independent MSLE elastic nets in one Adam loop.

    ``x`` is the (N, d) stack of all models' standardized training rows,
    grouped contiguously; segment ``g`` is ``x[starts[g]:starts[g]+
    lengths[g]]``.  Each model follows exactly the update sequence it would
    follow alone (converged models are frozen, not dropped), so results do
    not depend on which models share a batch.

    Returns per-model ``(weights (m, d), bias (m,), n_iter (m,))``.
    """
    n_rows, n_features = x.shape
    m = len(starts)

    out_weights = np.zeros((m, n_features))
    out_bias = np.zeros(m)
    out_iter = np.zeros(m, dtype=np.int64)

    # Live state: models still optimizing.  Converged models are written to
    # the output arrays with the weights of their final update — exactly as
    # if they had exited their own loop — and their rows are periodically
    # compacted away; segment math is per-model, so dropping finished
    # segments cannot perturb the survivors.
    model_ids = np.arange(m)
    lengths = np.asarray(lengths, dtype=np.int64)
    lengths_f = lengths.astype(float)
    seg_id = np.repeat(np.arange(m), lengths)
    n_of_row = lengths_f[seg_id]

    weights = np.zeros((m, n_features))
    y_log_mean = _segment_sum(y_log, starts) / lengths_f
    bias = np.exp(y_log_mean) - 1.0  # geometric-mean start

    m_w = np.zeros((m, n_features))
    v_w = np.zeros((m, n_features))
    m_b = np.zeros(m)
    v_b = np.zeros(m)
    beta1, beta2, eps = 0.9, 0.999, 1e-8
    previous_loss = np.full(m, np.inf)
    starts = np.asarray(starts, dtype=np.int64)

    for step in range(1, max_iter + 1):
        # MSLE term: loss and gradients, per segment.  The zero-slope region
        # below the floor still receives a push because pred is clamped,
        # keeping the optimization live there.
        raw = (x * weights[seg_id]).sum(axis=1) + bias[seg_id]
        pred = np.maximum(raw, _P_FLOOR)
        diff = np.log1p(pred) - y_log
        loss = _segment_sum(diff * diff, starts) / lengths_f
        dpred = 2.0 * diff / (1.0 + pred) / n_of_row
        grad_w = _segment_sum(x * dpred[:, None], starts)
        grad_b = _segment_sum(dpred, starts)
        grad_w = grad_w + l2 * weights

        m_w = beta1 * m_w + (1 - beta1) * grad_w
        v_w = beta2 * v_w + (1 - beta2) * grad_w * grad_w
        m_b = beta1 * m_b + (1 - beta1) * grad_b
        v_b = beta2 * v_b + (1 - beta2) * grad_b * grad_b
        lr_t = learning_rate * np.sqrt(1 - beta2**step) / (1 - beta1**step)
        weights = weights - lr_t * m_w / (np.sqrt(v_w) + eps)
        bias = bias - lr_t * m_b / (np.sqrt(v_b) + eps)
        # Proximal step for L1 (soft threshold scaled by the step size).
        if l1 > 0:
            shrink = lr_t * l1
            weights = np.sign(weights) * np.maximum(np.abs(weights) - shrink, 0.0)
        # Projection for sign-constrained coefficients.  Standardization
        # preserves signs (scales are positive), so clamping the
        # standardized weight clamps the raw-space weight too.
        if nonneg_indices:
            idx = list(nonneg_indices)
            weights[:, idx] = np.maximum(weights[:, idx], 0.0)

        converged = np.abs(previous_loss - loss) < tol
        previous_loss = loss
        done = converged | (step == max_iter)
        if done.any():
            finished = model_ids[done]
            out_weights[finished] = weights[done]
            out_bias[finished] = bias[done]
            out_iter[finished] = step
            if done.all():
                return out_weights, out_bias, out_iter
            # Compact the live stack down to unconverged segments.
            keep = ~done
            row_keep = np.repeat(keep, lengths)
            x = x[row_keep]
            y_log = y_log[row_keep]
            model_ids = model_ids[keep]
            lengths = lengths[keep]
            lengths_f = lengths.astype(float)
            starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
            seg_id = np.repeat(np.arange(len(lengths)), lengths)
            n_of_row = lengths_f[seg_id]
            weights = weights[keep]
            bias = bias[keep]
            m_w = m_w[keep]
            v_w = v_w[keep]
            m_b = m_b[keep]
            v_b = v_b[keep]
            previous_loss = previous_loss[keep]

    return out_weights, out_bias, out_iter


class ElasticNetMSLE:
    """L1+L2-regularized linear regression under the MSLE loss.

    Objective (standardized features)::

        mean((log1p(max(Xw + b, 0)) - log1p(y))^2)
            + alpha * l1_ratio * ||w||_1 + 0.5 * alpha * (1-l1_ratio) * ||w||^2

    The target is internally scaled by its geometric mean so that ``alpha``
    means the same thing for millisecond operators and hour-long stages.
    """

    def __init__(
        self,
        alpha: float = 0.01,
        l1_ratio: float = 0.5,
        learning_rate: float = 0.05,
        max_iter: int = 400,
        tol: float = 1e-7,
        nonneg_indices: tuple[int, ...] = (),
    ) -> None:
        """``nonneg_indices`` pins those coefficients to be >= 0 in *raw*
        feature space — used for physically monotone features (per-partition
        work, partition-count overhead) whose sign determines how the model
        extrapolates far outside the training range of P."""
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        if not 0.0 <= l1_ratio <= 1.0:
            raise ValueError("l1_ratio must be in [0, 1]")
        self.alpha = alpha
        self.l1_ratio = l1_ratio
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.tol = tol
        self.nonneg_indices = tuple(nonneg_indices)
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0
        self._scaler = StandardScaler()
        self._y_scale = 1.0

    def reset(self) -> None:
        self.coef_ = None
        self.intercept_ = 0.0
        self.n_iter_ = 0
        self._scaler.reset()
        self._y_scale = 1.0

    # ------------------------------------------------------------------ #

    def _hyperparams(self) -> tuple:
        """The knobs that must agree for nets to share a batched fit."""
        return (
            self.alpha,
            self.l1_ratio,
            self.learning_rate,
            self.max_iter,
            self.tol,
            self.nonneg_indices,
        )

    def _prepare(
        self, features: np.ndarray, targets: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Standardize features, scale the target; returns (x, log1p(y)).

        The target is scaled to a O(1) magnitude (geometric mean) so the
        penalty strength is comparable across templates.
        """
        x = self._scaler.fit_transform(features)
        # repro: allow(float-reduction) -- shared verbatim by scalar fit() and batched fit_elastic_nets (both call _prepare per segment on the same rows), so the reduction's grouping is independent of how many nets are batched
        self._y_scale = float(np.exp(np.mean(np.log1p(targets)))) or 1.0
        return x, np.log1p(targets / self._y_scale)

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "ElasticNetMSLE":
        features, targets = check_fit_inputs(features, targets)
        if (targets < 0).any():
            raise ValueError("MSLE requires non-negative targets")
        x, y_log = self._prepare(features, targets)
        weights, bias, n_iter = _adam_msle_batched(
            x,
            y_log,
            starts=np.zeros(1, dtype=np.int64),
            lengths=np.array([len(y_log)], dtype=np.int64),
            learning_rate=self.learning_rate,
            max_iter=self.max_iter,
            tol=self.tol,
            l1=self.alpha * self.l1_ratio,
            l2=self.alpha * (1.0 - self.l1_ratio),
            nonneg_indices=self.nonneg_indices,
        )
        self.coef_ = weights[0]
        self.intercept_ = float(bias[0])
        self.n_iter_ = int(n_iter[0])
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        features = check_predict_input(features, self.coef_ is not None)
        x = self._scaler.transform(features)
        assert self.coef_ is not None
        # Per-row multiply-sum instead of a BLAS matvec: BLAS kernels pick
        # different summation orders for different batch shapes, which would
        # make batched serving drift from one-at-a-time prediction by ulps.
        # This form is bitwise batch-size-invariant.
        raw = ((x * self.coef_).sum(axis=1) + self.intercept_) * self._y_scale
        return np.maximum(raw, 0.0)

    def packed_parameters(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, float, float]:
        """``(scaler mean, scaler scale, coef, intercept, y_scale)``.

        Everything the packed inference bank needs to replay
        :meth:`predict` on pre-built feature rows without touching this
        object: standardize with mean/scale, row multiply-sum against the
        standardized coefficients, add the intercept, rescale by the target
        scale, clamp at zero.
        """
        if self.coef_ is None:
            raise RuntimeError("packed_parameters() before fit()")
        mean = self._scaler.mean_
        scale = self._scaler.scale_
        assert mean is not None and scale is not None
        return mean, scale, self.coef_, self.intercept_, self._y_scale

    def coefficients_raw(self) -> tuple[np.ndarray, float]:
        """(weights, intercept) over raw features and the raw target scale.

        ``predict(X) == max(X @ weights + intercept, 0)`` for any raw X —
        the linear form read by the analytical partition exploration.
        """
        if self.coef_ is None:
            raise RuntimeError("coefficients_raw() before fit()")
        scale = self._scaler.scale_
        mean = self._scaler.mean_
        assert scale is not None and mean is not None
        raw = self.coef_ / scale * self._y_scale
        intercept = (
            # repro: allow(float-reduction) -- 1-D pairwise sum over the model's fixed coefficient width; the packed bank replays the identical lane as a row of its (m, d).sum(axis=1), so the order matches bitwise (pinned by test_batched_resource_profiles)
            self.intercept_ - float((self.coef_ * mean / scale).sum())
        ) * self._y_scale
        return raw, intercept

    @property
    def selected_features(self) -> np.ndarray:
        """Indices with non-zero weight (the elastic net's feature selection)."""
        if self.coef_ is None:
            raise RuntimeError("selected_features before fit()")
        return np.flatnonzero(np.abs(self.coef_) > 1e-12)


def fit_elastic_nets(
    nets: list[ElasticNetMSLE],
    features: np.ndarray,
    targets: np.ndarray,
    starts: np.ndarray,
    lengths: np.ndarray,
) -> None:
    """Fit many elastic nets (one per contiguous row segment) in one pass.

    ``features``/``targets`` stack every net's training set; net ``g`` owns
    rows ``starts[g] : starts[g] + lengths[g]``.  All nets must share
    hyperparameters (they do within one model kind).  Results are bitwise
    identical to calling ``nets[g].fit(features[seg], targets[seg])`` per
    net — the standardization is still computed per segment and the shared
    Adam loop freezes each net at its own convergence step.
    """
    if not nets:
        return
    if len(nets) != len(starts) or len(nets) != len(lengths):
        raise ValueError("nets, starts, and lengths must align")
    reference = nets[0]._hyperparams()
    for net in nets[1:]:
        if net._hyperparams() != reference:
            raise ValueError("batched nets must share hyperparameters")
    features, targets = check_fit_inputs(features, targets)
    if (targets < 0).any():
        raise ValueError("MSLE requires non-negative targets")

    x_parts: list[np.ndarray] = []
    y_parts: list[np.ndarray] = []
    for net, start, length in zip(nets, starts, lengths):
        stop = start + length
        x_g, y_log_g = net._prepare(features[start:stop], targets[start:stop])
        x_parts.append(x_g)
        y_parts.append(y_log_g)

    # The per-segment slices above re-pack the rows contiguously, so the
    # optimizer's segment offsets are recomputed from the lengths — the
    # caller's `starts` may legitimately contain gaps (unused rows).
    lengths = np.asarray(lengths, dtype=np.int64)
    packed_starts = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(lengths)[:-1])
    )
    weights, bias, n_iter = _adam_msle_batched(
        np.concatenate(x_parts, axis=0),
        np.concatenate(y_parts),
        starts=packed_starts,
        lengths=lengths,
        learning_rate=reference[2],
        max_iter=reference[3],
        tol=reference[4],
        l1=nets[0].alpha * nets[0].l1_ratio,
        l2=nets[0].alpha * (1.0 - nets[0].l1_ratio),
        nonneg_indices=nets[0].nonneg_indices,
    )
    for g, net in enumerate(nets):
        net.coef_ = weights[g]
        net.intercept_ = float(bias[g])
        net.n_iter_ = int(n_iter[g])
