"""Elastic net with mean-squared-log-error loss (proximal Adam).

The paper's individual cost models are linear in the derived features but
trained with MSLE: ``sum (log(p+1) - log(a+1))^2`` where ``p = w.x + b`` is
the *raw-space* prediction (Section 3.2).  Squared error in log space makes
the fit scale-free and robust to runtime outliers, while the raw-space
linear form keeps predictions extrapolating linearly (no exponential
blow-up on inputs larger than anything in training) and exposes the
``theta_p/P + theta_c*P`` structure that the analytical partition
exploration reads off the coefficients (Section 5.3).

The objective is optimized with Adam on standardized features plus a
proximal (soft-threshold) step for the L1 term; the L2 term enters the
gradient directly.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_fit_inputs, check_predict_input
from repro.ml.preprocessing import StandardScaler

_P_FLOOR = 1e-6  # predictions are clamped here inside the log


class ElasticNetMSLE:
    """L1+L2-regularized linear regression under the MSLE loss.

    Objective (standardized features)::

        mean((log1p(max(Xw + b, 0)) - log1p(y))^2)
            + alpha * l1_ratio * ||w||_1 + 0.5 * alpha * (1-l1_ratio) * ||w||^2

    The target is internally scaled by its geometric mean so that ``alpha``
    means the same thing for millisecond operators and hour-long stages.
    """

    def __init__(
        self,
        alpha: float = 0.01,
        l1_ratio: float = 0.5,
        learning_rate: float = 0.05,
        max_iter: int = 400,
        tol: float = 1e-7,
        nonneg_indices: tuple[int, ...] = (),
    ) -> None:
        """``nonneg_indices`` pins those coefficients to be >= 0 in *raw*
        feature space — used for physically monotone features (per-partition
        work, partition-count overhead) whose sign determines how the model
        extrapolates far outside the training range of P."""
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        if not 0.0 <= l1_ratio <= 1.0:
            raise ValueError("l1_ratio must be in [0, 1]")
        self.alpha = alpha
        self.l1_ratio = l1_ratio
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.tol = tol
        self.nonneg_indices = tuple(nonneg_indices)
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0
        self._scaler = StandardScaler()
        self._y_scale = 1.0

    def reset(self) -> None:
        self.coef_ = None
        self.intercept_ = 0.0
        self.n_iter_ = 0
        self._scaler.reset()
        self._y_scale = 1.0

    # ------------------------------------------------------------------ #

    def _loss_grad(
        self, x: np.ndarray, y_log: np.ndarray, weights: np.ndarray, bias: float
    ) -> tuple[float, np.ndarray, float]:
        """Loss and gradients of the (unpenalized) MSLE term."""
        raw = x @ weights + bias
        pred = np.maximum(raw, _P_FLOOR)
        diff = np.log1p(pred) - y_log
        loss = float(np.mean(diff * diff))
        # d loss / d raw: zero-slope region below the floor still receives a
        # push because pred is clamped, keeping the optimization live there.
        dpred = 2.0 * diff / (1.0 + pred) / len(y_log)
        grad_w = x.T @ dpred
        grad_b = float(dpred.sum())
        return loss, grad_w, grad_b

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "ElasticNetMSLE":
        features, targets = check_fit_inputs(features, targets)
        if (targets < 0).any():
            raise ValueError("MSLE requires non-negative targets")
        x = self._scaler.fit_transform(features)
        # Scale the target to a O(1) magnitude (geometric mean) so the
        # penalty strength is comparable across templates.
        self._y_scale = float(np.exp(np.mean(np.log1p(targets)))) or 1.0
        y = targets / self._y_scale
        y_log = np.log1p(y)

        n_features = x.shape[1]
        weights = np.zeros(n_features)
        bias = float(np.exp(y_log.mean()) - 1.0)  # geometric-mean start
        l1 = self.alpha * self.l1_ratio
        l2 = self.alpha * (1.0 - self.l1_ratio)

        m_w = np.zeros(n_features)
        v_w = np.zeros(n_features)
        m_b = 0.0
        v_b = 0.0
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        previous_loss = np.inf

        for step in range(1, self.max_iter + 1):
            loss, grad_w, grad_b = self._loss_grad(x, y_log, weights, bias)
            grad_w = grad_w + l2 * weights

            m_w = beta1 * m_w + (1 - beta1) * grad_w
            v_w = beta2 * v_w + (1 - beta2) * grad_w * grad_w
            m_b = beta1 * m_b + (1 - beta1) * grad_b
            v_b = beta2 * v_b + (1 - beta2) * grad_b * grad_b
            lr_t = self.learning_rate * np.sqrt(1 - beta2**step) / (1 - beta1**step)
            weights = weights - lr_t * m_w / (np.sqrt(v_w) + eps)
            bias -= float(lr_t * m_b / (np.sqrt(v_b) + eps))
            # Proximal step for L1 (soft threshold scaled by the step size).
            if l1 > 0:
                shrink = lr_t * l1
                weights = np.sign(weights) * np.maximum(np.abs(weights) - shrink, 0.0)
            # Projection for sign-constrained coefficients.  Standardization
            # preserves signs (scales are positive), so clamping the
            # standardized weight clamps the raw-space weight too.
            if self.nonneg_indices:
                for idx in self.nonneg_indices:
                    if weights[idx] < 0.0:
                        weights[idx] = 0.0

            self.n_iter_ = step
            if abs(previous_loss - loss) < self.tol:
                break
            previous_loss = loss

        self.coef_ = weights
        self.intercept_ = bias
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        features = check_predict_input(features, self.coef_ is not None)
        x = self._scaler.transform(features)
        assert self.coef_ is not None
        # Per-row multiply-sum instead of a BLAS matvec: BLAS kernels pick
        # different summation orders for different batch shapes, which would
        # make batched serving drift from one-at-a-time prediction by ulps.
        # This form is bitwise batch-size-invariant.
        raw = ((x * self.coef_).sum(axis=1) + self.intercept_) * self._y_scale
        return np.maximum(raw, 0.0)

    def coefficients_raw(self) -> tuple[np.ndarray, float]:
        """(weights, intercept) over raw features and the raw target scale.

        ``predict(X) == max(X @ weights + intercept, 0)`` for any raw X —
        the linear form read by the analytical partition exploration.
        """
        if self.coef_ is None:
            raise RuntimeError("coefficients_raw() before fit()")
        scale = self._scaler.scale_
        mean = self._scaler.mean_
        assert scale is not None and mean is not None
        raw = self.coef_ / scale * self._y_scale
        intercept = (
            self.intercept_ - float((self.coef_ * mean / scale).sum())
        ) * self._y_scale
        return raw, intercept

    @property
    def selected_features(self) -> np.ndarray:
        """Indices with non-zero weight (the elastic net's feature selection)."""
        if self.coef_ is None:
            raise RuntimeError("selected_features before fit()")
        return np.flatnonzero(np.abs(self.coef_) > 1e-12)
