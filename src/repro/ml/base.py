"""Common regressor interface for the from-scratch ML library."""

from __future__ import annotations

import copy
from typing import Protocol, runtime_checkable

import numpy as np

from repro.common.errors import ModelNotTrainedError


@runtime_checkable
class Regressor(Protocol):
    """Anything with sklearn-style ``fit`` / ``predict``."""

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "Regressor": ...

    def predict(self, features: np.ndarray) -> np.ndarray: ...


def clone_regressor(model: Regressor) -> Regressor:
    """Unfitted deep copy of a model (hyperparameters preserved)."""
    cloned = copy.deepcopy(model)
    reset = getattr(cloned, "reset", None)
    if callable(reset):
        reset()
    return cloned


def check_fit_inputs(features: np.ndarray, targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate and canonicalize (X, y) for fitting."""
    features = np.asarray(features, dtype=float)
    targets = np.asarray(targets, dtype=float).ravel()
    if features.ndim != 2:
        raise ValueError(f"features must be 2-D, got shape {features.shape}")
    if features.shape[0] != targets.shape[0]:
        raise ValueError(
            f"features rows ({features.shape[0]}) != targets ({targets.shape[0]})"
        )
    if features.shape[0] == 0:
        raise ValueError("cannot fit on an empty dataset")
    if not np.isfinite(features).all():
        raise ValueError("features contain NaN or infinity")
    if not np.isfinite(targets).all():
        raise ValueError("targets contain NaN or infinity")
    return features, targets


def check_predict_input(features: np.ndarray, fitted: bool) -> np.ndarray:
    """Validate X for prediction against fit state."""
    if not fitted:
        raise ModelNotTrainedError("predict() called before fit()")
    features = np.asarray(features, dtype=float)
    if features.ndim == 1:
        features = features.reshape(1, -1)
    return features
