"""Multilayer perceptron regressor (numpy, Adam optimizer).

Matches the paper's neural-network configuration (Section 3.4): a 3-layer
network (input -> hidden(30) -> output) with ReLU activations, the Adam
solver, and L2 regularization of 0.005.  Features and targets are
standardized internally; the target may additionally be log-transformed so
the squared loss matches the paper's MSLE.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_fit_inputs, check_predict_input
from repro.ml.preprocessing import StandardScaler


class MLPRegressor:
    """Small fully-connected regressor trained with Adam."""

    def __init__(
        self,
        hidden_size: int = 30,
        epochs: int = 300,
        batch_size: int = 64,
        learning_rate: float = 1e-3,
        l2: float = 0.005,
        log_target: bool = True,
        seed: int = 0,
    ) -> None:
        if hidden_size < 1:
            raise ValueError("hidden_size must be >= 1")
        self.hidden_size = hidden_size
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.l2 = l2
        self.log_target = log_target
        self.seed = seed
        self._params: dict[str, np.ndarray] | None = None
        self._scaler = StandardScaler()
        self._y_mean = 0.0
        self._y_std = 1.0

    def reset(self) -> None:
        self._params = None
        self._scaler.reset()
        self._y_mean, self._y_std = 0.0, 1.0

    # ------------------------------------------------------------------ #

    def _forward(
        self, x: np.ndarray, params: dict[str, np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        hidden = np.maximum(x @ params["w1"] + params["b1"], 0.0)
        out = hidden @ params["w2"] + params["b2"]
        return hidden, out.ravel()

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "MLPRegressor":
        features, targets = check_fit_inputs(features, targets)
        x = self._scaler.fit_transform(features)
        y = np.log1p(np.clip(targets, 0.0, None)) if self.log_target else targets
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        y = (y - self._y_mean) / self._y_std

        # repro: allow(wallclock-rng) -- self.seed is an explicit int hyperparameter; weight-init draws must replay the historical stream so saved MLPs stay bitwise-reproducible
        rng = np.random.default_rng(self.seed)
        n_samples, n_features = x.shape
        h = self.hidden_size
        params = {
            "w1": rng.normal(0.0, np.sqrt(2.0 / n_features), size=(n_features, h)),
            "b1": np.zeros(h),
            "w2": rng.normal(0.0, np.sqrt(2.0 / h), size=(h, 1)),
            "b2": np.zeros(1),
        }
        moments = {k: (np.zeros_like(v), np.zeros_like(v)) for k, v in params.items()}
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        batch = min(self.batch_size, n_samples)

        for _ in range(self.epochs):
            order = rng.permutation(n_samples)
            for start in range(0, n_samples, batch):
                idx = order[start : start + batch]
                xb, yb = x[idx], y[idx]
                hidden, pred = self._forward(xb, params)
                error = (pred - yb) / len(idx)

                grad_w2 = hidden.T @ error[:, None] + self.l2 * params["w2"]
                grad_b2 = np.array([error.sum()])
                back = (error[:, None] @ params["w2"].T) * (hidden > 0)
                grad_w1 = xb.T @ back + self.l2 * params["w1"]
                grad_b1 = back.sum(axis=0)
                grads = {"w1": grad_w1, "b1": grad_b1, "w2": grad_w2, "b2": grad_b2}

                step += 1
                for key, grad in grads.items():
                    m, v = moments[key]
                    m[:] = beta1 * m + (1 - beta1) * grad
                    v[:] = beta2 * v + (1 - beta2) * grad * grad
                    m_hat = m / (1 - beta1**step)
                    v_hat = v / (1 - beta2**step)
                    params[key] = params[key] - self.learning_rate * m_hat / (
                        np.sqrt(v_hat) + eps
                    )
        self._params = params
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        features = check_predict_input(features, self._params is not None)
        x = self._scaler.transform(features)
        assert self._params is not None
        _, out = self._forward(x, self._params)
        out = out * self._y_std + self._y_mean
        if self.log_target:
            out = np.expm1(np.clip(out, None, 60.0))
        return out
