"""Random forest regression (bagged CART trees).

The paper's configuration (Section 3.4): 20 trees of depth 5.  Trees are
trained on bootstrap resamples with per-split feature subsampling and their
predictions averaged.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_fit_inputs, check_predict_input
from repro.ml.tree import DecisionTreeRegressor


class RandomForestRegressor:
    """Bootstrap-aggregated decision trees."""

    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: int = 5,
        min_samples_leaf: int = 1,
        max_features: str | int | None = "sqrt",
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.trees_: list[DecisionTreeRegressor] = []

    def reset(self) -> None:
        self.trees_ = []

    def _resolve_max_features(self, n_features: int) -> int | None:
        if self.max_features is None:
            return None
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if isinstance(self.max_features, int):
            return max(1, min(self.max_features, n_features))
        raise ValueError(f"unsupported max_features: {self.max_features!r}")

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RandomForestRegressor":
        features, targets = check_fit_inputs(features, targets)
        n_samples, n_features = features.shape
        # repro: allow(wallclock-rng) -- self.seed is an explicit int hyperparameter; bootstrap draws must replay the historical stream so saved forests stay bitwise-reproducible (audited: per-tree seeds are offset by 1_000_003*t, so the bootstrap stream never collides with a tree's own stream)
        rng = np.random.default_rng(self.seed)
        max_features = self._resolve_max_features(n_features)
        self.trees_ = []
        for t in range(self.n_estimators):
            sample_idx = rng.integers(0, n_samples, size=n_samples)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                seed=self.seed * 1_000_003 + t,
            )
            tree.fit(features[sample_idx], targets[sample_idx])
            self.trees_.append(tree)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        features = check_predict_input(features, bool(self.trees_))
        out = np.zeros(features.shape[0])
        for tree in self.trees_:
            out += tree.predict(features)
        return out / len(self.trees_)
