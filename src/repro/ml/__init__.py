"""A small from-scratch ML library (numpy only).

Implements exactly the model families the paper evaluates (Section 3.4):
elastic net, decision tree, random forest, gradient-boosted trees (the
"FastTree regression" used as the combined meta-learner), and a multilayer
perceptron — plus the loss functions of Table 1 and k-fold cross-validation.

No sklearn: every algorithm here is implemented in this package so the
reproduction is self-contained.
"""

from repro.ml.base import Regressor, clone_regressor
from repro.ml.gbm import FastTreeRegressor
from repro.ml.linear import ElasticNet, LeastAbsoluteRegressor, LinearRegressor
from repro.ml.losses import (
    LOSS_FUNCTIONS,
    mean_absolute_error,
    mean_squared_error,
    mean_squared_log_error,
    median_absolute_error,
)
from repro.ml.mlp import MLPRegressor
from repro.ml.model_selection import KFold, cross_validate
from repro.ml.preprocessing import StandardScaler
from repro.ml.proximal import ElasticNetMSLE
from repro.ml.forest import RandomForestRegressor
from repro.ml.tree import DecisionTreeRegressor

__all__ = [
    "ElasticNet",
    "ElasticNetMSLE",
    "FastTreeRegressor",
    "KFold",
    "LOSS_FUNCTIONS",
    "LeastAbsoluteRegressor",
    "LinearRegressor",
    "MLPRegressor",
    "RandomForestRegressor",
    "Regressor",
    "StandardScaler",
    "DecisionTreeRegressor",
    "clone_regressor",
    "cross_validate",
    "mean_absolute_error",
    "mean_squared_error",
    "mean_squared_log_error",
    "median_absolute_error",
]
