"""Feature preprocessing: standardization.

The derived cost features span ~20 orders of magnitude (row counts to
products of row counts), so every linear model and the MLP standardize
features internally before fitting.
"""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Zero-mean unit-variance scaling with constant-column protection."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        features = np.asarray(features, dtype=float)
        self.mean_ = features.mean(axis=0)
        scale = features.std(axis=0)
        scale[scale < 1e-12] = 1.0  # constant columns pass through unscaled
        self.scale_ = scale
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler used before fit()")
        return (np.asarray(features, dtype=float) - self.mean_) / self.scale_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)

    def reset(self) -> None:
        self.mean_ = None
        self.scale_ = None
