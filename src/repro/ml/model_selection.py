"""Cross-validation utilities (the paper evaluates with 5-fold CV)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.common.stats import median_error_pct, pearson
from repro.ml.base import Regressor, clone_regressor


@dataclass(frozen=True)
class KFold:
    """Deterministic shuffled k-fold splitter."""

    n_splits: int = 5
    seed: int = 0

    def split(self, n_samples: int):
        """Yield (train_indices, test_indices) pairs."""
        if self.n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        if n_samples < self.n_splits:
            raise ValueError(
                f"need at least n_splits={self.n_splits} samples, got {n_samples}"
            )
        # repro: allow(wallclock-rng) -- KFold's seed is an explicit int hyperparameter; the shuffle must replay the historical permutation so CV folds (and every paper table built on them) stay bitwise-stable
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(n_samples)
        folds = np.array_split(order, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train, test


@dataclass(frozen=True)
class CvResult:
    """Cross-validated predictions plus the paper's summary metrics."""

    predictions: np.ndarray  # out-of-fold predictions, aligned with targets
    targets: np.ndarray

    @property
    def median_error_pct(self) -> float:
        return median_error_pct(self.predictions, self.targets)

    @property
    def pearson(self) -> float:
        return pearson(self.predictions, self.targets)


def cross_validate(
    model: Regressor,
    features: np.ndarray,
    targets: np.ndarray,
    n_splits: int = 5,
    seed: int = 0,
    target_transform: Callable[[np.ndarray], np.ndarray] | None = None,
    inverse_transform: Callable[[np.ndarray], np.ndarray] | None = None,
) -> CvResult:
    """Out-of-fold predictions for ``model`` under k-fold CV.

    ``target_transform``/``inverse_transform`` let callers fit in log space
    (the MSLE convention) while evaluating in the original space.
    """
    features = np.asarray(features, dtype=float)
    targets = np.asarray(targets, dtype=float).ravel()
    predictions = np.empty_like(targets)
    for train_idx, test_idx in KFold(n_splits=n_splits, seed=seed).split(len(targets)):
        fold_model = clone_regressor(model)
        y_train = targets[train_idx]
        if target_transform is not None:
            y_train = target_transform(y_train)
        fold_model.fit(features[train_idx], y_train)
        fold_pred = fold_model.predict(features[test_idx])
        if inverse_transform is not None:
            fold_pred = inverse_transform(fold_pred)
        predictions[test_idx] = fold_pred
    return CvResult(predictions=predictions, targets=targets)
