"""Decision tree regression (CART with histogram split finding).

Features are quantile-binned once per fit; split search per node is a
vectorized bincount over the binned codes, giving near-C performance in
numpy.  Prediction routes all rows through the node arrays iteratively, so
it is vectorized as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.base import check_fit_inputs, check_predict_input

_NO_FEATURE = -1


@dataclass
class _Nodes:
    """Flat array representation of a fitted tree."""

    feature: list[int] = field(default_factory=list)
    threshold: list[float] = field(default_factory=list)
    left: list[int] = field(default_factory=list)
    right: list[int] = field(default_factory=list)
    value: list[float] = field(default_factory=list)

    def add(self) -> int:
        self.feature.append(_NO_FEATURE)
        self.threshold.append(0.0)
        self.left.append(-1)
        self.right.append(-1)
        self.value.append(0.0)
        return len(self.feature) - 1


class DecisionTreeRegressor:
    """CART regressor minimizing within-node variance.

    Args:
        max_depth: maximum tree depth (paper: 15 standalone, 5 in ensembles).
        min_samples_leaf: minimum samples on each side of a split.
        min_samples_split: minimum samples in a node to consider splitting.
        max_bins: histogram resolution for split finding.
        max_features: number of features considered per split (None = all);
            used by the random forest.
        seed: RNG seed for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int = 15,
        min_samples_leaf: int = 1,
        min_samples_split: int = 2,
        max_bins: int = 64,
        max_features: int | None = None,
        seed: int = 0,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = max(1, min_samples_leaf)
        self.min_samples_split = max(2, min_samples_split)
        self.max_bins = max_bins
        self.max_features = max_features
        self.seed = seed
        self._nodes: _Nodes | None = None
        self._arrays: tuple[np.ndarray, ...] | None = None
        self.n_features_: int = 0

    def reset(self) -> None:
        self._nodes = None
        self._arrays = None
        self.n_features_ = 0

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "DecisionTreeRegressor":
        features, targets = check_fit_inputs(features, targets)
        n_samples, n_features = features.shape
        self.n_features_ = n_features
        # repro: allow(wallclock-rng) -- self.seed is an explicit int hyperparameter (set per tree by the forest as seed*1_000_003+t); rerouting through derive_rng would change every trained tree bitwise and break continuity with checked-in benchmarks
        rng = np.random.default_rng(self.seed)

        codes, edges = self._bin_features(features)
        nodes = _Nodes()
        self._nodes = nodes

        # Explicit stack of (node_id, sample_indices, depth).
        root = nodes.add()
        stack: list[tuple[int, np.ndarray, int]] = [(root, np.arange(n_samples), 1)]
        while stack:
            node_id, idx, depth = stack.pop()
            y_node = targets[idx]
            nodes.value[node_id] = float(y_node.mean())
            if depth >= self.max_depth or len(idx) < self.min_samples_split:
                continue
            split = self._best_split(codes, edges, targets, idx, rng)
            if split is None:
                continue
            feature_idx, bin_idx, threshold = split
            go_left = codes[idx, feature_idx] <= bin_idx
            left_idx = idx[go_left]
            right_idx = idx[~go_left]
            if len(left_idx) < self.min_samples_leaf or len(right_idx) < self.min_samples_leaf:
                continue
            nodes.feature[node_id] = feature_idx
            nodes.threshold[node_id] = threshold
            left_id = nodes.add()
            right_id = nodes.add()
            nodes.left[node_id] = left_id
            nodes.right[node_id] = right_id
            stack.append((left_id, left_idx, depth + 1))
            stack.append((right_id, right_idx, depth + 1))

        self._arrays = (
            np.asarray(nodes.feature, dtype=np.int64),
            np.asarray(nodes.threshold, dtype=float),
            np.asarray(nodes.left, dtype=np.int64),
            np.asarray(nodes.right, dtype=np.int64),
            np.asarray(nodes.value, dtype=float),
        )
        return self

    def _bin_features(self, features: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Quantile-bin each column; returns (codes matrix, bin edges)."""
        n_samples, n_features = features.shape
        codes = np.empty((n_samples, n_features), dtype=np.int32)
        edges: list[np.ndarray] = []
        quantiles = np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1]
        # One batched quantile pass over all columns (same per-column values
        # as a column-at-a-time computation; quantiles are exact order
        # statistics plus elementwise interpolation).
        all_cuts = np.quantile(features, quantiles, axis=0)
        for j in range(n_features):
            cuts = np.unique(all_cuts[:, j])
            codes[:, j] = np.searchsorted(cuts, features[:, j], side="right")
            edges.append(cuts)
        return codes, edges

    def _best_split(
        self,
        codes: np.ndarray,
        edges: list[np.ndarray],
        targets: np.ndarray,
        idx: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[int, int, float] | None:
        """Best (feature, bin, threshold) by SSE reduction, or None."""
        y = targets[idx]
        n = len(idx)
        total_sum = float(y.sum())
        total_sq = float((y * y).sum())
        total_sse = total_sq - total_sum * total_sum / n

        n_features = codes.shape[1]
        if self.max_features is not None and self.max_features < n_features:
            candidates = rng.choice(n_features, size=self.max_features, replace=False)
        else:
            candidates = np.arange(n_features)

        min_leaf = self.min_samples_leaf
        # All candidate features are scanned at once: one flat bincount for
        # counts and weighted sums, prefix sums along the bin axis, then the
        # same argmax cascade a feature-at-a-time loop would run (first-max
        # within a feature, first strictly-better feature across features),
        # so the chosen split is identical to the scalar scan's.
        n_bins_per = np.array([len(edges[j]) + 1 for j in candidates])
        width = int(n_bins_per.max())
        if width < 2:  # no feature has any cut
            return None
        m = len(candidates)
        col_codes = codes[np.ix_(idx, candidates)]
        flat = (col_codes + np.arange(m, dtype=col_codes.dtype) * width).ravel()
        counts = np.bincount(flat, minlength=m * width).reshape(m, width)
        # Row-major ravel keeps each bucket's accumulation in sample order,
        # so the weighted sums match per-feature bincounts bit for bit.
        sums = np.bincount(flat, weights=np.repeat(y, m), minlength=m * width)
        sums = sums.reshape(m, width)
        # Prefix sums over bins: split after bin b sends bins <= b left.
        left_counts = np.cumsum(counts, axis=1)[:, :-1]
        left_sums = np.cumsum(sums, axis=1)[:, :-1]
        right_counts = n - left_counts
        right_sums = total_sum - left_sums
        # Bins past a feature's real width have zero counts, so their
        # right_counts hit 0 and validity masks them out automatically.
        valid = (left_counts >= min_leaf) & (right_counts >= min_leaf)
        with np.errstate(divide="ignore", invalid="ignore"):
            gain = np.where(
                valid,
                left_sums**2 / np.maximum(left_counts, 1)
                + right_sums**2 / np.maximum(right_counts, 1),
                -np.inf,
            )
        best_bin = gain.argmax(axis=1)  # first max within each feature
        best_gain = gain[np.arange(m), best_bin]
        scores = best_gain - total_sum * total_sum / n
        pick = int(np.argmax(scores))  # first strictly-better feature wins
        if not np.isfinite(scores[pick]) or scores[pick] <= 1e-12 or total_sse <= 0:
            return None
        feature_idx = int(candidates[pick])
        bin_idx = int(best_bin[pick])
        threshold = float(edges[feature_idx][bin_idx])
        return feature_idx, bin_idx, threshold

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #

    def predict(self, features: np.ndarray) -> np.ndarray:
        features = check_predict_input(features, self._arrays is not None)
        assert self._arrays is not None
        feat, thr, left, right, value = self._arrays
        node = np.zeros(features.shape[0], dtype=np.int64)
        # Route all rows down the tree simultaneously.
        for _ in range(self.max_depth + 1):
            is_internal = feat[node] != _NO_FEATURE
            if not is_internal.any():
                break
            active = np.flatnonzero(is_internal)
            current = node[active]
            # Training routes bin-code <= b left, i.e. raw value strictly
            # below the bin edge; mirror that exactly here.
            go_left = features[active, feat[current]] < thr[current]
            node[active] = np.where(go_left, left[current], right[current])
        return value[node]

    def node_arrays(self) -> tuple[np.ndarray, ...]:
        """The fitted ``(feature, threshold, left, right, value)`` arrays.

        The flat node representation consumed by the packed ensemble —
        leaves carry ``feature == -1`` and child index ``-1``.
        """
        if self._arrays is None:
            raise RuntimeError("node_arrays() before fit()")
        return self._arrays

    @property
    def node_count(self) -> int:
        if self._arrays is None:
            return 0
        return len(self._arrays[0])

    @property
    def tree_depth(self) -> int:
        """Actual depth of the fitted tree."""
        if self._arrays is None:
            return 0
        feat, _, left, right, _ = self._arrays

        def depth_of(i: int) -> int:
            if feat[i] == _NO_FEATURE:
                return 1
            return 1 + max(depth_of(int(left[i])), depth_of(int(right[i])))

        return depth_of(0)
