"""Experiment result container and report formatting."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentResult:
    """Outcome of one table/figure reproduction.

    Attributes:
        experiment_id: e.g. "tab5" or "fig14".
        title: what the artifact shows.
        rows: tabular results (list of dicts with consistent keys).
        series: named numeric series for figure-type artifacts.
        paper: the paper's reported numbers for the same artifact, where the
            paper states them (used by EXPERIMENTS.md and shape assertions).
        notes: any substitution/scaling caveats.
    """

    experiment_id: str
    title: str
    rows: list[dict] = field(default_factory=list)
    series: dict[str, list] = field(default_factory=dict)
    paper: dict = field(default_factory=dict)
    notes: str = ""

    def to_text(self) -> str:
        """Render the result the way the paper's table would read."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            lines.append(format_table(self.rows))
        for name, values in self.series.items():
            preview = ", ".join(_fmt(v) for v in values[:12])
            suffix = ", ..." if len(values) > 12 else ""
            lines.append(f"  {name}: [{preview}{suffix}]")
        if self.notes:
            lines.append(f"  note: {self.notes}")
        return "\n".join(lines)

    def row_by(self, key: str, value) -> dict:
        """First row whose ``key`` equals ``value`` (for tests)."""
        for row in self.rows:
            if row.get(key) == value:
                return row
        raise KeyError(f"no row with {key}={value!r}")


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0 or 0.01 <= abs(value) < 1e6:
            return f"{value:.3g}"
        return f"{value:.2e}"
    return str(value)


def format_table(rows: list[dict]) -> str:
    """Plain-text table with aligned columns."""
    if not rows:
        return "(empty)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    sep = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = ["  ".join(r[i].ljust(widths[i]) for i in range(len(columns))) for r in rendered]
    return "\n".join(["  " + header, "  " + sep] + ["  " + b for b in body])
