"""Tables 2-3: the selected basic and derived features.

The paper's elastic-net feature selection keeps the features of Tables 2-3
(non-zero weight in at least one subgraph model).  We train the subgraph
models, count how many models select each feature, and report the selection
fraction per feature — verifying that every feature of the paper's tables
earns a non-zero weight somewhere.
"""

from __future__ import annotations

from repro.core.config import ModelKind
from repro.experiments.harness import ExperimentResult
from repro.experiments.shared import get_bundle
from repro.features.featurizer import (
    BASIC_FEATURE_NAMES,
    CONTEXT_FEATURE_NAMES,
    DERIVED_FEATURE_NAMES,
)

PAPER = {
    "basic": list(BASIC_FEATURE_NAMES),
    "derived": list(DERIVED_FEATURE_NAMES),
    "context": list(CONTEXT_FEATURE_NAMES),
}


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    bundle = get_bundle("cluster1", scale=scale, seed=seed)
    predictor = bundle.predictor()

    # Selection is counted across all model kinds: features constant within
    # a strict template (row width, input encoding) earn their weights in
    # the generalized models that pool across templates.
    selected_counts: dict[str, int] = {}
    total = 0
    for kind in ModelKind:
        for model in predictor.store.models[kind].values():
            total += 1
            for name, weight in model.feature_weights().items():
                if abs(weight) > 1e-12:
                    selected_counts[name] = selected_counts.get(name, 0) + 1
    total = max(total, 1)
    rows = []
    for group, names in (
        ("basic", BASIC_FEATURE_NAMES),
        ("derived", DERIVED_FEATURE_NAMES),
    ):
        for name in names:
            rows.append(
                {
                    "group": group,
                    "feature": name,
                    "models_selecting": selected_counts.get(name, 0),
                    "selection_pct": round(100.0 * selected_counts.get(name, 0) / total, 1),
                }
            )
    return ExperimentResult(
        experiment_id="tab2_3",
        title="Feature set with elastic-net selection counts (subgraph models)",
        rows=rows,
        paper=PAPER,
        notes=(
            "Every feature of Tables 2-3 should be selected by at least one "
            "model; per-template models keep only a few features each."
        ),
    )
