"""Training-throughput benchmark: scalar reference vs columnar trainer.

The feedback loop retrains per-signature models over every operator
instance daily (Section 5.1), so training throughput — not just accuracy —
decides whether learned cost models are usable in the optimizer loop.
This benchmark times ``CleoTrainer.train`` end to end on a multi-day
generated workload twice: once through the pinned per-record scalar
reference path and once through the columnar ``FeatureTable`` path, and
verifies that the two produce bitwise-identical predictions on the final
day before reporting the speedup.

Run it from the CLI (``python scripts/bench_train.py``) to emit
``BENCH_train.json``, or through ``benchmarks/test_train_throughput.py``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.trainer import CleoTrainer
from repro.execution.runtime_log import RunLog
from repro.experiments.shared import cluster_spec, workload_config
from repro.workload.generator import WorkloadGenerator
from repro.workload.runner import WorkloadRunner


def build_workload(
    scale: str = "small",
    days: tuple[int, ...] = (1, 2, 3),
    seed: int = 0,
    cluster: str = "cluster1",
) -> RunLog:
    """Generate and execute the benchmark workload (fresh, uncached)."""
    generator = WorkloadGenerator(workload_config(cluster, scale, seed))
    runner = WorkloadRunner(cluster=cluster_spec(cluster), seed=seed)
    return runner.run_days(generator, list(days))


def _time_path(train, log: RunLog, repeats: int) -> tuple[list[float], object]:
    times: list[float] = []
    predictor = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        predictor = train(log)
        times.append(time.perf_counter() - start)
    return times, predictor


def run_benchmark(
    scale: str = "small",
    days: tuple[int, ...] = (1, 2, 3),
    seed: int = 0,
    repeats: int = 3,
    cluster: str = "cluster1",
) -> dict:
    """Time both trainer paths and check prediction parity.

    Returns a JSON-ready dict; ``speedup`` is best-of-``repeats`` scalar
    time over best columnar time.
    """
    log = build_workload(scale=scale, days=days, seed=seed, cluster=cluster)
    trainer = CleoTrainer()

    scalar_times, scalar_predictor = _time_path(trainer.train_reference, log, repeats)
    columnar_times, columnar_predictor = _time_path(trainer.train, log, repeats)

    test = log.filter(days=[log.days[-1]])
    records = list(test.operator_records())
    assert scalar_predictor is not None and columnar_predictor is not None
    scalar_preds = np.array([scalar_predictor.predict_record(r) for r in records])
    columnar_preds = columnar_predictor.predict_records(records)
    identical = bool(np.array_equal(scalar_preds, columnar_preds))

    scalar_best = min(scalar_times)
    columnar_best = min(columnar_times)
    return {
        "benchmark": "train_throughput",
        "workload": {
            "cluster": cluster,
            "scale": scale,
            "days": list(days),
            "seed": seed,
            "operator_count": log.operator_count,
            "job_count": len(log),
        },
        "models_trained": columnar_predictor.store.count(),
        "scalar_reference": {
            "seconds": [round(t, 4) for t in scalar_times],
            "seconds_best": round(scalar_best, 4),
            "operators_per_second": round(log.operator_count / scalar_best, 1),
        },
        "columnar": {
            "seconds": [round(t, 4) for t in columnar_times],
            "seconds_best": round(columnar_best, 4),
            "operators_per_second": round(log.operator_count / columnar_best, 1),
        },
        "speedup": round(scalar_best / columnar_best, 2),
        "predictions_bitwise_identical": identical,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }


def write_result(result: dict, path: str | Path) -> Path:
    """Write the benchmark result as pretty JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(result, indent=2) + "\n")
    return path


def format_result(result: dict) -> str:
    """One-paragraph human summary of a benchmark result."""
    workload = result["workload"]
    return (
        f"train_throughput [{workload['cluster']} scale={workload['scale']} "
        f"days={workload['days']} seed={workload['seed']}]: "
        f"{workload['operator_count']} operators, "
        f"{result['models_trained']} models; "
        f"scalar {result['scalar_reference']['seconds_best']}s -> "
        f"columnar {result['columnar']['seconds_best']}s "
        f"({result['speedup']}x, bitwise identical="
        f"{result['predictions_bitwise_identical']})"
    )
