"""Figure 18: why perfect cardinalities are not enough — feature ablation.

Starting from *perfect* output and input cardinalities as the only features
and cumulatively adding the remaining features (retraining each time), the
paper's median error falls from ~110% to ~40% — the drop coming from row
widths, partitions, parameters, inputs, and the derived transformations
that hand-written models never discover.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.experiments.harness import ExperimentResult
from repro.experiments.shared import get_bundle
from repro.features.featurizer import FEATURE_EXPRESSIONS
from repro.features.table import FeatureTable
from repro.ml.model_selection import KFold
from repro.ml.proximal import ElasticNetMSLE

PAPER = {"start_error_pct": 110.0, "end_error_pct": 40.0}

#: Cumulative order, following the paper's x-axis: perfect C and I first.
FEATURE_ORDER = (
    "C", "I", "L", "sqrt(C)", "P", "L*I", "IN", "PM", "C/P", "I/P", "L*B",
    "I*C", "B*C", "I*log(C)", "B", "sqrt(I)", "L*log(I)", "sqrt(I)/P",
    "L*log(B)", "L*log(C)", "log(B)*C", "I*L/P", "C*L/P", "B*log(C)",
    "log(I)/P", "log(I)*log(C)", "log(B)*log(C)",
)

_MAX_SAMPLES_PER_TYPE = 1500


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    bundle = get_bundle("cluster4", scale=scale, seed=seed)

    # Pool samples per operator type with PERFECT cardinalities as features.
    by_type: dict[str, tuple[list, list]] = {}
    for record in bundle.log.operator_records():
        bucket = by_type.setdefault(record.op_type, ([], []))
        if len(bucket[1]) >= _MAX_SAMPLES_PER_TYPE:
            continue
        perfect = replace(
            record.features,
            input_card=record.actual_input_card,
            output_card=record.actual_output_card,
        )
        bucket[0].append(perfect)
        bucket[1].append(record.actual_latency)

    # Expand every named feature column once per operator type (columnar),
    # then each cumulative-subset matrix is a cheap column slice.
    expanded: dict[str, np.ndarray] = {}
    for op_type, (inputs, targets) in by_type.items():
        if len(targets) < 10:
            continue
        type_table = FeatureTable.from_inputs(inputs)
        expanded[op_type] = np.column_stack(
            [FEATURE_EXPRESSIONS[n](type_table) for n in FEATURE_ORDER]
        )

    medians = []
    for k in range(1, len(FEATURE_ORDER) + 1):
        errors: list[float] = []
        for op_type, (inputs, targets) in by_type.items():
            if len(targets) < 10:
                continue
            matrix = expanded[op_type][:, :k]
            y = np.asarray(targets)
            preds = np.empty(len(y))
            for train_idx, test_idx in KFold(n_splits=3, seed=seed).split(len(y)):
                model = ElasticNetMSLE(alpha=0.01, max_iter=200)
                model.fit(matrix[train_idx], y[train_idx])
                preds[test_idx] = model.predict(matrix[test_idx])
            errors.extend(
                (np.abs(preds - y) / np.maximum(y, 1e-9) * 100.0).tolist()
            )
        medians.append(round(float(np.median(errors)), 1))

    rows = [
        {"features": k, "last_added": FEATURE_ORDER[k - 1], "median_error_pct": medians[k - 1]}
        for k in range(1, len(FEATURE_ORDER) + 1)
    ]
    return ExperimentResult(
        experiment_id="fig18",
        title="Median error as features are added cumulatively (perfect cards first)",
        rows=rows,
        series={"feature_order": list(FEATURE_ORDER), "median_error_pct": medians},
        paper=PAPER,
        notes=(
            "Error with perfect cardinalities alone should be several times "
            "the error with the full feature set."
        ),
    )
