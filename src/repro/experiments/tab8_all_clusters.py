"""Table 8: default vs combined learned model per cluster (all + ad-hoc).

Paper: default correlations 0.05-0.15 with 153-256% median error; the
combined model reaches 0.74-0.83 correlation with 15-33% error on all jobs
and stays close on ad-hoc jobs (0.72-0.81, 26-40%).
"""

from __future__ import annotations

from repro.common.stats import median_error_pct, pearson
from repro.core.robustness import evaluate_predictor_on_log
from repro.cost.default_model import DefaultCostModel
from repro.experiments.harness import ExperimentResult
from repro.experiments.shared import get_all_cluster_bundles

PAPER = {
    "cluster1": {"default": (0.12, 182.0), "all": (0.79, 21.0), "adhoc": (0.73, 29.0)},
    "cluster2": {"default": (0.08, 256.0), "all": (0.77, 33.0), "adhoc": (0.75, 40.0)},
    "cluster3": {"default": (0.15, 165.0), "all": (0.83, 26.0), "adhoc": (0.81, 38.0)},
    "cluster4": {"default": (0.05, 153.0), "all": (0.74, 15.0), "adhoc": (0.72, 26.0)},
}


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    bundles = get_all_cluster_bundles(scale=scale, seed=seed)
    rows = []
    for name, bundle in bundles.items():
        predictor = bundle.predictor()
        costs, actuals = bundle.baseline_costs(DefaultCostModel())
        all_quality = evaluate_predictor_on_log(predictor, bundle.test_log())
        adhoc_log = bundle.test_log().filter(adhoc=True)
        adhoc_quality = (
            evaluate_predictor_on_log(predictor, adhoc_log) if len(adhoc_log) else None
        )
        rows.append(
            {
                "cluster": name,
                "default_corr": round(pearson(costs, actuals), 3),
                "default_err_pct": round(median_error_pct(costs, actuals), 1),
                "learned_corr": round(all_quality.pearson, 3),
                "learned_err_pct": round(all_quality.median_error_pct, 1),
                "adhoc_corr": round(adhoc_quality.pearson, 3) if adhoc_quality else "-",
                "adhoc_err_pct": (
                    round(adhoc_quality.median_error_pct, 1) if adhoc_quality else "-"
                ),
                "paper": str(PAPER.get(name, {})),
            }
        )
    return ExperimentResult(
        experiment_id="tab8",
        title="Default vs combined learned model per cluster",
        rows=rows,
        paper=PAPER,
        notes="Learned correlation should exceed default by several x on every cluster.",
    )
