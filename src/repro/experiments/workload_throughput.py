"""Workload-throughput benchmark: scalar reference vs batched engine.

Every experiment and every training run starts from a generated
:class:`~repro.execution.runtime_log.RunLog`, and "How Good are Learned
Cost Models, Really?" (Heinrich et al., 2025) identifies training-data
generation as *the* bottleneck of evaluating learned cost models at all.
This benchmark times ``run_multi_cluster_workload`` end to end — planning,
ground-truth simulation, feature extraction, log assembly — twice: once
through the retained per-job scalar reference
(:meth:`WorkloadRunner.run_days_reference`) and once through the batched
engine (skeleton planner + vectorized ground truth + columnar ingest), and
verifies the two produce bitwise-identical run logs before reporting the
speedup.

Each path runs ``repeats`` times over persistent runners (best-of),
mirroring ``train_throughput``'s methodology: the first repeat pays the
one-time cache warm-up (hidden multipliers, template skeletons, shape
statics), later repeats measure steady state.  Both timings are recorded.

Run it from the CLI (``python scripts/bench_workload.py``) to emit
``BENCH_workload.json``, or through ``benchmarks/test_workload_throughput.py``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.execution.runtime_log import RunLog
from repro.experiments.shared import SCALES
from repro.workload.runner import multi_cluster_setup


def _time_path(
    scale: float, days: tuple[int, ...], seed: int, repeats: int, reference: bool
) -> tuple[list[float], dict[str, RunLog]]:
    """Time one execution path over persistent runners; returns all repeats."""
    pairs = multi_cluster_setup(scale=scale, seed=seed)
    times: list[float] = []
    logs: dict[str, RunLog] = {}
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        logs = {}
        for generator, runner in pairs:
            run = runner.run_days_reference if reference else runner.run_days
            logs[runner.cluster.name] = run(generator, list(days))
        times.append(time.perf_counter() - start)
    return times, logs


def _logs_identical(a: dict[str, RunLog], b: dict[str, RunLog]) -> bool:
    """Bitwise job-record equality across clusters (dataclass equality
    covers every nested operator record field, including features and
    signatures)."""
    if set(a) != set(b):
        return False
    return all(a[name].jobs == b[name].jobs for name in a)


def run_benchmark(
    scale: str = "small",
    days: tuple[int, ...] = (1, 2, 3),
    seed: int = 0,
    repeats: int = 3,
) -> dict:
    """Time both workload paths and check run-log parity.

    Returns a JSON-ready dict; ``speedup`` is best-of-``repeats`` reference
    time over best batched time.
    """
    scale_factor = SCALES[scale]
    ref_times, ref_logs = _time_path(scale_factor, days, seed, repeats, reference=True)
    bat_times, bat_logs = _time_path(scale_factor, days, seed, repeats, reference=False)
    identical = _logs_identical(ref_logs, bat_logs)

    job_count = sum(len(log) for log in bat_logs.values())
    operator_count = sum(log.operator_count for log in bat_logs.values())
    ref_best = min(ref_times)
    bat_best = min(bat_times)

    def path_stats(times: list[float], best: float) -> dict:
        return {
            "seconds": [round(t, 4) for t in times],
            "seconds_best": round(best, 4),
            "seconds_first": round(times[0], 4),
            "jobs_per_second": round(job_count / best, 1),
            "operators_per_second": round(operator_count / best, 1),
        }

    return {
        "benchmark": "workload_throughput",
        "workload": {
            "clusters": sorted(bat_logs),
            "scale": scale,
            "days": list(days),
            "seed": seed,
            "job_count": job_count,
            "operator_count": operator_count,
        },
        "scalar_reference": path_stats(ref_times, ref_best),
        "batched": path_stats(bat_times, bat_best),
        "speedup": round(ref_best / bat_best, 2),
        "speedup_first_run": round(ref_times[0] / bat_times[0], 2),
        "runlogs_bitwise_identical": identical,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }


def write_result(result: dict, path: str | Path) -> Path:
    """Write the benchmark result as pretty JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(result, indent=2) + "\n")
    return path


def format_result(result: dict) -> str:
    """One-paragraph human summary of a benchmark result."""
    workload = result["workload"]
    return (
        f"workload_throughput [scale={workload['scale']} days={workload['days']} "
        f"seed={workload['seed']}]: {workload['job_count']} jobs / "
        f"{workload['operator_count']} operators; "
        f"reference {result['scalar_reference']['seconds_best']}s -> "
        f"batched {result['batched']['seconds_best']}s "
        f"({result['speedup']}x best-of, {result['speedup_first_run']}x cold, "
        f"{result['batched']['jobs_per_second']} jobs/s, "
        f"bitwise identical={result['runlogs_bitwise_identical']})"
    )
