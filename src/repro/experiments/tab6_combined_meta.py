"""Table 6: choice of meta-learner for the combined model.

Paper numbers: FastTree regression wins (0.84 corr / 19% median error);
elastic net — so strong for the individual models — is the worst meta
learner (0.68 / 64%), because combining heterogeneous predictors calls for
fine-grained partitioning of the meta-feature space, not a linear blend.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import CleoConfig
from repro.core.predictor import CleoPredictor
from repro.core.robustness import evaluate_predictor_on_log
from repro.core.trainer import CleoTrainer
from repro.experiments.harness import ExperimentResult
from repro.experiments.shared import get_bundle
from repro.ml.forest import RandomForestRegressor
from repro.ml.gbm import FastTreeRegressor
from repro.ml.mlp import MLPRegressor
from repro.ml.proximal import ElasticNetMSLE
from repro.ml.tree import DecisionTreeRegressor

PAPER = {
    "Neural Network": {"correlation": 0.79, "median_error_pct": 31.0},
    "Decision Tree": {"correlation": 0.73, "median_error_pct": 41.0},
    "FastTree Regression": {"correlation": 0.84, "median_error_pct": 19.0},
    "Random Forest": {"correlation": 0.80, "median_error_pct": 28.0},
    "Elastic net": {"correlation": 0.68, "median_error_pct": 64.0},
}


class _LogTree:
    """Tree-family regressor fitted on log targets (MSLE convention)."""

    def __init__(self, inner) -> None:
        self.inner = inner

    def fit(self, features, targets):
        self.inner.fit(features, np.log1p(np.clip(targets, 0, None)))
        return self

    def predict(self, features):
        return np.expm1(np.clip(self.inner.predict(features), None, 60.0))


def meta_learners(config: CleoConfig, seed: int):
    return {
        "Neural Network": lambda: MLPRegressor(hidden_size=30, epochs=150, seed=seed),
        "Decision Tree": lambda: _LogTree(DecisionTreeRegressor(max_depth=15)),
        "FastTree Regression": lambda: FastTreeRegressor(
            n_estimators=config.meta_trees,
            max_depth=config.meta_depth,
            subsample=config.meta_subsample,
            seed=seed,
        ),
        "Random Forest": lambda: _LogTree(
            RandomForestRegressor(n_estimators=20, max_depth=5, seed=seed)
        ),
        "Elastic net": lambda: ElasticNetMSLE(alpha=0.01, l1_ratio=0.5),
    }


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    bundle = get_bundle("cluster1", scale=scale, seed=seed)
    config = CleoConfig(seed=seed)
    trainer = CleoTrainer(config)
    store = trainer.train_individual(bundle.log.filter(days=[1, 2]))
    test = bundle.test_log()

    rows = []
    for name, factory in meta_learners(config, seed).items():
        combined = trainer.train_combined(store, bundle.log.filter(days=[2]), regressor=factory())
        predictor = CleoPredictor(store=store, combined=combined)
        quality = evaluate_predictor_on_log(predictor, test, name=name)
        rows.append(
            {
                "meta_learner": name,
                "correlation": round(quality.pearson, 3),
                "median_error_pct": round(quality.median_error_pct, 1),
                "paper_corr": PAPER[name]["correlation"],
                "paper_err": PAPER[name]["median_error_pct"],
            }
        )
    return ExperimentResult(
        experiment_id="tab6",
        title="Meta-learner comparison for the combined model",
        rows=rows,
        paper=PAPER,
        notes="Tree-ensemble meta-learners should beat the linear blend (elastic net).",
    )
