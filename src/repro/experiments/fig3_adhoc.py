"""Figure 3: fraction of ad-hoc jobs per cluster per day (7-20% band)."""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.experiments.shared import get_all_cluster_bundles

PAPER = {"adhoc_pct_range": (7.0, 20.0)}


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    bundles = get_all_cluster_bundles(scale=scale, seed=seed)
    rows = []
    for name, bundle in bundles.items():
        for day in bundle.log.days:
            day_log = bundle.log.filter(days=[day])
            adhoc = day_log.filter(adhoc=True)
            rows.append(
                {
                    "cluster": name,
                    "day": day,
                    "jobs": len(day_log),
                    "adhoc_jobs": len(adhoc),
                    "adhoc_pct": round(100.0 * len(adhoc) / max(len(day_log), 1), 1),
                }
            )
    return ExperimentResult(
        experiment_id="fig3",
        title="Ad-hoc job fraction per cluster per day",
        rows=rows,
        paper=PAPER,
        notes="The paper observes 7-20% ad-hoc jobs across clusters and days.",
    )
