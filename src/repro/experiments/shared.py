"""Shared experiment infrastructure: cached workloads and trained predictors.

Building a multi-day workload and training Cleo is the expensive part of
most experiments, so bundles are cached per (cluster, scale, days, seed)
within the process — a benchmark session builds each workload once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cardinality.estimator import CardinalityEstimator
from repro.core.config import CleoConfig
from repro.core.predictor import CleoPredictor
from repro.core.trainer import CleoTrainer
from repro.execution.hardware import DEFAULT_CLUSTERS, ClusterSpec
from repro.execution.runtime_log import RunLog
from repro.features.table import FeatureTable
from repro.serving.service import CleoService
from repro.workload.generator import ClusterWorkloadConfig, WorkloadGenerator
from repro.workload.runner import WorkloadRunner

#: Scale presets: fraction of the reference workload size.
SCALES = {"tiny": 0.25, "small": 0.6, "full": 1.0}

#: Relative cluster sizes, mirroring Figure 9's load spread.
CLUSTER_SIZE = {"cluster1": 1.0, "cluster2": 0.75, "cluster3": 0.55, "cluster4": 0.4}

#: Per-cluster ad-hoc fractions within the paper's observed 7-20% band.
ADHOC_FRACTION = {"cluster1": 0.10, "cluster2": 0.17, "cluster3": 0.08, "cluster4": 0.14}


def cluster_spec(name: str) -> ClusterSpec:
    for spec in DEFAULT_CLUSTERS:
        if spec.name == name:
            return spec
    return ClusterSpec(name=name)


def workload_config(cluster_name: str, scale: str, seed: int) -> ClusterWorkloadConfig:
    size = CLUSTER_SIZE.get(cluster_name, 0.5) * SCALES[scale]
    return ClusterWorkloadConfig(
        cluster_name=cluster_name,
        n_tables=max(5, int(round(14 * size))),
        n_fragments=max(8, int(round(30 * size))),
        n_templates=max(10, int(round(60 * size))),
        adhoc_fraction=ADHOC_FRACTION.get(cluster_name, 0.12),
        seed=seed + sum(map(ord, cluster_name)),
    )


@dataclass
class ClusterBundle:
    """One cluster's workload run plus (lazily) trained Cleo."""

    cluster: ClusterSpec
    generator: WorkloadGenerator
    runner: WorkloadRunner
    log: RunLog
    _predictor: CleoPredictor | None = None
    _service: CleoService | None = None
    _train_days: tuple[int, ...] = ()
    _combined_days: tuple[int, ...] = ()
    _filtered_logs: dict[tuple[int, ...], RunLog] = field(default_factory=dict)

    def predictor(
        self,
        train_days: tuple[int, ...] = (1, 2),
        combined_days: tuple[int, ...] = (2,),
        config: CleoConfig | None = None,
    ) -> CleoPredictor:
        """Train (or reuse) Cleo on the given day split."""
        if (
            self._predictor is None
            or self._train_days != train_days
            or self._combined_days != combined_days
        ):
            trainer = CleoTrainer(config or CleoConfig())
            self._predictor = trainer.train(
                self.log,
                individual_days=list(train_days),
                combined_days=list(combined_days),
            )
            self._train_days = train_days
            self._combined_days = combined_days
            self._service = None
        return self._predictor

    def service(
        self,
        train_days: tuple[int, ...] = (1, 2),
        combined_days: tuple[int, ...] = (2,),
        config: CleoConfig | None = None,
    ) -> CleoService:
        """The serving façade over :meth:`predictor` (cached alongside it)."""
        predictor = self.predictor(train_days, combined_days, config)
        if self._service is None or self._service.predictor is not predictor:
            self._service = CleoService(predictor, config=config)
        return self._service

    def test_log(self, days: tuple[int, ...] = (3,)) -> RunLog:
        """Day-filtered log, cached so its columnar table is built once.

        Experiments hit the same test slice repeatedly; reusing the RunLog
        instance means ``to_table()`` materializes each slice's
        :class:`FeatureTable` a single time per bundle.
        """
        key = tuple(days)
        cached = self._filtered_logs.get(key)
        if cached is None:
            cached = self.log.filter(days=list(days))
            self._filtered_logs[key] = cached
        return cached

    def test_table(self, days: tuple[int, ...] = (3,)) -> FeatureTable:
        """Columnar view of the test slice (features, signatures, latencies)."""
        return self.test_log(days).to_table()

    def fresh_estimator(self) -> CardinalityEstimator:
        return CardinalityEstimator(self.runner.estimator_config)

    def baseline_costs(self, cost_model, days: tuple[int, ...] = (3,), estimator=None):
        """Cost-model estimates aligned with the test log's operator records.

        Requires ``keep_plans`` (always on for bundles): records are emitted
        in plan-walk order, so plans and records zip exactly.
        """
        estimator = estimator or self.fresh_estimator()
        costs: list[float] = []
        actuals: list[float] = []
        for job in self.test_log(days):
            plan = self.runner.plans[job.job_id]
            estimator.reset()
            for op, record in zip(plan.walk(), job.operators):
                costs.append(cost_model.operator_cost(op, estimator))
                actuals.append(record.actual_latency)
        return np.asarray(costs), np.asarray(actuals)


_BUNDLES: dict[tuple, ClusterBundle] = {}


def get_bundle(
    cluster_name: str = "cluster1",
    scale: str = "small",
    days: tuple[int, ...] = (1, 2, 3),
    seed: int = 0,
) -> ClusterBundle:
    """Build (or fetch the cached) workload bundle for one cluster."""
    key = (cluster_name, scale, days, seed)
    bundle = _BUNDLES.get(key)
    if bundle is not None:
        return bundle
    spec = cluster_spec(cluster_name)
    generator = WorkloadGenerator(workload_config(cluster_name, scale, seed))
    runner = WorkloadRunner(cluster=spec, seed=seed, keep_plans=True)
    log = runner.run_days(generator, list(days))
    bundle = ClusterBundle(cluster=spec, generator=generator, runner=runner, log=log)
    _BUNDLES[key] = bundle
    return bundle


def get_all_cluster_bundles(
    scale: str = "small", days: tuple[int, ...] = (1, 2, 3), seed: int = 0
) -> dict[str, ClusterBundle]:
    return {
        spec.name: get_bundle(spec.name, scale=scale, days=days, seed=seed)
        for spec in DEFAULT_CLUSTERS
    }


def clear_bundle_cache() -> None:
    _BUNDLES.clear()
