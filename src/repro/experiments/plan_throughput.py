"""Plan-throughput benchmark: batched learned-cost planning vs scalar.

The paper's retrofitting story (Section 5) puts the learned models *inside*
the optimizer: every candidate costed during the Cascades search and every
partition-exploration probe is a learned prediction.  After the training,
workload, and serving pipelines went columnar (PRs 2-4), that optimizer
loop was the last scalar hot path — one Python ``predict_operator``
round-trip per candidate.  This benchmark times re-planning the canonical
generated workload's test day with learned costs through both paths:

* **scalar** — ``CleoCostModel(batched=False)``: the retained per-candidate
  ``predict_operator`` loop (one request materialization, one packed
  single-row prediction per costed operator) and per-candidate
  ``_stage_cost_at`` partition probes;
* **batched** — the default ``CleoCostModel``: the planner defers frontier
  costs into a pending ledger priced through
  :meth:`~repro.serving.service.CleoService.predict_inputs` in batched
  passes, and partition exploration prices each stage's whole candidate
  sweep as one matrix pass
  (:meth:`~repro.core.cost_model.CleoCostModel.price_stage_sweep`).

Two phases are timed: ``structural`` (the Cascades search alone) and
``partitioned`` (search + Section 5.2 partition exploration with geometric
sampling — the paper's full retrofitted configuration, and the headline
``speedup``).  Before any timing is reported the two paths' plans are
verified identical — operator shapes, partition counts, estimated costs
(exact float equality), and candidates considered.

Run it from the CLI (``python scripts/bench_plan.py``) to emit
``BENCH_plan.json``, or through ``benchmarks/test_plan_throughput.py``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.cardinality.estimator import CardinalityEstimator
from repro.core.cost_model import CleoCostModel
from repro.experiments.shared import get_bundle
from repro.optimizer.partition import SamplingStrategy
from repro.optimizer.planner import PlannerConfig, QueryPlanner
from repro.workload.templates import instantiate


def _plan_fingerprint(planned) -> tuple:
    """Everything a plan-choice divergence would perturb."""
    return (
        tuple((op.op_type.value, op.partition_count) for op in planned.plan.walk()),
        planned.estimated_cost,
        planned.candidates_considered,
    )


def _time_planner(planner, jobs, repeats: int) -> tuple[list[float], list[tuple]]:
    times: list[float] = []
    fingerprints: list[tuple] = []
    for _ in range(max(1, repeats)):
        fingerprints = []
        start = time.perf_counter()
        for job_id, logical in jobs:
            planner.jitter_salt = job_id
            fingerprints.append(_plan_fingerprint(planner.plan(logical)))
        times.append(time.perf_counter() - start)
    return times, fingerprints


def run_benchmark(
    scale: str = "small",
    seed: int = 0,
    repeats: int = 5,
    cluster: str = "cluster1",
) -> dict:
    """Time both learned-cost planning paths and check plan parity.

    Returns a JSON-ready dict; the top-level ``speedup`` is best-of-
    ``repeats`` scalar time over best batched time for the ``partitioned``
    phase (the full retrofitted configuration).
    """
    bundle = get_bundle(cluster, scale=scale, seed=seed)
    predictor = bundle.predictor()
    test_day = bundle.log.days[-1]
    catalog = bundle.generator.catalog_for_day(test_day)
    jobs = [
        (job.job_id, instantiate(job, catalog))
        for job in bundle.generator.jobs_for_day(test_day)
    ]
    n_jobs = len(jobs)

    strategy = SamplingStrategy(scheme="geometric")
    phase_configs = {
        "structural": PlannerConfig(),
        "partitioned": PlannerConfig(partition_strategy=strategy),
    }

    phases: dict[str, dict] = {}
    all_identical = True
    for phase, config in phase_configs.items():
        scalar_planner = QueryPlanner(
            CleoCostModel(predictor, batched=False), CardinalityEstimator(), config
        )
        batched_planner = QueryPlanner(
            CleoCostModel(predictor), CardinalityEstimator(), config
        )
        scalar_times, scalar_plans = _time_planner(scalar_planner, jobs, repeats)
        batched_times, batched_plans = _time_planner(batched_planner, jobs, repeats)
        identical = scalar_plans == batched_plans
        all_identical = all_identical and identical
        scalar_best, batched_best = min(scalar_times), min(batched_times)
        phases[phase] = {
            "scalar": {
                "path": "per-candidate predict_operator loop",
                "seconds": [round(t, 4) for t in scalar_times],
                "seconds_best": round(scalar_best, 4),
                "plans_per_second": round(n_jobs / scalar_best, 1),
            },
            "batched": {
                "path": "deferred frontier ledger -> predict_inputs batches"
                + (" + per-stage sweep matrix passes" if phase == "partitioned" else ""),
                "seconds": [round(t, 4) for t in batched_times],
                "seconds_best": round(batched_best, 4),
                "plans_per_second": round(n_jobs / batched_best, 1),
            },
            "speedup": round(scalar_best / batched_best, 2),
            "plans_bitwise_identical": bool(identical),
        }

    partitioned = phases["partitioned"]
    return {
        "benchmark": "plan_throughput",
        "workload": {
            "cluster": cluster,
            "scale": scale,
            "seed": seed,
            "test_day": int(test_day),
            "job_count": n_jobs,
        },
        "models_served": predictor.store.count(),
        "planner": {
            "partition_strategy": strategy.name,
            "skip_coefficient": strategy.skip_coefficient,
            "max_partitions": PlannerConfig().max_partitions,
        },
        "prediction_cache": "disabled (exact per-prediction lookup accounting)",
        "phases": phases,
        "speedup": partitioned["speedup"],
        "speedup_structural": phases["structural"]["speedup"],
        "plans_per_second": partitioned["batched"]["plans_per_second"],
        "plans_bitwise_identical": bool(all_identical),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }


def write_result(result: dict, path: str | Path) -> Path:
    """Write the benchmark result as pretty JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(result, indent=2) + "\n")
    return path


def format_result(result: dict) -> str:
    """One-paragraph human summary of a benchmark result."""
    workload = result["workload"]
    partitioned = result["phases"]["partitioned"]
    return (
        f"plan_throughput [{workload['cluster']} scale={workload['scale']} "
        f"seed={workload['seed']}]: {workload['job_count']} jobs re-planned "
        f"with learned costs (day {workload['test_day']}, "
        f"{result['models_served']} models); partitioned "
        f"{partitioned['scalar']['seconds_best']}s -> "
        f"{partitioned['batched']['seconds_best']}s ({result['speedup']}x, "
        f"{result['plans_per_second']:.0f} plans/s; structural "
        f"{result['speedup_structural']}x), "
        f"bitwise identical={result['plans_bitwise_identical']}"
    )
