"""Figure 7: error heatmap over operator instances, per model.

The paper plots per-operator prediction error (green = accurate) for the
four individual models and the combined model over 42K operators, with
white gaps where a model has no coverage.  As a text-friendly equivalent we
bucket each model's per-operator error ratio into bands and report the band
mass plus coverage — the "more green, fewer gaps" reading of the figure.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ModelKind
from repro.experiments.harness import ExperimentResult
from repro.experiments.shared import get_bundle

#: Error-ratio bands (predicted/actual): the figure's color scale.
BANDS = ((0.0, 0.5), (0.5, 0.8), (0.8, 1.25), (1.25, 2.0), (2.0, float("inf")))
BAND_NAMES = ("<0.5x", "0.5-0.8x", "0.8-1.25x", "1.25-2x", ">2x")

PAPER = {
    "shape": (
        "subgraph models most accurate where covered; operator model covers "
        "all but with more error; combined covers all at near-best accuracy"
    )
}


def _band_fractions(ratios: np.ndarray) -> dict[str, float]:
    out = {}
    for name, (lo, hi) in zip(BAND_NAMES, BANDS):
        out[name] = float(((ratios >= lo) & (ratios < hi)).mean()) if len(ratios) else 0.0
    return out


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    bundle = get_bundle("cluster1", scale=scale, seed=seed)
    predictor = bundle.predictor()
    records = list(bundle.test_log().operator_records())

    rows = []
    series: dict[str, list] = {}
    for kind in ModelKind:
        ratios = []
        for record in records:
            model = predictor.store.lookup(kind, record.signatures)
            if model is None:
                continue
            predicted = model.predict_one(record.features)
            ratios.append((predicted + 1e-9) / (record.actual_latency + 1e-9))
        ratios_arr = np.asarray(ratios)
        bands = _band_fractions(ratios_arr)
        rows.append(
            {
                "model": kind.value,
                "coverage_pct": round(100.0 * len(ratios) / len(records), 1),
                "within_0.8_1.25x_pct": round(100.0 * bands["0.8-1.25x"], 1),
                "worse_than_2x_pct": round(100.0 * bands[">2x"], 1),
            }
        )
        series[f"bands_{kind.value}"] = [round(bands[n], 4) for n in BAND_NAMES]

    combined_ratios = np.asarray(
        [
            (predictor.predict_record(r) + 1e-9) / (r.actual_latency + 1e-9)
            for r in records
        ]
    )
    bands = _band_fractions(combined_ratios)
    rows.append(
        {
            "model": "combined",
            "coverage_pct": 100.0,
            "within_0.8_1.25x_pct": round(100.0 * bands["0.8-1.25x"], 1),
            "worse_than_2x_pct": round(100.0 * bands[">2x"], 1),
        }
    )
    series["bands_combined"] = [round(bands[n], 4) for n in BAND_NAMES]
    series["band_names"] = list(BAND_NAMES)

    return ExperimentResult(
        experiment_id="fig7",
        title="Per-operator error bands and coverage per model (heatmap summary)",
        rows=rows,
        series=series,
        paper=PAPER,
        notes=f"{len(records)} operator instances from the test day.",
    )
