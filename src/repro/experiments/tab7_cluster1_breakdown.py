"""Table 7: per-model accuracy and coverage, all jobs vs ad-hoc (cluster 1).

Paper numbers (cluster 1): e.g. Op-Subgraph 0.86/9%/56%/65% on all jobs vs
0.81/14%/57%/36% on ad-hoc jobs — ad-hoc accuracy drops only slightly, and
even ad-hoc jobs have substantial subgraph-model coverage because they share
subexpressions with recurring jobs.
"""

from __future__ import annotations

from repro.common.stats import median_error_pct, pearson, percentile_error_pct
from repro.core.robustness import evaluate_predictor_on_log, evaluate_store_on_log
from repro.cost.default_model import DefaultCostModel
from repro.experiments.harness import ExperimentResult
from repro.experiments.shared import get_bundle

PAPER = {
    "all_jobs": {
        "Default": (0.12, 182.0, 100.0),
        "op_subgraph": (0.86, 9.0, 65.0),
        "op_subgraph_approx": (0.85, 12.0, 82.0),
        "op_input": (0.81, 23.0, 91.0),
        "operator": (0.76, 33.0, 100.0),
        "combined": (0.79, 21.0, 100.0),
    },
    "adhoc_jobs": {
        "Default": (0.09, 204.0, 100.0),
        "op_subgraph": (0.81, 14.0, 36.0),
        "op_subgraph_approx": (0.80, 16.0, 64.0),
        "op_input": (0.77, 26.0, 79.0),
        "operator": (0.73, 42.0, 100.0),
        "combined": (0.73, 29.0, 100.0),
    },
}


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    bundle = get_bundle("cluster1", scale=scale, seed=seed)
    predictor = bundle.predictor()

    rows = []
    for subset, adhoc in (("all", None), ("adhoc", True)):
        test = bundle.test_log()
        if adhoc is not None:
            test = test.filter(adhoc=adhoc)

        estimator = bundle.fresh_estimator()
        model = DefaultCostModel()
        costs, actuals = [], []
        for job in test:
            plan = bundle.runner.plans[job.job_id]
            estimator.reset()
            for op, record in zip(plan.walk(), job.operators):
                costs.append(model.operator_cost(op, estimator))
                actuals.append(record.actual_latency)
        rows.append(
            {
                "jobs": subset,
                "model": "Default",
                "correlation": round(pearson(costs, actuals), 3),
                "median_error_pct": round(median_error_pct(costs, actuals), 1),
                "p95_error_pct": round(percentile_error_pct(costs, actuals, 95), 1),
                "coverage_pct": 100.0,
            }
        )
        for kind, quality in evaluate_store_on_log(predictor.store, test).items():
            row = quality.row()
            row = {"jobs": subset, **row}
            del row["n"]
            rows.append(row)
        combined = evaluate_predictor_on_log(predictor, test).row()
        combined = {"jobs": subset, **combined}
        del combined["n"]
        rows.append(combined)

    return ExperimentResult(
        experiment_id="tab7",
        title="Cluster 1: per-model accuracy/coverage, all vs ad-hoc jobs",
        rows=rows,
        paper=PAPER,
        notes=(
            "Shape: ad-hoc subgraph coverage well below all-jobs coverage, "
            "accuracy only slightly worse; operator/combined cover both fully."
        ),
    )
