"""Figure 15 / Section 6.4: Cleo vs CardLearner.

CardLearner fixes cardinalities (Poisson regression per template) but keeps
the default cost model; the paper finds it barely moves cost accuracy
(median error 236% -> 211%, correlation ~0.01-0.04) while Cleo reaches 18%
(13% with CardLearner's cardinalities) and 0.84-0.86 correlation.  The
conclusion: fixing cardinalities alone cannot fix big-data cost models.
"""

from __future__ import annotations

import numpy as np

from repro.cardinality.cardlearner import CardLearner
from repro.common.stats import Cdf, error_ratio, median_error_pct, pearson
from repro.cost.default_model import DefaultCostModel
from repro.experiments.harness import ExperimentResult
from repro.experiments.shared import get_bundle

PAPER = {
    "default": {"median_error_pct": 236.0},
    "default+cardlearner": {"median_error_pct": 211.0, "correlation": 0.01},
    "cleo": {"median_error_pct": 18.0, "correlation": 0.84},
    "cleo+cardlearner": {"median_error_pct": 13.0, "correlation": 0.86},
}


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    bundle = get_bundle("cluster4", scale=scale, seed=seed)
    predictor = bundle.predictor()
    test = bundle.test_log()

    # Train CardLearner on the training days' executed plans.
    card_learner = CardLearner(base=bundle.fresh_estimator())
    for job in bundle.log.filter(days=[1, 2]):
        plan = bundle.runner.plans[job.job_id]
        card_learner.observe_plan(plan)
    card_learner.fit()

    default_model = DefaultCostModel()
    series: dict[str, list] = {"cdf_grid": list(Cdf.of([1.0]).grid)}
    rows = []

    def evaluate(name: str, costs: np.ndarray, actuals: np.ndarray) -> None:
        rows.append(
            {
                "configuration": name,
                "correlation": round(pearson(costs, actuals), 3),
                "median_error_pct": round(median_error_pct(costs, actuals), 1),
                "paper": str(PAPER.get(name, {})),
            }
        )
        series[f"cdf_{name}"] = list(Cdf.of(error_ratio(costs, actuals)).fractions)

    costs, actuals = bundle.baseline_costs(default_model)
    evaluate("default", costs, actuals)
    costs_cl, _ = bundle.baseline_costs(default_model, estimator=card_learner)
    evaluate("default+cardlearner", costs_cl, actuals)

    records = list(test.operator_records())
    cleo_costs = predictor.predict_records(records, table=test.to_table())
    evaluate("cleo", cleo_costs, actuals)

    # Cleo consuming CardLearner's cardinalities: re-featurize test operators
    # with the learned estimates before predicting.
    from repro.features.extract import feature_input_for

    cleo_cl_costs = []
    for job in test:
        plan = bundle.runner.plans[job.job_id]
        card_learner.reset()
        for op, record in zip(plan.walk(), job.operators):
            features = feature_input_for(op, card_learner)
            cleo_cl_costs.append(predictor.predict(features, record.signatures))
    evaluate("cleo+cardlearner", np.asarray(cleo_cl_costs), actuals)

    return ExperimentResult(
        experiment_id="fig15",
        title="Cleo vs CardLearner (learned cardinalities, default costs)",
        rows=rows,
        series=series,
        paper=PAPER,
        notes=(
            "CardLearner should barely improve the default cost model while "
            "Cleo improves both accuracy and correlation by an order of magnitude."
        ),
    )
