"""Figure 16: hash-join feature weights differ across subexpression contexts.

The paper fits the hash-join cost model on two sets of subexpressions —
(1) hash joins directly over scans, (2) hash joins over other joins — and
shows the optimal weights differ (partition count matters far more in set 2
because of the extra network transfer).  This is the "why cardinality alone
is not sufficient" argument: feature importance is context-specific.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import ExperimentResult
from repro.experiments.shared import get_bundle
from repro.ml.proximal import ElasticNetMSLE
from repro.features.featurizer import feature_matrix, feature_names
from repro.plan.logical import LogicalOpType
from repro.plan.physical import PhysOpType

PAPER = {
    "shape": "partition-count features weigh more when joins feed the hash join",
}


def _has_join_below(op) -> bool:
    for node in op.walk():
        if node is op:
            continue
        if node.logical is not None and node.logical.op_type is LogicalOpType.JOIN:
            return True
    return False


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    bundle = get_bundle("cluster1", scale=scale, seed=seed)

    sets: dict[str, tuple[list, list]] = {"over_scans": ([], []), "over_joins": ([], [])}
    for job in bundle.log:
        plan = bundle.runner.plans[job.job_id]
        for op, record in zip(plan.walk(), job.operators):
            if op.op_type is not PhysOpType.HASH_JOIN:
                continue
            key = "over_joins" if _has_join_below(op) else "over_scans"
            sets[key][0].append(record.features)
            sets[key][1].append(record.actual_latency)

    rows = []
    series: dict[str, list] = {}
    names = feature_names(include_context=False)
    partition_features = [n for n in names if "P" in n]
    for set_name, (inputs, targets) in sets.items():
        if len(targets) < 8:
            rows.append({"set": set_name, "samples": len(targets), "note": "too few samples"})
            continue
        model = ElasticNetMSLE(alpha=0.01)
        model.fit(feature_matrix(inputs, include_context=False), np.asarray(targets))
        weights = np.abs(model.coef_)
        total = weights.sum() or 1.0
        normalized = {name: float(w / total) for name, w in zip(names, weights)}
        top = sorted(normalized.items(), key=lambda kv: -kv[1])[:10]
        partition_mass = sum(normalized[n] for n in partition_features)
        rows.append(
            {
                "set": set_name,
                "samples": len(targets),
                "partition_feature_mass": round(partition_mass, 3),
                "top_features": ", ".join(f"{n}={w:.3f}" for n, w in top[:5]),
            }
        )
        series[f"weights_{set_name}"] = [round(normalized[n], 5) for n in names]
    series["feature_names"] = list(names)

    return ExperimentResult(
        experiment_id="fig16",
        title="Hash-join model weights on two subexpression sets",
        rows=rows,
        series=series,
        paper=PAPER,
        notes="Relative weight of partition features should differ between the sets.",
    )
