"""Figure 9: workload summary across clusters and days.

The paper's table reports, per (cluster, day): total jobs, recurring jobs,
recurring templates, total subexpressions, and the common / recurring /
ad-hoc subexpression split.  We compute the same columns for the synthetic
workload; the *structure* to match is the dominance of recurring jobs and
the high subexpression commonality, not the absolute counts (the paper has
0.5M jobs; we are laptop-scaled).
"""

from __future__ import annotations

from collections import Counter

from repro.experiments.harness import ExperimentResult
from repro.experiments.shared import get_all_cluster_bundles

PAPER = {
    "total_jobs": 463_799,
    "recurring_jobs": 397_824,
    "recurring_fraction": 0.86,
    "common_subexpression_fraction": 0.79,  # 17.58M / 22.38M
}


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    bundles = get_all_cluster_bundles(scale=scale, seed=seed)
    rows = []
    totals = Counter()
    for name, bundle in bundles.items():
        for day in bundle.log.days:
            day_log = bundle.log.filter(days=[day])
            recurring = day_log.filter(adhoc=False)
            templates = {job.template_id for job in recurring}

            strict_counts: Counter = Counter()
            adhoc_subexpr = 0
            for job in day_log:
                for record in job.operators:
                    strict_counts[record.signatures.strict] += 1
                    if job.is_adhoc:
                        adhoc_subexpr += 1
            total_subexpr = sum(strict_counts.values())
            common_subexpr = sum(c for c in strict_counts.values() if c > 1)

            row = {
                "cluster": name,
                "day": day,
                "total_jobs": len(day_log),
                "recurring_jobs": len(recurring),
                "recurring_templates": len(templates),
                "total_subexpr": total_subexpr,
                "common_subexpr": common_subexpr,
                "adhoc_subexpr": adhoc_subexpr,
            }
            rows.append(row)
            for key in ("total_jobs", "recurring_jobs", "total_subexpr", "common_subexpr"):
                totals[key] += row[key]

    rows.append(
        {
            "cluster": "overall",
            "day": "-",
            "total_jobs": totals["total_jobs"],
            "recurring_jobs": totals["recurring_jobs"],
            "recurring_templates": "-",
            "total_subexpr": totals["total_subexpr"],
            "common_subexpr": totals["common_subexpr"],
            "adhoc_subexpr": "-",
        }
    )
    return ExperimentResult(
        experiment_id="fig9",
        title="Workload summary (clusters x days)",
        rows=rows,
        paper=PAPER,
        notes=(
            "Recurring jobs should dominate (>80%) and most subexpressions "
            "should repeat, mirroring the paper's Figure 9 proportions."
        ),
    )
