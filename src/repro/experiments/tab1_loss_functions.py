"""Table 1: median error of regression loss functions (5-fold CV).

The paper compares four losses for the per-subgraph linear models and picks
mean-squared log error: MedAE 246%, MAE 62%, MSE 36%, MSLE 14%.  We run the
same protocol: per operator-subgraph template, 5-fold cross-validation of a
linear model trained under each loss, pooling out-of-fold relative errors.
"""

from __future__ import annotations

import numpy as np

from repro.common.stats import relative_error_pct
from repro.core.config import ModelKind
from repro.core.model_store import signature_for
from repro.experiments.harness import ExperimentResult
from repro.experiments.shared import get_bundle
from repro.features.featurizer import feature_matrix
from repro.ml.linear import ElasticNet, LeastAbsoluteRegressor, MedianAbsoluteRegressor
from repro.ml.model_selection import KFold
from repro.ml.proximal import ElasticNetMSLE

PAPER = {
    "median_absolute_error": 246.0,
    "mean_absolute_error": 62.0,
    "mean_squared_error": 36.0,
    "mean_squared_log_error": 14.0,
}

_MIN_SAMPLES = 10
_MAX_TEMPLATES = 120


def _models():
    return {
        "median_absolute_error": lambda: MedianAbsoluteRegressor(),
        "mean_absolute_error": lambda: LeastAbsoluteRegressor(),
        "mean_squared_error": lambda: ElasticNet(alpha=0.01),
        "mean_squared_log_error": lambda: ElasticNetMSLE(alpha=0.01),
    }


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    bundle = get_bundle("cluster1", scale=scale, seed=seed)

    groups: dict[int, tuple[list, list]] = {}
    for record in bundle.log.operator_records():
        sig = signature_for(ModelKind.OP_SUBGRAPH, record.signatures)
        bucket = groups.setdefault(sig, ([], []))
        bucket[0].append(record.features)
        bucket[1].append(record.actual_latency)

    eligible = [
        (inputs, np.asarray(targets))
        for inputs, targets in groups.values()
        if len(targets) >= _MIN_SAMPLES
    ][:_MAX_TEMPLATES]

    errors: dict[str, list[float]] = {name: [] for name in _models()}
    for inputs, targets in eligible:
        matrix = feature_matrix(inputs, include_context=False)
        n = len(targets)
        folds = KFold(n_splits=min(5, n), seed=seed)
        for name, make_model in _models().items():
            predictions = np.empty(n)
            for train_idx, test_idx in folds.split(n):
                model = make_model()
                model.fit(matrix[train_idx], targets[train_idx])
                predictions[test_idx] = np.clip(model.predict(matrix[test_idx]), 0, None)
            errors[name].extend(relative_error_pct(predictions, targets).tolist())

    rows = [
        {
            "loss_function": name,
            "median_error_pct": round(float(np.median(errs)), 1),
            "paper_pct": PAPER[name],
        }
        for name, errs in errors.items()
    ]
    return ExperimentResult(
        experiment_id="tab1",
        title="Median CV error by training loss (operator-subgraph models)",
        rows=rows,
        paper=PAPER,
        notes=(
            "Shape to hold: MSLE clearly best; absolute-error losses degrade "
            "under the multiplicative noise and heavy runtime tails."
        ),
    )
